//! The wire protocol: length-prefixed binary frames with JSON payloads.
//!
//! # Frame format
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! +-------+---------+--------+-------------+-------------+-----------+
//! | magic | version | opcode | request id  | payload len | payload   |
//! | 4 B   | 1 B     | 1 B    | 8 B (LE)    | 4 B (LE)    | len bytes |
//! +-------+---------+--------+-------------+-------------+-----------+
//! ```
//!
//! The magic is `SGNT`, the version is [`VERSION`]. The request id is
//! chosen by the client and echoed verbatim on the response — that is the
//! whole pipelining contract: a client may have any number of requests in
//! flight on one connection, the server may answer them in any order, and
//! the id is what reunites them. Payloads are compact JSON over
//! [`saga_core::json`], reusing the [`saga_core::wire`] codecs for values
//! and session tokens — no new serialization registry.
//!
//! # Rejection policy
//!
//! Decoding failures split into two tiers, so a bad request cannot take
//! down a connection and a bad connection cannot take down the server:
//!
//! * **Payload-level garbage** (unknown opcode, undecodable JSON, a
//!   request payload that fails validation) still arrived in a
//!   well-formed frame. The server answers that request id with a typed
//!   [`Response::Error`] and the connection keeps serving.
//! * **Frame-level garbage** (wrong magic, unsupported version, a
//!   declared payload length over [`MAX_PAYLOAD`], a peer that
//!   disconnects mid-frame) leaves the byte stream unsynchronizable —
//!   there is no trustworthy length to skip. The server sends a final
//!   error frame when it still knows the request id (oversized lengths
//!   arrive with a parsed header) and closes *that connection only*;
//!   the acceptor, the worker pool and every other connection are
//!   unaffected. The fault suite in `tests/protocol_faults.rs` drills
//!   exactly these paths.

use std::io::{Read, Write};

use saga_core::json::{self, Json};
use saga_core::wire::{
    session_token_from_json, session_token_to_json, value_from_json, value_to_json,
};
use saga_core::{
    intern, EntityId, EntityRecord, ExtendedTriple, FactMeta, Lsn, ProbeKey, RelId, RelPart,
    Result, SagaError, SessionToken, SourceId, SourceTrust, SubjectRef, Value, WriteBatch,
};
use saga_live::QueryResult;

/// Frame magic: the first four bytes of every saga-net frame.
pub const MAGIC: [u8; 4] = *b"SGNT";
/// Protocol version carried in every frame header.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes (magic + version + opcode + id + length).
pub const HEADER_LEN: usize = 18;
/// Hard cap on a frame's payload. A declared length above this is a
/// frame-level protocol violation: the stream cannot be resynchronized
/// (the length cannot be trusted enough to skip), so the connection is
/// rejected after a best-effort error response.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Request and response opcodes. Requests use the low range, responses
/// the high range; the split is cosmetic (frames are direction-typed by
/// who sent them) but makes captures self-describing.
pub mod opcode {
    /// Liveness probe (optionally delayed server-side — saturation drills).
    pub const PING: u8 = 0x01;
    /// KGQ query, optionally session-constrained.
    pub const QUERY: u8 = 0x02;
    /// `GraphWrite` batch commit through the write-ahead log.
    pub const COMMIT: u8 = 0x03;
    /// `GraphRead::postings`.
    pub const POSTINGS: u8 = 0x04;
    /// `GraphRead::selectivity`.
    pub const SELECTIVITY: u8 = 0x05;
    /// `GraphRead::probe_contains`.
    pub const PROBE_CONTAINS: u8 = 0x06;
    /// `GraphRead::resolve_name`.
    pub const RESOLVE_NAME: u8 = 0x07;
    /// `GraphRead::record`.
    pub const RECORD: u8 = 0x08;
    /// `GraphRead::generation`.
    pub const GENERATION: u8 = 0x09;

    /// Reply to [`PING`].
    pub const PONG: u8 = 0x81;
    /// KGQ result (entities or values).
    pub const RESULT: u8 = 0x82;
    /// Commit acknowledgement (LSN + session token).
    pub const COMMITTED: u8 = 0x83;
    /// Entity id list (postings / resolve_name).
    pub const ENTITIES: u8 = 0x84;
    /// Scalar count (selectivity / generation).
    pub const COUNT: u8 = 0x85;
    /// Boolean (probe_contains).
    pub const BOOL: u8 = 0x86;
    /// Optional entity record.
    pub const RECORD_HIT: u8 = 0x87;
    /// Typed failure for this request id; the connection stays usable.
    pub const ERROR: u8 = 0xE0;
    /// Admission control shed this request; retry after a backoff.
    pub const OVERLOADED: u8 = 0xE1;
    /// Retryable freshness/capacity miss (e.g. session wait timed out).
    pub const UNAVAILABLE: u8 = 0xE2;
}

/// Frame-level decode failures (see the module docs for the policy).
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed mid-frame: a header or payload was cut short.
    Torn {
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes actually read before EOF.
        got: usize,
    },
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`]. Carries the
    /// parsed header so the server can still address its final error
    /// response to the offending request.
    Oversized {
        /// The declared payload length.
        declared: u32,
        /// Request id from the (well-formed) header.
        request_id: u64,
    },
    /// Underlying transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Torn { expected, got } => {
                write!(f, "torn frame: expected {expected} more bytes, got {got}")
            }
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::Oversized { declared, .. } => write!(
                f,
                "oversized frame: declared payload {declared} exceeds {MAX_PAYLOAD}"
            ),
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded frame: the header fields plus the raw payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen id, echoed on the response (the pipelining key).
    pub request_id: u64,
    /// Message opcode (see [`opcode`]).
    pub opcode: u8,
    /// Raw payload bytes (compact JSON).
    pub payload: Vec<u8>,
}

/// Encode one frame into its wire bytes.
pub fn encode_frame(request_id: u64, op: u8, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("payload exceeds u32 range");
    assert!(len <= MAX_PAYLOAD, "refusing to encode an oversized frame");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(op);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one frame to `w` (single `write_all`, so a frame is never
/// interleaved with another writer's bytes as long as callers serialize
/// on the stream — the server's per-connection write lock does exactly
/// that).
pub fn write_frame(
    w: &mut impl Write,
    request_id: u64,
    op: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    w.write_all(&encode_frame(request_id, op, payload))
}

/// Read exactly `buf.len()` bytes, reporting how many arrived before EOF.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// Read one frame. `Ok(None)` is a clean close (EOF on a frame
/// boundary); every other shortfall or malformation is a [`FrameError`].
pub fn read_frame(r: &mut impl Read) -> std::result::Result<Option<Frame>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    let got = read_full(r, &mut header).map_err(FrameError::Io)?;
    if got == 0 {
        return Ok(None);
    }
    if got < HEADER_LEN {
        return Err(FrameError::Torn {
            expected: HEADER_LEN - got,
            got,
        });
    }
    let magic: [u8; 4] = header[0..4].try_into().expect("slice length");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if header[4] != VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    let op = header[5];
    let request_id = u64::from_le_bytes(header[6..14].try_into().expect("slice length"));
    let len = u32::from_le_bytes(header[14..18].try_into().expect("slice length"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized {
            declared: len,
            request_id,
        });
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_full(r, &mut payload).map_err(FrameError::Io)?;
    if got < payload.len() {
        return Err(FrameError::Torn {
            expected: payload.len() - got,
            got,
        });
    }
    Ok(Some(Frame {
        request_id,
        opcode: op,
        payload,
    }))
}

fn bad(msg: impl Into<String>) -> SagaError {
    SagaError::Storage(format!("bad wire payload: {}", msg.into()))
}

fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn get_str(json: &Json, key: &str) -> Result<String> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("missing string field {key}")))
}

fn get_u64(json: &Json, key: &str) -> Result<u64> {
    let raw = json
        .get(key)
        .and_then(Json::as_i64)
        .ok_or_else(|| bad(format!("missing integer field {key}")))?;
    u64::try_from(raw).map_err(|_| bad(format!("negative field {key}")))
}

fn entity_ids_to_json(ids: &[EntityId]) -> Json {
    Json::Array(
        ids.iter()
            .map(|id| Json::Int(i64::try_from(id.0).expect("entity id exceeds wire range")))
            .collect(),
    )
}

fn entity_ids_from_json(json: &Json) -> Result<Vec<EntityId>> {
    json.as_array()
        .ok_or_else(|| bad("entity list is not an array"))?
        .iter()
        .map(|j| {
            let raw = j.as_i64().ok_or_else(|| bad("entity id is not an int"))?;
            u64::try_from(raw)
                .map(EntityId)
                .map_err(|_| bad("negative entity id"))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Triples and batches
// ---------------------------------------------------------------------------

fn subject_to_json(subject: &SubjectRef) -> Json {
    match subject {
        SubjectRef::Kg(id) => Json::Int(i64::try_from(id.0).expect("entity id exceeds wire range")),
        SubjectRef::Source(source, local) => obj([
            ("src", Json::Int(i64::from(source.0))),
            ("local", Json::str(local.as_ref())),
        ]),
    }
}

fn subject_from_json(json: &Json) -> Result<SubjectRef> {
    match json {
        Json::Int(raw) => {
            let id = u64::try_from(*raw).map_err(|_| bad("negative subject id"))?;
            Ok(SubjectRef::Kg(EntityId(id)))
        }
        Json::Object(_) => {
            let source = get_u64(json, "src")?;
            let source = u32::try_from(source).map_err(|_| bad("subject source exceeds u32"))?;
            Ok(SubjectRef::source(
                SourceId(source),
                get_str(json, "local")?,
            ))
        }
        _ => Err(bad("subject is neither id nor source ref")),
    }
}

/// Encode one [`ExtendedTriple`] into its wire JSON form. Object values
/// reuse the oplog's [`value_to_json`] codec; provenance ships as aligned
/// `[source, trust]` pairs.
pub fn triple_to_json(triple: &ExtendedTriple) -> Json {
    let mut fields: Vec<(&'static str, Json)> = vec![
        ("s", subject_to_json(&triple.subject)),
        ("p", Json::str(triple.predicate.text())),
        ("o", value_to_json(&triple.object)),
    ];
    if let Some(rel) = &triple.rel {
        fields.push((
            "rel",
            obj([
                ("id", Json::Int(i64::from(rel.rel_id.0))),
                ("pred", Json::str(rel.rel_predicate.text())),
            ]),
        ));
    }
    fields.push((
        "prov",
        Json::Array(
            triple
                .meta
                .provenance
                .iter()
                .map(|st| {
                    Json::Array(vec![
                        Json::Int(i64::from(st.source.0)),
                        Json::Float(f64::from(st.trust)),
                    ])
                })
                .collect(),
        ),
    ));
    if let Some(locale) = triple.meta.locale {
        fields.push(("locale", Json::str(locale.text())));
    }
    obj(fields)
}

/// Decode an [`ExtendedTriple`] from its wire JSON form.
pub fn triple_from_json(json: &Json) -> Result<ExtendedTriple> {
    let subject = subject_from_json(json.get("s").ok_or_else(|| bad("triple missing subject"))?)?;
    let predicate = intern(&get_str(json, "p")?);
    let object = value_from_json(json.get("o").ok_or_else(|| bad("triple missing object"))?)?;
    let rel = match json.get("rel") {
        None => None,
        Some(rel) => {
            let id = get_u64(rel, "id")?;
            let id = u32::try_from(id).map_err(|_| bad("rel id exceeds u32"))?;
            Some(RelPart {
                rel_id: RelId(id),
                rel_predicate: intern(&get_str(rel, "pred")?),
            })
        }
    };
    let provenance = json
        .get("prov")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("triple missing prov"))?
        .iter()
        .map(|pair| {
            let [source, trust] = pair
                .as_array()
                .ok_or_else(|| bad("prov entry is not an array"))?
            else {
                return Err(bad("prov entry is not a 2-array"));
            };
            let source = source.as_i64().ok_or_else(|| bad("prov source"))?;
            let source = u32::try_from(source).map_err(|_| bad("prov source exceeds u32"))?;
            let trust = trust.as_f64().ok_or_else(|| bad("prov trust"))? as f32;
            Ok(SourceTrust {
                source: SourceId(source),
                trust,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let locale = match json.get("locale") {
        None => None,
        Some(l) => Some(intern(
            l.as_str().ok_or_else(|| bad("locale is not a string"))?,
        )),
    };
    Ok(ExtendedTriple {
        subject,
        predicate,
        rel,
        object,
        meta: FactMeta { provenance, locale },
    })
}

/// One serializable write operation — the subset of
/// [`WriteOp`](saga_core::WriteOp) that can cross a process boundary
/// (record-mutation closures and volatile overwrites stay in-process;
/// curation services own the former, ingest pipelines the latter).
#[derive(Clone, Debug, PartialEq)]
pub enum WireOp {
    /// Non-destructive fact upsert.
    Upsert(ExtendedTriple),
    /// Record a `same_as` link from a source entity to a KG entity.
    Link {
        /// The source namespace.
        source: SourceId,
        /// Source-local entity id.
        local_id: String,
        /// The KG entity it resolves to.
        entity: EntityId,
    },
    /// Remove every attribution of a source.
    RetractSource(SourceId),
    /// Drop one source entity's contribution.
    RetractSourceEntity {
        /// The source namespace.
        source: SourceId,
        /// Source-local entity id.
        local_id: String,
    },
}

fn wire_op_to_json(op: &WireOp) -> Json {
    match op {
        WireOp::Upsert(t) => obj([("op", Json::str("upsert")), ("triple", triple_to_json(t))]),
        WireOp::Link {
            source,
            local_id,
            entity,
        } => obj([
            ("op", Json::str("link")),
            ("source", Json::Int(i64::from(source.0))),
            ("local", Json::str(local_id)),
            (
                "entity",
                Json::Int(i64::try_from(entity.0).expect("entity id exceeds wire range")),
            ),
        ]),
        WireOp::RetractSource(source) => obj([
            ("op", Json::str("retract_source")),
            ("source", Json::Int(i64::from(source.0))),
        ]),
        WireOp::RetractSourceEntity { source, local_id } => obj([
            ("op", Json::str("retract_entity")),
            ("source", Json::Int(i64::from(source.0))),
            ("local", Json::str(local_id)),
        ]),
    }
}

fn source_from(json: &Json) -> Result<SourceId> {
    let raw = get_u64(json, "source")?;
    u32::try_from(raw)
        .map(SourceId)
        .map_err(|_| bad("source id exceeds u32"))
}

fn wire_op_from_json(json: &Json) -> Result<WireOp> {
    match get_str(json, "op")?.as_str() {
        "upsert" => Ok(WireOp::Upsert(triple_from_json(
            json.get("triple")
                .ok_or_else(|| bad("upsert missing triple"))?,
        )?)),
        "link" => Ok(WireOp::Link {
            source: source_from(json)?,
            local_id: get_str(json, "local")?,
            entity: EntityId(get_u64(json, "entity")?),
        }),
        "retract_source" => Ok(WireOp::RetractSource(source_from(json)?)),
        "retract_entity" => Ok(WireOp::RetractSourceEntity {
            source: source_from(json)?,
            local_id: get_str(json, "local")?,
        }),
        other => Err(bad(format!("unknown wire op {other}"))),
    }
}

/// A serializable write batch: the networked twin of
/// [`WriteBatch`], built with the same consuming
/// combinators and lowered into one on the server side (where it commits
/// through the write-ahead `LoggedWriter` like any in-process producer).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireBatch {
    ops: Vec<WireOp>,
}

impl WireBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage a fact upsert.
    pub fn upsert(mut self, triple: ExtendedTriple) -> Self {
        self.ops.push(WireOp::Upsert(triple));
        self
    }

    /// Stage a `same_as` link.
    pub fn link(mut self, source: SourceId, local_id: impl Into<String>, entity: EntityId) -> Self {
        self.ops.push(WireOp::Link {
            source,
            local_id: local_id.into(),
            entity,
        });
        self
    }

    /// Stage a whole-source retraction.
    pub fn retract_source(mut self, source: SourceId) -> Self {
        self.ops.push(WireOp::RetractSource(source));
        self
    }

    /// Stage a single source-entity retraction.
    pub fn retract_source_entity(mut self, source: SourceId, local_id: impl Into<String>) -> Self {
        self.ops.push(WireOp::RetractSourceEntity {
            source,
            local_id: local_id.into(),
        });
        self
    }

    /// Stage a named, typed entity (mirrors `WriteBatch::named_entity`).
    pub fn named_entity(
        self,
        id: EntityId,
        name: &str,
        entity_type: &str,
        source: SourceId,
        trust: f32,
    ) -> Self {
        use saga_core::well_known;
        let meta = FactMeta::from_source(source, trust);
        self.upsert(ExtendedTriple::simple(
            id,
            intern(well_known::NAME),
            Value::str(name),
            meta.clone(),
        ))
        .upsert(ExtendedTriple::simple(
            id,
            intern(well_known::TYPE),
            Value::str(entity_type),
            meta,
        ))
    }

    /// Push one op (loop-friendly form of the combinators).
    pub fn push(&mut self, op: WireOp) {
        self.ops.push(op);
    }

    /// Number of staged ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The staged ops.
    pub fn ops(&self) -> &[WireOp] {
        &self.ops
    }

    /// Lower into the in-process [`WriteBatch`] the server commits.
    pub fn into_write_batch(self) -> WriteBatch {
        let mut batch = WriteBatch::new();
        for op in self.ops {
            match op {
                WireOp::Upsert(t) => batch = batch.upsert(t),
                WireOp::Link {
                    source,
                    local_id,
                    entity,
                } => batch = batch.link(source, local_id, entity),
                WireOp::RetractSource(s) => batch = batch.retract_source(s),
                WireOp::RetractSourceEntity { source, local_id } => {
                    batch = batch.retract_source_entity(source, local_id)
                }
            }
        }
        batch
    }
}

// ---------------------------------------------------------------------------
// Probes
// ---------------------------------------------------------------------------

/// Encode a [`ProbeKey`] into its wire JSON form.
pub fn probe_to_json(probe: &ProbeKey) -> Json {
    match probe {
        ProbeKey::Name(n) => obj([("kind", Json::str("name")), ("name", Json::str(n))]),
        ProbeKey::Literal(pred, value) => obj([
            ("kind", Json::str("literal")),
            ("pred", Json::str(pred.text())),
            ("value", value_to_json(value)),
        ]),
        ProbeKey::Edge(pred, target) => obj([
            ("kind", Json::str("edge")),
            ("pred", Json::str(pred.text())),
            (
                "target",
                Json::Int(i64::try_from(target.0).expect("entity id exceeds wire range")),
            ),
        ]),
        ProbeKey::Type(ty) => obj([("kind", Json::str("type")), ("type", Json::str(ty.text()))]),
    }
}

/// Decode a [`ProbeKey`] from its wire JSON form.
pub fn probe_from_json(json: &Json) -> Result<ProbeKey> {
    match get_str(json, "kind")?.as_str() {
        "name" => Ok(ProbeKey::Name(get_str(json, "name")?)),
        "literal" => Ok(ProbeKey::Literal(
            intern(&get_str(json, "pred")?),
            value_from_json(
                json.get("value")
                    .ok_or_else(|| bad("literal probe missing value"))?,
            )?,
        )),
        "edge" => Ok(ProbeKey::Edge(
            intern(&get_str(json, "pred")?),
            EntityId(get_u64(json, "target")?),
        )),
        "type" => Ok(ProbeKey::Type(intern(&get_str(json, "type")?))),
        other => Err(bad(format!("unknown probe kind {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One client request. Each variant maps to one opcode; the payload is
/// the variant's JSON form.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe. `delay_ms` asks the server to hold the worker for
    /// that long before replying — a diagnostics/testing aid that gives
    /// saturation drills a deterministic way to fill the admission queue.
    Ping {
        /// Artificial service time in milliseconds (0 in production use).
        delay_ms: u64,
    },
    /// One KGQ query, optionally constrained by a session token
    /// (read-your-writes over the wire).
    Query {
        /// KGQ text.
        text: String,
        /// Serve only at or past this token's LSN.
        session: Option<SessionToken>,
    },
    /// Commit a batch through the server's write-ahead `LoggedWriter`.
    Commit(WireBatch),
    /// `GraphRead::postings` on the routed fleet.
    Postings(ProbeKey),
    /// `GraphRead::selectivity` on the routed fleet.
    Selectivity(ProbeKey),
    /// `GraphRead::probe_contains` on the routed fleet.
    ProbeContains(ProbeKey, EntityId),
    /// `GraphRead::resolve_name` on the routed fleet.
    ResolveName(String),
    /// `GraphRead::record` on the routed fleet.
    Record(EntityId),
    /// `GraphRead::generation` of the fleet (sum of slot generations).
    Generation,
}

impl Request {
    /// This request's opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Ping { .. } => opcode::PING,
            Request::Query { .. } => opcode::QUERY,
            Request::Commit(_) => opcode::COMMIT,
            Request::Postings(_) => opcode::POSTINGS,
            Request::Selectivity(_) => opcode::SELECTIVITY,
            Request::ProbeContains(..) => opcode::PROBE_CONTAINS,
            Request::ResolveName(_) => opcode::RESOLVE_NAME,
            Request::Record(_) => opcode::RECORD,
            Request::Generation => opcode::GENERATION,
        }
    }

    /// This request's JSON payload.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping { delay_ms } => obj([(
                "delay_ms",
                Json::Int(i64::try_from(*delay_ms).expect("delay exceeds wire range")),
            )]),
            Request::Query { text, session } => {
                let mut fields = vec![("q", Json::str(text))];
                if let Some(token) = session {
                    fields.push(("session", session_token_to_json(token)));
                }
                obj(fields)
            }
            Request::Commit(batch) => obj([(
                "ops",
                Json::Array(batch.ops().iter().map(wire_op_to_json).collect()),
            )]),
            Request::Postings(probe) | Request::Selectivity(probe) => {
                obj([("probe", probe_to_json(probe))])
            }
            Request::ProbeContains(probe, id) => obj([
                ("probe", probe_to_json(probe)),
                (
                    "id",
                    Json::Int(i64::try_from(id.0).expect("entity id exceeds wire range")),
                ),
            ]),
            Request::ResolveName(name) => obj([("name", Json::str(name))]),
            Request::Record(id) => obj([(
                "id",
                Json::Int(i64::try_from(id.0).expect("entity id exceeds wire range")),
            )]),
            Request::Generation => obj([]),
        }
    }

    /// Encode into a full frame under `request_id`.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        encode_frame(
            request_id,
            self.opcode(),
            self.to_json().to_string_compact().as_bytes(),
        )
    }
}

fn parse_payload(frame: &Frame) -> Result<Json> {
    let text = std::str::from_utf8(&frame.payload).map_err(|_| bad("payload is not UTF-8"))?;
    json::parse(text).map_err(|e| bad(e.to_string()))
}

// ---------------------------------------------------------------------------
// Entity-list fast path
// ---------------------------------------------------------------------------
//
// Entity-id lists are the protocol's hottest payload (every FIND result,
// postings snapshot and name resolution is one), and for wide scans they
// reach hundreds of ids per response. Building a `Json` tree per id —
// then walking it back on the client — costs more than executing the
// query. These two functions produce and consume the *same* compact JSON
// the tree path emits (`{"<key>":[1,2,3]}`), just without the tree: the
// encoder formats digits straight into the payload string, the decoder
// parses digits straight out of it. On any shape mismatch the decoder
// returns `None` and the caller falls back to the general JSON parser,
// so foreign (tree-encoded) peers interoperate unchanged.

fn ids_payload(key: &str, ids: &[EntityId]) -> String {
    let mut out = Vec::with_capacity(key.len() + 6 + ids.len() * 8);
    out.extend_from_slice(b"{\"");
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(b"\":[");
    let mut digits = [0u8; 20];
    for (at, id) in ids.iter().enumerate() {
        if at > 0 {
            out.push(b',');
        }
        // Manual itoa: digits emitted right-to-left into a stack buffer.
        let mut n = id.0;
        let mut pos = digits.len();
        loop {
            pos -= 1;
            digits[pos] = b'0' + (n % 10) as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        out.extend_from_slice(&digits[pos..]);
    }
    out.extend_from_slice(b"]}");
    // Only ASCII was appended.
    String::from_utf8(out).expect("ascii payload")
}

fn parse_ids_payload(payload: &[u8], key: &str) -> Option<Vec<EntityId>> {
    let body = payload
        .strip_prefix(b"{\"")?
        .strip_prefix(key.as_bytes())?
        .strip_prefix(b"\":[")?
        .strip_suffix(b"]}")?;
    if body.is_empty() {
        return Some(Vec::new());
    }
    // Manual digit scan — this is the client's hottest loop for wide
    // entity results; str::parse per token measurably lags it.
    let mut ids = Vec::with_capacity(body.len() / 4 + 1);
    let mut cur: u64 = 0;
    let mut len = 0u8;
    for &b in body {
        match b {
            b'0'..=b'9' => {
                // A value over u64::MAX is not ours; the checked math
                // catches 20-digit overflows the length guard can't.
                if len >= 20 {
                    return None;
                }
                cur = cur.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
                len += 1;
            }
            b',' if len > 0 => {
                ids.push(EntityId(cur));
                cur = 0;
                len = 0;
            }
            _ => return None,
        }
    }
    if len == 0 {
        return None; // trailing comma
    }
    ids.push(EntityId(cur));
    Some(ids)
}

/// Decode a request frame (the server side of the codec). Unknown
/// opcodes and malformed payloads are payload-level errors: the caller
/// answers them with [`Response::Error`] and keeps the connection.
pub fn decode_request(frame: &Frame) -> Result<Request> {
    let json = parse_payload(frame)?;
    match frame.opcode {
        opcode::PING => Ok(Request::Ping {
            delay_ms: get_u64(&json, "delay_ms").unwrap_or(0),
        }),
        opcode::QUERY => Ok(Request::Query {
            text: get_str(&json, "q")?,
            session: match json.get("session") {
                None => None,
                Some(token) => Some(session_token_from_json(token)?),
            },
        }),
        opcode::COMMIT => {
            let ops = json
                .get("ops")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("commit missing ops"))?
                .iter()
                .map(wire_op_from_json)
                .collect::<Result<Vec<_>>>()?;
            Ok(Request::Commit(WireBatch { ops }))
        }
        opcode::POSTINGS => Ok(Request::Postings(probe_from_json(
            json.get("probe").ok_or_else(|| bad("missing probe"))?,
        )?)),
        opcode::SELECTIVITY => Ok(Request::Selectivity(probe_from_json(
            json.get("probe").ok_or_else(|| bad("missing probe"))?,
        )?)),
        opcode::PROBE_CONTAINS => Ok(Request::ProbeContains(
            probe_from_json(json.get("probe").ok_or_else(|| bad("missing probe"))?)?,
            EntityId(get_u64(&json, "id")?),
        )),
        opcode::RESOLVE_NAME => Ok(Request::ResolveName(get_str(&json, "name")?)),
        opcode::RECORD => Ok(Request::Record(EntityId(get_u64(&json, "id")?))),
        opcode::GENERATION => Ok(Request::Generation),
        other => Err(bad(format!("unknown request opcode {other:#04x}"))),
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// A successful commit acknowledgement: where the batch landed in the
/// log and the session token that makes it readable-by-its-writer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Committed {
    /// The commit's log sequence number.
    pub lsn: Lsn,
    /// Read-your-writes token (`SessionToken::at(lsn)`), ready to thread
    /// into subsequent [`Request::Query`] calls.
    pub token: SessionToken,
    /// Facts the commit added.
    pub facts_added: u64,
    /// Facts the commit removed.
    pub facts_removed: u64,
}

/// Classified request failure carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame decoded but the request was malformed (unknown opcode,
    /// bad payload). Not retryable as-is.
    BadRequest,
    /// KGQ parse/compile/execution failure. Not retryable as-is.
    Query,
    /// Server-side failure executing a well-formed request.
    Internal,
}

impl ErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Query => "query",
            ErrorKind::Internal => "internal",
        }
    }

    fn parse(s: &str) -> Result<ErrorKind> {
        match s {
            "bad_request" => Ok(ErrorKind::BadRequest),
            "query" => Ok(ErrorKind::Query),
            "internal" => Ok(ErrorKind::Internal),
            other => Err(bad(format!("unknown error kind {other}"))),
        }
    }
}

/// One server response. The overload/unavailable variants are *typed* so
/// clients can implement backoff without string-matching messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// KGQ result.
    Result(QueryResult),
    /// Commit acknowledgement.
    Committed(Committed),
    /// Entity id list (postings / resolve_name).
    Entities(Vec<EntityId>),
    /// Scalar count (selectivity / generation).
    Count(u64),
    /// Boolean (probe_contains).
    Bool(bool),
    /// Optional record (None: entity unknown to the routed replica).
    Record(Option<EntityRecord>),
    /// The request failed; the connection remains usable.
    Error {
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// Admission control shed the request (queue full or the global
    /// in-flight cap reached). Retryable after a backoff; the server did
    /// *not* execute anything.
    Overloaded {
        /// Human-readable detail (which limit tripped).
        message: String,
        /// Server-suggested minimum backoff in milliseconds. The
        /// shedding side knows its congestion better than any client
        /// schedule; pools floor their exponential backoff at this.
        backoff_hint_ms: u64,
    },
    /// Retryable freshness/capacity miss — the wire form of
    /// [`SagaError::Unavailable`] (e.g. a session wait that timed out
    /// because no replica reached the token's LSN in time).
    Unavailable {
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// This response's opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Response::Pong => opcode::PONG,
            Response::Result(_) => opcode::RESULT,
            Response::Committed(_) => opcode::COMMITTED,
            Response::Entities(_) => opcode::ENTITIES,
            Response::Count(_) => opcode::COUNT,
            Response::Bool(_) => opcode::BOOL,
            Response::Record(_) => opcode::RECORD_HIT,
            Response::Error { .. } => opcode::ERROR,
            Response::Overloaded { .. } => opcode::OVERLOADED,
            Response::Unavailable { .. } => opcode::UNAVAILABLE,
        }
    }

    /// This response's JSON payload.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong => obj([]),
            Response::Result(QueryResult::Entities(ids)) => {
                obj([("entities", entity_ids_to_json(ids))])
            }
            Response::Result(QueryResult::Values(values)) => obj([(
                "values",
                Json::Array(values.iter().map(value_to_json).collect()),
            )]),
            Response::Committed(c) => obj([
                (
                    "lsn",
                    Json::Int(i64::try_from(c.lsn.0).expect("lsn exceeds wire range")),
                ),
                ("token", session_token_to_json(&c.token)),
                (
                    "facts_added",
                    Json::Int(i64::try_from(c.facts_added).expect("count exceeds wire range")),
                ),
                (
                    "facts_removed",
                    Json::Int(i64::try_from(c.facts_removed).expect("count exceeds wire range")),
                ),
            ]),
            Response::Entities(ids) => obj([("ids", entity_ids_to_json(ids))]),
            Response::Count(n) => obj([(
                "n",
                Json::Int(i64::try_from(*n).expect("count exceeds wire range")),
            )]),
            Response::Bool(b) => obj([("v", Json::Bool(*b))]),
            Response::Record(rec) => obj([(
                "record",
                match rec {
                    None => Json::Null,
                    Some(rec) => obj([
                        (
                            "id",
                            Json::Int(
                                i64::try_from(rec.id.0).expect("entity id exceeds wire range"),
                            ),
                        ),
                        (
                            "triples",
                            Json::Array(rec.triples.iter().map(triple_to_json).collect()),
                        ),
                    ]),
                },
            )]),
            Response::Error { kind, message } => obj([
                ("kind", Json::str(kind.as_str())),
                ("message", Json::str(message)),
            ]),
            Response::Overloaded {
                message,
                backoff_hint_ms,
            } => obj([
                ("message", Json::str(message)),
                (
                    "backoff_hint_ms",
                    Json::Int(i64::try_from(*backoff_hint_ms).expect("hint exceeds wire range")),
                ),
            ]),
            Response::Unavailable { message } => obj([("message", Json::str(message))]),
        }
    }

    /// Encode into a full frame under `request_id`. Entity-list payloads
    /// skip the `Json` tree (see the fast-path functions above); the
    /// bytes are identical either way.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        let payload = match self {
            Response::Result(QueryResult::Entities(ids)) => ids_payload("entities", ids),
            Response::Entities(ids) => ids_payload("ids", ids),
            other => other.to_json().to_string_compact(),
        };
        encode_frame(request_id, self.opcode(), payload.as_bytes())
    }
}

/// Decode a response frame (the client side of the codec).
pub fn decode_response(frame: &Frame) -> Result<Response> {
    // Entity-list fast path first; fall through to the tree parser for
    // every other shape (including value results on the same opcode).
    match frame.opcode {
        opcode::RESULT => {
            if let Some(ids) = parse_ids_payload(&frame.payload, "entities") {
                return Ok(Response::Result(QueryResult::Entities(ids)));
            }
        }
        opcode::ENTITIES => {
            if let Some(ids) = parse_ids_payload(&frame.payload, "ids") {
                return Ok(Response::Entities(ids));
            }
        }
        _ => {}
    }
    let json = parse_payload(frame)?;
    match frame.opcode {
        opcode::PONG => Ok(Response::Pong),
        opcode::RESULT => {
            if let Some(entities) = json.get("entities") {
                Ok(Response::Result(QueryResult::Entities(
                    entity_ids_from_json(entities)?,
                )))
            } else if let Some(values) = json.get("values") {
                let values = values
                    .as_array()
                    .ok_or_else(|| bad("values is not an array"))?
                    .iter()
                    .map(value_from_json)
                    .collect::<Result<Vec<Value>>>()?;
                Ok(Response::Result(QueryResult::Values(values)))
            } else {
                Err(bad("result has neither entities nor values"))
            }
        }
        opcode::COMMITTED => Ok(Response::Committed(Committed {
            lsn: Lsn(get_u64(&json, "lsn")?),
            token: session_token_from_json(json.get("token").ok_or_else(|| bad("missing token"))?)?,
            facts_added: get_u64(&json, "facts_added")?,
            facts_removed: get_u64(&json, "facts_removed")?,
        })),
        opcode::ENTITIES => Ok(Response::Entities(entity_ids_from_json(
            json.get("ids").ok_or_else(|| bad("missing ids"))?,
        )?)),
        opcode::COUNT => Ok(Response::Count(get_u64(&json, "n")?)),
        opcode::BOOL => Ok(Response::Bool(
            json.get("v")
                .and_then(Json::as_bool)
                .ok_or_else(|| bad("missing bool"))?,
        )),
        opcode::RECORD_HIT => {
            let rec = json.get("record").ok_or_else(|| bad("missing record"))?;
            match rec {
                Json::Null => Ok(Response::Record(None)),
                rec => {
                    let id = EntityId(get_u64(rec, "id")?);
                    let triples = rec
                        .get("triples")
                        .and_then(Json::as_array)
                        .ok_or_else(|| bad("record missing triples"))?
                        .iter()
                        .map(triple_from_json)
                        .collect::<Result<Vec<_>>>()?;
                    let mut record = EntityRecord::new(id);
                    record.triples = triples;
                    Ok(Response::Record(Some(record)))
                }
            }
        }
        opcode::ERROR => Ok(Response::Error {
            kind: ErrorKind::parse(&get_str(&json, "kind")?)?,
            message: get_str(&json, "message")?,
        }),
        opcode::OVERLOADED => Ok(Response::Overloaded {
            message: get_str(&json, "message")?,
            // Optional on decode: version-1 peers without the field get
            // hint 0 (meaning "no hint", client schedule applies).
            backoff_hint_ms: get_u64(&json, "backoff_hint_ms").unwrap_or(0),
        }),
        opcode::UNAVAILABLE => Ok(Response::Unavailable {
            message: get_str(&json, "message")?,
        }),
        other => Err(bad(format!("unknown response opcode {other:#04x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triple() -> ExtendedTriple {
        ExtendedTriple::composite(
            EntityId(7),
            intern("educated_at"),
            RelId(2),
            intern("school"),
            Value::str("UW"),
            FactMeta::localized(SourceId(3), 0.75, "en"),
        )
    }

    fn roundtrip_request(req: Request) -> Request {
        let bytes = req.encode(42);
        let frame = read_frame(&mut bytes.as_slice()).unwrap().unwrap();
        assert_eq!(frame.request_id, 42);
        assert_eq!(frame.opcode, req.opcode());
        decode_request(&frame).unwrap()
    }

    fn roundtrip_response(resp: Response) -> Response {
        let bytes = resp.encode(9);
        let frame = read_frame(&mut bytes.as_slice()).unwrap().unwrap();
        assert_eq!(frame.request_id, 9);
        decode_response(&frame).unwrap()
    }

    #[test]
    fn every_request_kind_roundtrips() {
        let requests = vec![
            Request::Ping { delay_ms: 3 },
            Request::Query {
                text: "FIND song WHERE name = \"x\"".into(),
                session: Some(SessionToken::at(Lsn(12))),
            },
            Request::Query {
                text: "GET AKG:1 . name".into(),
                session: None,
            },
            Request::Commit(
                WireBatch::new()
                    .named_entity(EntityId(1), "Billie", "artist", SourceId(1), 0.9)
                    .upsert(triple())
                    .link(SourceId(2), "m42", EntityId(1))
                    .retract_source(SourceId(5))
                    .retract_source_entity(SourceId(2), "m43"),
            ),
            Request::Postings(ProbeKey::Name("springfield".into())),
            Request::Selectivity(ProbeKey::Literal(intern("born"), Value::Int(2001))),
            Request::ProbeContains(
                ProbeKey::Edge(intern("located_in"), EntityId(9)),
                EntityId(4),
            ),
            Request::ResolveName("Billie Eilish".into()),
            Request::Record(EntityId(17)),
            Request::Generation,
        ];
        for req in requests {
            assert_eq!(roundtrip_request(req.clone()), req, "{req:?}");
        }
    }

    #[test]
    fn every_response_kind_roundtrips() {
        let mut record = EntityRecord::new(EntityId(7));
        record.triples.push(triple());
        let responses = vec![
            Response::Pong,
            Response::Result(QueryResult::Entities(vec![EntityId(1), EntityId(2)])),
            Response::Result(QueryResult::Values(vec![
                Value::str("x"),
                Value::Float(f64::NAN),
                Value::Entity(EntityId(3)),
            ])),
            Response::Committed(Committed {
                lsn: Lsn(88),
                token: SessionToken::at(Lsn(88)),
                facts_added: 5,
                facts_removed: 1,
            }),
            Response::Entities(vec![EntityId(4)]),
            Response::Count(1234),
            Response::Bool(true),
            Response::Record(None),
            Response::Record(Some(record)),
            Response::Error {
                kind: ErrorKind::Query,
                message: "parse error".into(),
            },
            Response::Overloaded {
                message: "queue full".into(),
                backoff_hint_ms: 25,
            },
            Response::Unavailable {
                message: "session wait timed out".into(),
            },
        ];
        for resp in responses {
            assert_eq!(roundtrip_response(resp.clone()), resp, "{resp:?}");
        }
    }

    #[test]
    fn wire_batch_lowers_to_the_same_ops() {
        use saga_core::WriteOp;
        let batch = WireBatch::new()
            .upsert(triple())
            .link(SourceId(2), "m42", EntityId(1))
            .retract_source(SourceId(5));
        let lowered = batch.into_write_batch();
        let ops = lowered.into_ops();
        assert_eq!(ops.len(), 3);
        assert!(matches!(&ops[0], WriteOp::Upsert(t) if *t == triple()));
        assert!(matches!(&ops[1], WriteOp::Link { source, local_id, entity }
                if *source == SourceId(2) && local_id == "m42" && *entity == EntityId(1)));
        assert!(matches!(&ops[2], WriteOp::RetractSource(SourceId(5))));
    }

    #[test]
    fn clean_eof_is_none_not_an_error() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut &empty[..]).unwrap().is_none());
    }

    #[test]
    fn torn_header_and_payload_are_detected() {
        let bytes = Request::Ping { delay_ms: 0 }.encode(1);
        // Cut inside the header.
        let err = read_frame(&mut &bytes[..7]).unwrap_err();
        assert!(matches!(err, FrameError::Torn { .. }), "{err}");
        // Cut inside the payload.
        let err = read_frame(&mut &bytes[..HEADER_LEN + 2]).unwrap_err();
        assert!(matches!(err, FrameError::Torn { .. }), "{err}");
    }

    #[test]
    fn bad_magic_and_version_are_detected() {
        let mut bytes = Request::Ping { delay_ms: 0 }.encode(1);
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut bytes.as_slice()).unwrap_err(),
            FrameError::BadMagic(_)
        ));
        let mut bytes = Request::Ping { delay_ms: 0 }.encode(1);
        bytes[4] = 99;
        assert!(matches!(
            read_frame(&mut bytes.as_slice()).unwrap_err(),
            FrameError::BadVersion(99)
        ));
    }

    #[test]
    fn oversized_length_is_detected_with_the_request_id() {
        let mut bytes = Request::Ping { delay_ms: 0 }.encode(77);
        let huge = (MAX_PAYLOAD + 1).to_le_bytes();
        bytes[14..18].copy_from_slice(&huge);
        match read_frame(&mut bytes.as_slice()).unwrap_err() {
            FrameError::Oversized {
                declared,
                request_id,
            } => {
                assert_eq!(declared, MAX_PAYLOAD + 1);
                assert_eq!(
                    request_id, 77,
                    "header parsed far enough to address a reject"
                );
            }
            other => panic!("expected Oversized, got {other}"),
        }
    }

    #[test]
    fn garbage_opcode_is_a_payload_level_error() {
        let frame = Frame {
            request_id: 5,
            opcode: 0x7F,
            payload: b"{}".to_vec(),
        };
        assert!(decode_request(&frame).is_err());
        // The frame itself reads fine — only the decode rejects it.
        let bytes = encode_frame(5, 0x7F, b"{}");
        let read = read_frame(&mut bytes.as_slice()).unwrap().unwrap();
        assert_eq!(read.opcode, 0x7F);
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        for (op, payload) in [
            (opcode::QUERY, "{}"),
            (opcode::QUERY, "not json"),
            (opcode::COMMIT, r#"{"ops":[{"op":"mutate"}]}"#),
            (opcode::POSTINGS, r#"{"probe":{"kind":"warp"}}"#),
            (opcode::RECORD, r#"{"id":-4}"#),
            (
                opcode::PROBE_CONTAINS,
                r#"{"probe":{"kind":"name","name":"x"}}"#,
            ),
        ] {
            let frame = Frame {
                request_id: 1,
                opcode: op,
                payload: payload.as_bytes().to_vec(),
            };
            assert!(
                decode_request(&frame).is_err(),
                "accepted {op:#04x} {payload}"
            );
        }
    }

    #[test]
    fn entity_list_fast_path_matches_the_tree_codec() {
        for ids in [
            vec![],
            vec![EntityId(0)],
            vec![
                EntityId(1),
                EntityId(42),
                EntityId(u64::from(u32::MAX)),
                EntityId(1 << 60),
                EntityId(i64::MAX as u64), // largest wire-representable id
            ],
            (0..777).map(EntityId).collect(),
        ] {
            // Fast-path bytes are identical to the Json-tree bytes.
            for (resp, key) in [
                (
                    Response::Result(QueryResult::Entities(ids.clone())),
                    "entities",
                ),
                (Response::Entities(ids.clone()), "ids"),
            ] {
                let fast = resp.encode(1);
                let tree = encode_frame(
                    1,
                    resp.opcode(),
                    resp.to_json().to_string_compact().as_bytes(),
                );
                assert_eq!(fast, tree, "wire bytes diverge for {key} x{}", ids.len());
                assert_eq!(roundtrip_response(resp.clone()), resp);
            }
        }
        // Garbage near-miss payloads fall back (and then fail in the
        // tree parser) instead of mis-decoding.
        for bad in [
            "{\"entities\":[1,,2]}",
            "{\"entities\":[1,2,]}",
            "{\"entities\":[99999999999999999999999]}",
            // Exactly 20 digits, one past u64::MAX: must not wrap to 0.
            "{\"entities\":[18446744073709551616]}",
            "{\"entities\":[1 ,2]}",
        ] {
            assert!(
                parse_ids_payload(bad.as_bytes(), "entities").is_none(),
                "{bad}"
            );
        }
        // Whitespace variants from a foreign encoder still decode via
        // the general parser.
        let frame = Frame {
            request_id: 1,
            opcode: opcode::RESULT,
            payload: b"{ \"entities\" : [ 1 , 2 ] }".to_vec(),
        };
        assert_eq!(
            decode_response(&frame).unwrap(),
            Response::Result(QueryResult::Entities(vec![EntityId(1), EntityId(2)]))
        );
    }

    #[test]
    fn pipelined_frames_parse_back_to_back_from_one_stream() {
        let mut stream = Vec::new();
        stream.extend(Request::Ping { delay_ms: 0 }.encode(1));
        stream.extend(Request::ResolveName("x".into()).encode(2));
        stream.extend(Request::Generation.encode(3));
        let mut cursor = stream.as_slice();
        let ids: Vec<u64> = std::iter::from_fn(|| read_frame(&mut cursor).unwrap())
            .map(|f| f.request_id)
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
