//! # saga-net
//!
//! Saga as a *server*: a hand-rolled, std-only, length-prefixed binary
//! protocol on TCP that puts the whole serving stack — KGQ queries, the
//! [`GraphRead`](saga_core::GraphRead) probe surface, and
//! [`GraphWrite`](saga_core::GraphWrite)-style batch commits — in front of
//! remote clients. Everything the platform built in-process (the
//! replicated fleet, read-your-writes sessions, the write-ahead log)
//! keeps its contracts across the wire:
//!
//! * [`protocol`] — the frame codec (magic + version + request id +
//!   opcode + payload length) and the request/response vocabulary.
//!   Payloads are compact JSON over [`saga_core::json`], reusing the
//!   [`saga_core::wire`] value/session codecs — no new serialization
//!   registry. Torn, oversized and garbage frames are rejected without
//!   taking the server down.
//! * [`server`] — [`SagaServer`]: a thread-pool connection acceptor in
//!   front of a [`FleetRouter`](saga_fleet::FleetRouter) for reads and a
//!   [`LoggedWriter`](saga_graph::LoggedWriter) for writes — never a bare
//!   replica, so lag bounds, session filters and the write-ahead ordering
//!   all hold for networked traffic. Requests from one connection are
//!   *pipelined*: each carries a request id, executes on a shared worker
//!   pool, and responds out of order. A bounded admission semaphore plus
//!   queue-depth rejection turn overload into a typed
//!   [`Response::Overloaded`] instead of
//!   unbounded queueing.
//! * [`client`] — [`SagaClient`]: a blocking call API plus a pipelined
//!   `send`/`recv_by_id` API, with
//!   [`SessionToken`](saga_core::SessionToken) threading so a
//!   commit-then-query round trip keeps read-your-writes over TCP (and
//!   across reconnects — the token serializes, see `saga_core::wire`).
//!
//! The freshness discipline mirrors the maintained-view contracts of
//! Kara et al. ("Conjunctive Queries with Free Access Patterns under
//! Updates"): a client that just committed must be routed to a replica at
//! or past its token's LSN, never a stale serve. See `docs/network.md`
//! for the frame format, opcode table, pipelining contract and
//! backpressure policy.

pub mod client;
pub mod pool;
pub mod protocol;
pub mod server;

pub use client::{ClientConfig, SagaClient};
pub use pool::{BreakerConfig, BreakerState, EndpointStats, PoolConfig, RetryPolicy, SagaPool};
pub use protocol::{Committed, ErrorKind, Frame, FrameError, Request, Response, WireBatch, WireOp};
pub use server::{SagaServer, ServerConfig, ServerStats};
