//! The resilient client: a multi-endpoint pool with retry, backoff,
//! circuit breaking, and transparent failover.
//!
//! [`SagaPool`] fronts several saga-servers that all serve **one
//! operation log** (a [`saga_fleet`] fleet per process, every fleet
//! tailing the same log). That single fact is what makes failover
//! *transparent*: any endpoint can answer any read, and the pool-wide
//! [`SessionToken`] — advanced by every commit, threaded into every
//! session read — keeps read-your-writes intact across a mid-session
//! endpoint switch. A session read that lands on a lagging server
//! either waits (server-side session wait) or comes back as a typed
//! retryable miss and is retried elsewhere; it is never served stale.
//!
//! # Retry contract
//!
//! Only **retryable** outcomes are retried ([`SagaError::is_retryable`]):
//! transport-level unavailability (dead socket, timeout, refused
//! connect) and typed wire sheds (`Overloaded` — which carries the
//! server's own backoff hint — and `Unavailable`). Query errors, bad
//! requests and server-side storage failures surface immediately: the
//! server *answered*, the answer just wasn't success, and sending the
//! same request again buys nothing.
//!
//! Retries follow capped exponential backoff with deterministic seeded
//! jitter ([`RetryPolicy`]): attempt `k` waits
//! `min(base·2^k, max) · uniform[1−j, 1+j]`, floored at the server's
//! backoff hint when one arrived, and always bounded by the request's
//! remaining [`deadline`](RetryPolicy::deadline) budget.
//!
//! # Idempotency and `MaybeCommitted`
//!
//! Reads are idempotent — the pool re-sends them freely on other
//! endpoints. A commit is not. The pool splits a commit's failure modes
//! by *phase*:
//!
//! * **Send-phase** transport error: the request frame was torn — the
//!   server never decodes it, so nothing executed. Safe to retry.
//! * **Typed `Overloaded` response**: admission control rejected the
//!   request *before execution*. The server says nothing ran. Safe to
//!   retry.
//! * **Receive-phase** transport error: the frame was delivered but the
//!   acknowledgement was lost. The commit may or may not have applied —
//!   the pool surfaces the typed [`SagaError::MaybeCommitted`] instead
//!   of guessing, because a blind re-send could apply the batch twice.
//!   Callers reconcile (read back the write, or re-issue only
//!   semantically idempotent ops).
//!
//! [`PoolConfig::fence_commits`] narrows the ambiguous window: a ping
//! round-trip on the chosen endpoint immediately before the commit
//! proves the connection live, so an endpoint that died *between*
//! requests fails the cheap idempotent fence instead of the commit.
//!
//! # Circuit breaker
//!
//! Each endpoint carries a breaker: `Closed` (healthy) → `Open` after
//! [`failure_threshold`](BreakerConfig::failure_threshold) consecutive
//! transport failures (skipped by routing entirely) → `HalfOpen` after
//! [`cooldown`](BreakerConfig::cooldown) (eligible again; the next
//! request is the probe) → `Closed` on probe success, re-`Open` on
//! probe failure. Typed sheds do **not** trip the breaker — a shedding
//! server is alive and telling us so; only transport failures are
//! evidence of death. Reads rotate round-robin across eligible
//! endpoints, which both spreads load and guarantees a recovering
//! endpoint gets its probe without any background thread.

use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};
use saga_core::{EntityId, EntityRecord, ProbeKey, Result, SagaError, SessionToken};
use saga_live::QueryResult;

use crate::client::{response_error, ClientConfig, SagaClient};
use crate::protocol::{Committed, Request, Response, WireBatch};

/// When and how the pool retries retryable failures.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total tries per request (first attempt included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
    /// Jitter fraction `j`: each backoff is scaled by a deterministic
    /// uniform draw from `[1−j, 1+j]`. Zero disables jitter.
    pub jitter: f64,
    /// Wall-clock budget for one logical request, attempts and backoff
    /// sleeps included. Exhausting it surfaces the last failure.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter: 0.5,
            deadline: Duration::from_secs(5),
        }
    }
}

/// Per-endpoint circuit-breaker tuning.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive transport failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(500),
        }
    }
}

/// Pool construction parameters.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Retry/backoff schedule.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Socket behavior for every per-endpoint connection.
    pub client: ClientConfig,
    /// Seed for the jitter stream — same seed, same endpoints, same
    /// failures ⇒ same retry timing. Drills rely on this.
    pub seed: u64,
    /// Ping the chosen endpoint immediately before each commit (an
    /// idempotent liveness fence). Costs one round-trip per commit;
    /// turns "endpoint died since we last talked" from a
    /// [`SagaError::MaybeCommitted`] into a cheap retryable fence
    /// failure.
    pub fence_commits: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            client: ClientConfig::default(),
            seed: 0x5a6a_9001,
            fence_commits: true,
        }
    }
}

/// Observable breaker state of one endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests route here normally.
    Closed,
    /// Tripped: routing skips this endpoint until the cooldown passes.
    Open,
    /// Cooldown elapsed: eligible again, next request is the probe.
    HalfOpen,
}

/// A point-in-time snapshot of one endpoint's health accounting.
#[derive(Clone, Debug)]
pub struct EndpointStats {
    /// The endpoint's address.
    pub addr: String,
    /// Current breaker state.
    pub state: BreakerState,
    /// Consecutive transport failures (resets on success).
    pub consecutive_failures: u32,
    /// Requests attempted on this endpoint.
    pub requests: u64,
    /// Requests that got *any* response (success or typed failure).
    pub responses: u64,
    /// Transport failures (connect/send/receive).
    pub transport_failures: u64,
    /// Times the breaker opened.
    pub breaker_opens: u64,
}

struct Endpoint {
    addr: String,
    client: Option<SagaClient>,
    consecutive_failures: u32,
    /// `Some(when)` while the breaker is open / half-open.
    opened_at: Option<Instant>,
    requests: u64,
    responses: u64,
    transport_failures: u64,
    breaker_opens: u64,
}

impl Endpoint {
    fn state(&self, cfg: &BreakerConfig) -> BreakerState {
        match self.opened_at {
            None => BreakerState::Closed,
            Some(at) if at.elapsed() >= cfg.cooldown => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// Eligible for routing: closed, or open long enough to probe.
    fn eligible(&self, cfg: &BreakerConfig) -> bool {
        self.state(cfg) != BreakerState::Open
    }

    /// Time until this endpoint becomes eligible (zero if it already is).
    fn eligible_in(&self, cfg: &BreakerConfig) -> Duration {
        match self.opened_at {
            None => Duration::ZERO,
            Some(at) => cfg.cooldown.saturating_sub(at.elapsed()),
        }
    }
}

/// What one attempt on one endpoint produced.
enum Attempt {
    /// The server answered (any typed response, success or failure).
    Answered(Response),
    /// Transport failure before the request could have executed.
    SendFailed(SagaError),
    /// Transport failure after the request was handed to the transport.
    RecvFailed(SagaError),
}

/// A failover client pool over several saga-servers fronting one log.
pub struct SagaPool {
    endpoints: Vec<Endpoint>,
    cfg: PoolConfig,
    /// Round-robin cursor over eligible endpoints.
    cursor: usize,
    /// Pool-wide read-your-writes high-water mark.
    session: SessionToken,
    /// Deterministic jitter stream.
    rng: StdRng,
}

impl SagaPool {
    /// Build a pool over the given endpoints. Connections are dialed
    /// lazily — an endpoint that is down at construction time simply
    /// fails its first attempt and trips its breaker like any other
    /// failure, so a pool can outlive every one of its servers.
    pub fn new<S: Into<String>>(
        endpoints: impl IntoIterator<Item = S>,
        cfg: PoolConfig,
    ) -> SagaPool {
        let endpoints: Vec<Endpoint> = endpoints
            .into_iter()
            .map(|addr| Endpoint {
                addr: addr.into(),
                client: None,
                consecutive_failures: 0,
                opened_at: None,
                requests: 0,
                responses: 0,
                transport_failures: 0,
                breaker_opens: 0,
            })
            .collect();
        assert!(!endpoints.is_empty(), "a pool needs at least one endpoint");
        let rng = StdRng::seed_from_u64(cfg.seed);
        SagaPool {
            endpoints,
            cfg,
            cursor: 0,
            session: SessionToken::default(),
            rng,
        }
    }

    /// The pool's read-your-writes token: the high-water mark of every
    /// commit made through this pool.
    pub fn session(&self) -> SessionToken {
        self.session
    }

    /// Replace the session token (e.g. resuming a session handed over
    /// from another process via `SessionToken::to_wire`).
    pub fn set_session(&mut self, token: SessionToken) {
        self.session = token;
    }

    /// Health snapshot of every endpoint, in construction order.
    pub fn endpoint_stats(&self) -> Vec<EndpointStats> {
        self.endpoints
            .iter()
            .map(|e| EndpointStats {
                addr: e.addr.clone(),
                state: e.state(&self.cfg.breaker),
                consecutive_failures: e.consecutive_failures,
                requests: e.requests,
                responses: e.responses,
                transport_failures: e.transport_failures,
                breaker_opens: e.breaker_opens,
            })
            .collect()
    }

    // -- routing ----------------------------------------------------------

    /// Next eligible endpoint index (round-robin), or the shortest wait
    /// until one becomes eligible.
    fn pick(&mut self) -> std::result::Result<usize, Duration> {
        let n = self.endpoints.len();
        for step in 0..n {
            let at = (self.cursor + step) % n;
            if self.endpoints[at].eligible(&self.cfg.breaker) {
                self.cursor = (at + 1) % n;
                return Ok(at);
            }
        }
        Err(self
            .endpoints
            .iter()
            .map(|e| e.eligible_in(&self.cfg.breaker))
            .min()
            .unwrap_or(Duration::ZERO))
    }

    fn on_response(&mut self, at: usize) {
        let e = &mut self.endpoints[at];
        e.responses += 1;
        e.consecutive_failures = 0;
        e.opened_at = None;
    }

    fn on_transport_failure(&mut self, at: usize) {
        let threshold = self.cfg.breaker.failure_threshold;
        let e = &mut self.endpoints[at];
        e.transport_failures += 1;
        e.consecutive_failures = e.consecutive_failures.saturating_add(1);
        // A dead connection never heals; force a fresh dial next time.
        e.client = None;
        let reopen_probe = e.opened_at.is_some();
        if e.consecutive_failures >= threshold || reopen_probe {
            if e.opened_at.is_none() {
                e.breaker_opens += 1;
            }
            // (Re)start the cooldown — a failed half-open probe waits a
            // full cooldown again.
            e.opened_at = Some(Instant::now());
        }
    }

    /// One attempt of `request` on endpoint `at`, classified by phase.
    fn attempt(&mut self, at: usize, request: &Request) -> Attempt {
        self.endpoints[at].requests += 1;
        if self.endpoints[at].client.is_none() {
            let addr = self.endpoints[at].addr.clone();
            match SagaClient::connect_with(addr, self.cfg.client.clone()) {
                Ok(c) => self.endpoints[at].client = Some(c),
                Err(e) => return Attempt::SendFailed(e),
            }
        }
        let client = self.endpoints[at].client.as_mut().expect("just connected");
        let id = match client.send(request) {
            Ok(id) => id,
            Err(e) => return Attempt::SendFailed(e),
        };
        match client.recv_by_id(id) {
            Ok(response) => Attempt::Answered(response),
            Err(e) => Attempt::RecvFailed(e),
        }
    }

    /// Jittered exponential backoff for retry number `retry` (0-based),
    /// floored at the server's hint when one arrived.
    fn backoff(&mut self, retry: u32, hint_ms: Option<u64>) -> Duration {
        let base = self.cfg.retry.base_backoff.as_secs_f64();
        let cap = self.cfg.retry.max_backoff.as_secs_f64();
        let exp = base * f64::from(2u32.saturating_pow(retry.min(20)));
        let mut secs = exp.min(cap);
        let j = self.cfg.retry.jitter;
        if j > 0.0 {
            secs *= self.rng.gen_range((1.0 - j).max(0.0)..=(1.0 + j));
        }
        let mut delay = Duration::from_secs_f64(secs.max(0.0));
        if let Some(hint) = hint_ms {
            delay = delay.max(Duration::from_millis(hint));
        }
        delay
    }

    /// Sleep for `delay`, clipped to the deadline budget. Returns false
    /// when the budget is already exhausted (caller gives up).
    fn sleep_within(&self, started: Instant, delay: Duration) -> bool {
        let remaining = self.cfg.retry.deadline.saturating_sub(started.elapsed());
        if remaining.is_zero() {
            return false;
        }
        std::thread::sleep(delay.min(remaining));
        true
    }

    fn exhausted(attempts: u32, last: SagaError) -> SagaError {
        match last {
            // Keep typed errors intact (hints survive); annotate the
            // plain unavailability message with what the pool tried.
            SagaError::Unavailable(m) => {
                SagaError::Unavailable(format!("pool: {attempts} attempts exhausted; last: {m}"))
            }
            other => other,
        }
    }

    // -- the retry loops --------------------------------------------------

    /// Run one idempotent request with failover: retryable failures
    /// rotate to the next eligible endpoint under the backoff schedule;
    /// transport failures additionally feed the breaker.
    fn run_idempotent(&mut self, request: &Request) -> Result<Response> {
        // The deadline clock starts at the first *failure*: the healthy
        // fast path (attempt once, answered) never reads the clock, so
        // pool steady-state overhead over a bare client stays in the
        // bookkeeping-only range the resilience bench holds it to.
        let mut started: Option<Instant> = None;
        let mut last: Option<SagaError> = None;
        let mut retries = 0u32;
        for attempt_no in 0..self.cfg.retry.max_attempts {
            if let Some(t0) = started {
                if t0.elapsed() >= self.cfg.retry.deadline {
                    break;
                }
            }
            let at = match self.pick() {
                Ok(at) => at,
                Err(wait) => {
                    // Every breaker is open. Waiting out the shortest
                    // cooldown is the only route to a probe.
                    last = Some(SagaError::Unavailable(
                        "all endpoints unhealthy (breakers open)".to_string(),
                    ));
                    let t0 = *started.get_or_insert_with(Instant::now);
                    if !self.sleep_within(t0, wait) {
                        break;
                    }
                    continue;
                }
            };
            let err = match self.attempt(at, request) {
                Attempt::Answered(response) => {
                    self.on_response(at);
                    match response {
                        // Typed retryable outcomes: another endpoint may
                        // be less loaded / more caught-up. Everything
                        // else (success or a final error) goes straight
                        // back to the caller.
                        Response::Overloaded { .. } | Response::Unavailable { .. } => {
                            response_error(response)
                        }
                        success_or_final => return Ok(success_or_final),
                    }
                }
                // A read is idempotent: both phases retry freely.
                Attempt::SendFailed(e) | Attempt::RecvFailed(e) => {
                    self.on_transport_failure(at);
                    e
                }
            };
            debug_assert!(
                err.is_retryable(),
                "non-retryable error reached retry: {err}"
            );
            let delay = self.backoff(retries, err.backoff_hint_ms());
            retries += 1;
            last = Some(err);
            let t0 = *started.get_or_insert_with(Instant::now);
            if attempt_no + 1 < self.cfg.retry.max_attempts && !self.sleep_within(t0, delay) {
                break;
            }
        }
        Err(Self::exhausted(
            retries.max(1),
            last.unwrap_or_else(|| SagaError::Unavailable("pool: no attempt made".to_string())),
        ))
    }

    /// Commit with phase-split failure handling (see the module docs).
    pub fn commit(&mut self, batch: WireBatch) -> Result<Committed> {
        let started = Instant::now();
        let request = Request::Commit(batch);
        let mut last: Option<SagaError> = None;
        let mut retries = 0u32;
        for _ in 0..self.cfg.retry.max_attempts {
            if started.elapsed() >= self.cfg.retry.deadline {
                break;
            }
            let at = match self.pick() {
                Ok(at) => at,
                Err(wait) => {
                    last = Some(SagaError::Unavailable(
                        "all endpoints unhealthy (breakers open)".to_string(),
                    ));
                    if !self.sleep_within(started, wait) {
                        break;
                    }
                    continue;
                }
            };
            // The fence: an idempotent round-trip proving the endpoint
            // alive *now*, so a stale-dead connection fails here — a
            // retryable outcome — instead of inside the commit.
            if self.cfg.fence_commits {
                match self.attempt(at, &Request::Ping { delay_ms: 0 }) {
                    Attempt::Answered(Response::Pong) => self.on_response(at),
                    Attempt::Answered(other) => {
                        self.on_response(at);
                        let err = response_error(other);
                        let delay = self.backoff(retries, err.backoff_hint_ms());
                        retries += 1;
                        last = Some(err);
                        if !self.sleep_within(started, delay) {
                            break;
                        }
                        continue;
                    }
                    Attempt::SendFailed(e) | Attempt::RecvFailed(e) => {
                        // The fence is idempotent: either phase failing
                        // is a plain endpoint failure.
                        self.on_transport_failure(at);
                        let delay = self.backoff(retries, None);
                        retries += 1;
                        last = Some(e);
                        if !self.sleep_within(started, delay) {
                            break;
                        }
                        continue;
                    }
                }
            }
            match self.attempt(at, &request) {
                Attempt::Answered(Response::Committed(committed)) => {
                    self.on_response(at);
                    self.session.observe(committed.lsn);
                    return Ok(committed);
                }
                Attempt::Answered(response) => {
                    self.on_response(at);
                    let err = response_error(response);
                    if !err.is_retryable() {
                        return Err(err);
                    }
                    // Typed shed/miss: the server states nothing ran —
                    // safe to re-send even a commit.
                    let delay = self.backoff(retries, err.backoff_hint_ms());
                    retries += 1;
                    last = Some(err);
                    if !self.sleep_within(started, delay) {
                        break;
                    }
                }
                Attempt::SendFailed(e) => {
                    // The request frame never went out whole; a torn
                    // frame is dropped by the server without executing.
                    self.on_transport_failure(at);
                    let delay = self.backoff(retries, None);
                    retries += 1;
                    last = Some(e);
                    if !self.sleep_within(started, delay) {
                        break;
                    }
                }
                Attempt::RecvFailed(e) => {
                    // The commit reached the transport and the ack was
                    // lost: its outcome is unknown. Never retried.
                    self.on_transport_failure(at);
                    return Err(SagaError::MaybeCommitted(format!(
                        "commit sent to {} but the acknowledgement was lost: {e}",
                        self.endpoints[at].addr
                    )));
                }
            }
        }
        Err(Self::exhausted(
            retries.max(1),
            last.unwrap_or_else(|| SagaError::Unavailable("pool: no attempt made".to_string())),
        ))
    }

    // -- idempotent surface ----------------------------------------------

    /// Liveness round-trip against any eligible endpoint.
    pub fn ping(&mut self) -> Result<()> {
        match self.run_idempotent(&Request::Ping { delay_ms: 0 })? {
            Response::Pong => Ok(()),
            other => Err(response_error(other)),
        }
    }

    /// One KGQ query with no freshness constraint.
    pub fn query(&mut self, text: &str) -> Result<QueryResult> {
        let request = Request::Query {
            text: text.to_string(),
            session: None,
        };
        match self.run_idempotent(&request)? {
            Response::Result(result) => Ok(result),
            other => Err(response_error(other)),
        }
    }

    /// One KGQ query constrained by the pool session: served only at or
    /// past every commit this pool has acknowledged, **whichever
    /// endpoint answers**. This is the read-your-writes-across-failover
    /// guarantee.
    pub fn query_with_session(&mut self, text: &str) -> Result<QueryResult> {
        let request = Request::Query {
            text: text.to_string(),
            session: Some(self.session),
        };
        match self.run_idempotent(&request)? {
            Response::Result(result) => Ok(result),
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::postings` with failover.
    pub fn postings(&mut self, probe: &ProbeKey) -> Result<Vec<EntityId>> {
        match self.run_idempotent(&Request::Postings(probe.clone()))? {
            Response::Entities(ids) => Ok(ids),
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::resolve_name` with failover.
    pub fn resolve_name(&mut self, name: &str) -> Result<Vec<EntityId>> {
        match self.run_idempotent(&Request::ResolveName(name.to_string()))? {
            Response::Entities(ids) => Ok(ids),
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::record` with failover.
    pub fn record(&mut self, id: EntityId) -> Result<Option<EntityRecord>> {
        match self.run_idempotent(&Request::Record(id))? {
            Response::Record(record) => Ok(record),
            other => Err(response_error(other)),
        }
    }

    /// The serving fleet's generation counter (any endpoint's view).
    pub fn generation(&mut self) -> Result<u64> {
        match self.run_idempotent(&Request::Generation)? {
            Response::Count(n) => Ok(n),
            other => Err(response_error(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoint(addr: &str) -> Endpoint {
        Endpoint {
            addr: addr.to_string(),
            client: None,
            consecutive_failures: 0,
            opened_at: None,
            requests: 0,
            responses: 0,
            transport_failures: 0,
            breaker_opens: 0,
        }
    }

    #[test]
    fn breaker_lifecycle_closed_open_halfopen() {
        let cfg = BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(20),
        };
        let mut e = endpoint("x");
        assert_eq!(e.state(&cfg), BreakerState::Closed);
        e.consecutive_failures = 2;
        e.opened_at = Some(Instant::now());
        assert_eq!(e.state(&cfg), BreakerState::Open);
        assert!(!e.eligible(&cfg));
        assert!(e.eligible_in(&cfg) > Duration::ZERO);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(e.state(&cfg), BreakerState::HalfOpen);
        assert!(e.eligible(&cfg), "half-open endpoints take a probe");
        e.opened_at = None;
        e.consecutive_failures = 0;
        assert_eq!(e.state(&cfg), BreakerState::Closed);
    }

    #[test]
    fn backoff_grows_caps_and_respects_the_hint() {
        let mut pool = SagaPool::new(
            ["127.0.0.1:1"],
            PoolConfig {
                retry: RetryPolicy {
                    base_backoff: Duration::from_millis(10),
                    max_backoff: Duration::from_millis(100),
                    jitter: 0.0,
                    ..RetryPolicy::default()
                },
                ..PoolConfig::default()
            },
        );
        assert_eq!(pool.backoff(0, None), Duration::from_millis(10));
        assert_eq!(pool.backoff(1, None), Duration::from_millis(20));
        assert_eq!(pool.backoff(2, None), Duration::from_millis(40));
        assert_eq!(
            pool.backoff(6, None),
            Duration::from_millis(100),
            "capped at max_backoff"
        );
        assert_eq!(
            pool.backoff(0, Some(75)),
            Duration::from_millis(75),
            "floored at the server hint"
        );
        assert_eq!(
            pool.backoff(6, Some(75)),
            Duration::from_millis(100),
            "hint below the schedule changes nothing"
        );
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let cfg = |seed| PoolConfig {
            retry: RetryPolicy {
                base_backoff: Duration::from_millis(100),
                max_backoff: Duration::from_millis(100),
                jitter: 0.5,
                ..RetryPolicy::default()
            },
            seed,
            ..PoolConfig::default()
        };
        let mut a = SagaPool::new(["127.0.0.1:1"], cfg(7));
        let mut b = SagaPool::new(["127.0.0.1:1"], cfg(7));
        let mut c = SagaPool::new(["127.0.0.1:1"], cfg(8));
        let draws_a: Vec<Duration> = (0..32).map(|_| a.backoff(0, None)).collect();
        let draws_b: Vec<Duration> = (0..32).map(|_| b.backoff(0, None)).collect();
        let draws_c: Vec<Duration> = (0..32).map(|_| c.backoff(0, None)).collect();
        assert_eq!(draws_a, draws_b, "same seed, same jitter stream");
        assert_ne!(draws_a, draws_c, "different seed, different stream");
        for d in draws_a {
            assert!(
                (Duration::from_millis(50)..=Duration::from_millis(150)).contains(&d),
                "jitter 0.5 keeps delays within [0.5x, 1.5x]: {d:?}"
            );
        }
    }

    #[test]
    fn round_robin_skips_open_breakers() {
        let mut pool = SagaPool::new(
            ["a:1", "b:1", "c:1"],
            PoolConfig {
                breaker: BreakerConfig {
                    failure_threshold: 1,
                    cooldown: Duration::from_secs(60),
                },
                ..PoolConfig::default()
            },
        );
        assert_eq!(pool.pick().unwrap(), 0);
        assert_eq!(pool.pick().unwrap(), 1);
        assert_eq!(pool.pick().unwrap(), 2);
        assert_eq!(pool.pick().unwrap(), 0, "wraps around");
        // Trip endpoint 1: rotation must skip it.
        pool.on_transport_failure(1);
        assert_eq!(pool.endpoint_stats()[1].state, BreakerState::Open);
        let picks: Vec<usize> = (0..4).map(|_| pool.pick().unwrap()).collect();
        assert!(
            !picks.contains(&1),
            "open breaker is never routed: {picks:?}"
        );
        // Trip everything: picking reports the wait instead.
        pool.on_transport_failure(0);
        pool.on_transport_failure(2);
        assert!(pool.pick().is_err(), "no eligible endpoint");
    }

    #[test]
    fn transport_failures_open_the_breaker_and_responses_close_it() {
        let mut pool = SagaPool::new(
            ["a:1"],
            PoolConfig {
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown: Duration::from_millis(5),
                },
                ..PoolConfig::default()
            },
        );
        pool.on_transport_failure(0);
        pool.on_transport_failure(0);
        assert_eq!(pool.endpoint_stats()[0].state, BreakerState::Closed);
        pool.on_transport_failure(0);
        assert_eq!(pool.endpoint_stats()[0].state, BreakerState::Open);
        assert_eq!(pool.endpoint_stats()[0].breaker_opens, 1);
        std::thread::sleep(Duration::from_millis(6));
        assert_eq!(pool.endpoint_stats()[0].state, BreakerState::HalfOpen);
        // A failed probe re-opens (full cooldown again) without
        // recounting an open.
        pool.on_transport_failure(0);
        assert_eq!(pool.endpoint_stats()[0].state, BreakerState::Open);
        assert_eq!(pool.endpoint_stats()[0].breaker_opens, 1);
        std::thread::sleep(Duration::from_millis(6));
        // A successful probe closes and resets the failure run.
        pool.on_response(0);
        let stats = &pool.endpoint_stats()[0];
        assert_eq!(stats.state, BreakerState::Closed);
        assert_eq!(stats.consecutive_failures, 0);
    }
}
