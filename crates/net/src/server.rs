//! The serving endpoint: a thread-pool TCP acceptor in front of the fleet.
//!
//! Every connection gets a cheap *reader* thread that does nothing but
//! frame decoding and admission; decoded requests execute on a shared,
//! bounded *worker* pool and answer out of order under each request's id
//! (the pipelining contract). Reads route through the
//! [`FleetRouter`] — never a bare replica — so
//! lag bounds and session filters hold for networked traffic exactly as
//! they do in-process; writes commit through the write-ahead
//! [`LoggedWriter`] and return the session
//! token that makes them readable by their writer.
//!
//! # Admission control
//!
//! Two limits guard the pool, both answered with the typed
//! [`Response::Overloaded`] (the request was *not* executed):
//!
//! * a bounded job queue (`queue_depth`) — the reader never blocks on a
//!   full queue, it sheds;
//! * a global in-flight cap (`max_inflight`) across all connections —
//!   admission is acquired when a frame is accepted and released after
//!   its response is written, so pipelined floods cannot queue without
//!   bound even when `queue_depth` would admit them.
//!
//! Frame-level garbage (bad magic/version, oversized declared length,
//! torn frames) closes the offending connection only — see the policy in
//! [`protocol`](crate::protocol).

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use saga_core::{GraphRead, Result, SagaError, SessionToken};
use saga_fleet::{FleetRouter, SessionWaitConfig};
use saga_graph::{LoggedWriter, OpKind};

use crate::protocol::{decode_request, Committed, ErrorKind, Frame, FrameError, Request, Response};

/// Tuning for one [`SagaServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port (tests).
    pub addr: String,
    /// Worker threads executing requests (shared across connections).
    pub workers: usize,
    /// Bounded job-queue depth; a full queue sheds with `Overloaded`.
    pub queue_depth: usize,
    /// Global cap on admitted-but-unanswered requests across all
    /// connections; the admission semaphore.
    pub max_inflight: usize,
    /// Maximum simultaneous connections; excess accepts are closed.
    pub max_connections: usize,
    /// Per-request wait policy for session-constrained queries.
    pub session_wait: SessionWaitConfig,
    /// Upper bound on the drill-aid `Ping { delay_ms }` sleep. The
    /// default of 0 disables delayed pings entirely: an unauthenticated
    /// client must not be able to park worker threads at will. Fault
    /// tests and the overload bench raise it explicitly.
    pub max_ping_delay_ms: u64,
    /// Minimum backoff hint (milliseconds) attached to `Overloaded`
    /// sheds, so retrying clients pace themselves off the server's own
    /// estimate instead of guessing.
    pub shed_backoff_hint_ms: u64,
    /// Failpoint scope for this server's socket loops: chaos drills
    /// running several in-process servers arm `net::server_read` /
    /// `net::server_write` for one server by matching this label (see
    /// `saga_core::fail`). Empty — the default — matches only unscoped
    /// configurations.
    pub fail_scope: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 256,
            max_inflight: 512,
            max_connections: 256,
            session_wait: SessionWaitConfig::default(),
            max_ping_delay_ms: 0,
            shed_backoff_hint_ms: 25,
            fail_scope: String::new(),
        }
    }
}

/// Monotone serving counters, snapshot via [`SagaServer::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (not counting over-capacity rejects).
    pub connections_accepted: u64,
    /// Requests executed to completion (any response except shed).
    pub requests_served: u64,
    /// Requests shed by admission control (`Overloaded` responses).
    pub requests_shed: u64,
    /// Connections dropped for frame-level protocol violations.
    pub frame_rejects: u64,
}

#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    requests_served: AtomicU64,
    requests_shed: AtomicU64,
    frame_rejects: AtomicU64,
}

/// One admitted request travelling from a reader to the worker pool.
struct Job {
    conn: Arc<ConnHandle>,
    frame: Frame,
}

/// The shared write half of one connection. Workers answer out of order,
/// so every response write serializes on the stream lock; a full frame is
/// a single `write_all`, so responses never interleave mid-frame.
struct ConnHandle {
    stream: Mutex<TcpStream>,
    /// Failpoint scope, copied from `ServerConfig::fail_scope`.
    fail_scope: String,
}

impl ConnHandle {
    fn respond(&self, request_id: u64, response: &Response) {
        // The write-loop failpoint: an injected error here drops the
        // response *after* the request executed — the lost-ack fault
        // that makes a commit's outcome ambiguous to its client.
        if saga_core::fail::check_scoped(saga_core::fail::sites::NET_SERVER_WRITE, &self.fail_scope)
            .is_err()
        {
            return;
        }
        let frame = response.encode(request_id);
        let mut stream = self.stream.lock();
        // A dead peer surfaces as a write error; the reader thread owns
        // connection teardown, so the failed write is simply dropped.
        let _ = stream.write_all(&frame);
        let _ = stream.flush();
    }
}

struct Inner {
    router: Arc<FleetRouter>,
    writer: Arc<LoggedWriter>,
    cfg: ServerConfig,
    jobs: SyncSender<Job>,
    inflight: AtomicUsize,
    open_conns: AtomicUsize,
    counters: Counters,
    shutdown: AtomicBool,
    /// Read halves of live connections keyed by connection id, kept so
    /// shutdown can unblock their reader threads with a socket shutdown.
    /// Each connection thread deregisters itself on exit; otherwise a
    /// long-running server would leak one duplicated fd per connection
    /// ever accepted.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

impl Inner {
    /// Try to take one admission slot; `false` means the global in-flight
    /// cap is reached and the request must be shed.
    fn admit(&self) -> bool {
        let mut now = self.inflight.load(Ordering::Relaxed);
        loop {
            if now >= self.cfg.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                now,
                now + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => now = actual,
            }
        }
    }

    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    fn execute(&self, request: Request) -> Response {
        let result = match request {
            Request::Ping { delay_ms } => {
                // The delay is a drill aid for tests and benches; on a
                // production config (max_ping_delay_ms = 0) it clamps to
                // nothing so clients cannot park worker threads.
                let delay = delay_ms.min(self.cfg.max_ping_delay_ms);
                if delay > 0 {
                    std::thread::sleep(Duration::from_millis(delay));
                }
                Ok(Response::Pong)
            }
            Request::Query { text, session } => {
                self.query(&text, session.as_ref()).map(Response::Result)
            }
            Request::Commit(batch) => self
                .writer
                .commit(OpKind::Upsert, batch.into_write_batch())
                .map(|commit| {
                    Response::Committed(Committed {
                        lsn: commit.lsn,
                        token: commit.session_token(),
                        facts_added: commit.receipt.facts_added as u64,
                        facts_removed: commit.receipt.facts_removed as u64,
                    })
                }),
            Request::Postings(probe) => Ok(Response::Entities(self.router.postings(&probe))),
            Request::Selectivity(probe) => {
                Ok(Response::Count(self.router.selectivity(&probe) as u64))
            }
            Request::ProbeContains(probe, id) => {
                Ok(Response::Bool(self.router.probe_contains(&probe, id)))
            }
            Request::ResolveName(name) => Ok(Response::Entities(self.router.resolve_name(&name))),
            Request::Record(id) => Ok(Response::Record(self.router.record(id))),
            Request::Generation => Ok(Response::Count(self.router.generation())),
        };
        result.unwrap_or_else(error_response)
    }

    fn query(&self, text: &str, session: Option<&SessionToken>) -> Result<saga_live::QueryResult> {
        match session {
            None => self.router.query(text),
            Some(token) => self
                .router
                .query_with_session_wait(text, token, &self.cfg.session_wait),
        }
    }
}

/// Map an execution error onto the wire: retryable conditions get their
/// typed response, everything else a classified [`Response::Error`].
fn error_response(err: SagaError) -> Response {
    match err {
        SagaError::Unavailable(message) => Response::Unavailable { message },
        SagaError::Query(message) => Response::Error {
            kind: ErrorKind::Query,
            message,
        },
        other => Response::Error {
            kind: ErrorKind::Internal,
            message: other.to_string(),
        },
    }
}

/// A running saga serving endpoint. Dropping the server shuts it down
/// (idempotent with an explicit [`shutdown`](Self::shutdown) call).
pub struct SagaServer {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl SagaServer {
    /// Bind and start serving `router` (reads) and `writer` (commits)
    /// under `cfg`. Returns once the listener is bound and the worker
    /// pool is up; the bound address is [`local_addr`](Self::local_addr).
    pub fn start(
        router: Arc<FleetRouter>,
        writer: Arc<LoggedWriter>,
        cfg: ServerConfig,
    ) -> std::io::Result<SagaServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let (jobs, job_rx) = std::sync::mpsc::sync_channel::<Job>(cfg.queue_depth.max(1));
        let inner = Arc::new(Inner {
            router,
            writer,
            cfg,
            jobs,
            inflight: AtomicUsize::new(0),
            open_conns: AtomicUsize::new(0),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });

        let job_rx = Arc::new(Mutex::new(job_rx));
        let worker_handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let job_rx = Arc::clone(&job_rx);
                std::thread::Builder::new()
                    .name(format!("saga-net-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &job_rx))
                    .expect("spawn worker thread")
            })
            .collect();

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("saga-net-accept".to_string())
                .spawn(move || accept_loop(&inner, &listener))
                .expect("spawn acceptor thread")
        };

        Ok(SagaServer {
            inner,
            local_addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot the serving counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.inner.counters;
        ServerStats {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            requests_served: c.requests_served.load(Ordering::Relaxed),
            requests_shed: c.requests_shed.load(Ordering::Relaxed),
            frame_rejects: c.frame_rejects.load(Ordering::Relaxed),
        }
    }

    /// Currently admitted-but-unanswered requests.
    pub fn inflight(&self) -> usize {
        self.inner.inflight.load(Ordering::Relaxed)
    }

    /// Currently open connections (each reader thread deregisters itself
    /// on exit, so closed connections do not accumulate here).
    pub fn open_connections(&self) -> usize {
        self.inner.conns.lock().len()
    }

    /// Stop accepting, unblock every connection, drain the workers, and
    /// join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock reader threads stuck in read_frame.
        for (_, conn) in self.inner.conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock the acceptor with a throwaway connection; it re-checks
        // the shutdown flag per accept.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Workers poll the shutdown flag between queue timeouts.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for SagaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if inner.open_conns.load(Ordering::Relaxed) >= inner.cfg.max_connections {
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let _ = stream.set_nodelay(true);
        inner.open_conns.fetch_add(1, Ordering::AcqRel);
        inner
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        // Registration is best-effort — it only exists so shutdown can
        // unblock reader threads with a socket shutdown. The connection
        // thread removes its own entry on exit so the registry (and its
        // duplicated fd) never outlives the connection.
        let conn_id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = read_half.try_clone() {
            inner.conns.lock().insert(conn_id, clone);
        }
        let spawned = {
            let inner = Arc::clone(inner);
            std::thread::Builder::new()
                .name("saga-net-conn".to_string())
                .spawn(move || {
                    connection_loop(&inner, read_half, stream);
                    inner.conns.lock().remove(&conn_id);
                    inner.open_conns.fetch_sub(1, Ordering::AcqRel);
                })
        };
        if spawned.is_err() {
            // The thread never ran, so its epilogue never will: give back
            // the capacity taken above or the slot leaks forever.
            inner.conns.lock().remove(&conn_id);
            inner.open_conns.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Per-connection reader: frame decoding + admission only. Execution
/// happens on the worker pool so one slow request never blocks the other
/// requests pipelined behind it on the same connection.
fn connection_loop(inner: &Arc<Inner>, read_half: TcpStream, write_half: TcpStream) {
    let conn = Arc::new(ConnHandle {
        stream: Mutex::new(write_half),
        fail_scope: inner.cfg.fail_scope.clone(),
    });
    let mut reader = BufReader::new(read_half);
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        match crate::protocol::read_frame(&mut reader) {
            Ok(None) => break, // clean close
            Ok(Some(frame)) => {
                // The read-loop failpoint, checked per decoded frame
                // before admission: an injected error drops the whole
                // connection with the request unexecuted (what a killed
                // process looks like from the client), an injected delay
                // wedges the reader mid-pipeline.
                if saga_core::fail::check_scoped(
                    saga_core::fail::sites::NET_SERVER_READ,
                    &inner.cfg.fail_scope,
                )
                .is_err()
                {
                    break;
                }
                if !inner.admit() {
                    inner.counters.requests_shed.fetch_add(1, Ordering::Relaxed);
                    conn.respond(
                        frame.request_id,
                        &Response::Overloaded {
                            message: format!("in-flight cap reached ({})", inner.cfg.max_inflight),
                            backoff_hint_ms: inner.cfg.shed_backoff_hint_ms,
                        },
                    );
                    continue;
                }
                let job = Job {
                    conn: Arc::clone(&conn),
                    frame,
                };
                match inner.jobs.try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(job)) => {
                        inner.release();
                        inner.counters.requests_shed.fetch_add(1, Ordering::Relaxed);
                        job.conn.respond(
                            job.frame.request_id,
                            &Response::Overloaded {
                                message: format!("job queue full ({})", inner.cfg.queue_depth),
                                backoff_hint_ms: inner.cfg.shed_backoff_hint_ms,
                            },
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        inner.release();
                        break;
                    }
                }
            }
            Err(FrameError::Oversized {
                declared,
                request_id,
            }) => {
                // The header parsed, so the reject can be addressed — but
                // the stream cannot be resynchronized past an untrusted
                // length, so the connection closes after the response.
                inner.counters.frame_rejects.fetch_add(1, Ordering::Relaxed);
                conn.respond(
                    request_id,
                    &Response::Error {
                        kind: ErrorKind::BadRequest,
                        message: format!(
                            "oversized frame: declared payload {declared} exceeds {}",
                            crate::protocol::MAX_PAYLOAD
                        ),
                    },
                );
                break;
            }
            Err(_) => {
                // Torn / bad magic / bad version / transport error: the
                // stream is unsynchronizable and unaddressable. Drop this
                // connection; the pool and every other connection live on.
                inner.counters.frame_rejects.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    let _ = conn.stream.lock().shutdown(Shutdown::Both);
}

fn worker_loop(inner: &Arc<Inner>, jobs: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the receiver lock only while dequeuing, never while
        // executing, so the pool drains concurrently.
        let job = {
            let rx = jobs.lock();
            rx.recv_timeout(Duration::from_millis(50))
        };
        match job {
            Ok(job) => {
                let response = match decode_request(&job.frame) {
                    Ok(request) => inner.execute(request),
                    Err(err) => Response::Error {
                        kind: ErrorKind::BadRequest,
                        message: err.to_string(),
                    },
                };
                job.conn.respond(job.frame.request_id, &response);
                inner
                    .counters
                    .requests_served
                    .fetch_add(1, Ordering::Relaxed);
                inner.release();
            }
            Err(RecvTimeoutError::Timeout) => {
                if inner.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}
