//! The client: blocking calls, explicit pipelining, session threading.
//!
//! [`SagaClient`] speaks the [`protocol`](crate::protocol) over one TCP
//! connection. Two styles compose:
//!
//! * **Blocking** — [`call`](SagaClient::call) and the typed helpers
//!   ([`query`](SagaClient::query), [`commit`](SagaClient::commit), ...)
//!   send one request and wait for its response.
//! * **Pipelined** — [`send`](SagaClient::send) returns the request id
//!   immediately; any number may be in flight, and
//!   [`recv_by_id`](SagaClient::recv_by_id) /
//!   [`recv_any`](SagaClient::recv_any) collect responses in whatever
//!   order the server produced them (out-of-order responses for other
//!   ids are parked, never lost).
//!
//! The client carries a [`SessionToken`] that every [`commit`] advances
//! and every [`query_with_session`](SagaClient::query_with_session)
//! threads into the request — read-your-writes over the wire. The token
//! survives [`reconnect`](SagaClient::reconnect) (and serializes via
//! `saga_core::wire` for hand-off across processes), so a client that
//! reconnects mid-session still refuses stale serves.
//!
//! [`commit`]: SagaClient::commit

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use saga_core::{EntityId, EntityRecord, ProbeKey, Result, SagaError, SessionToken, Value};
use saga_live::QueryResult;

use crate::protocol::{
    decode_response, read_frame, Committed, ErrorKind, Request, Response, WireBatch,
};

/// Transport failures are *unavailability of this endpoint*, not data
/// corruption: connect refusals, resets, and socket timeouts all mean
/// "this server cannot answer right now" — the retryable condition a
/// pool fails over on. Payload-level garbage stays `Storage`.
fn net_err(context: &str, err: impl std::fmt::Display) -> SagaError {
    SagaError::Unavailable(format!("net: {context}: {err}"))
}

/// Socket behavior for a [`SagaClient`].
///
/// Every timeout is *bounded by default*: a server that accepts the
/// connection and then goes silent (wedged reader, paused VM, half-dead
/// NIC) surfaces as a typed [`SagaError::Unavailable`] after
/// `read_timeout` instead of hanging the caller forever. A zero
/// duration disables that bound (blocks indefinitely) — only drills
/// should want it.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Bound on any single socket read while waiting for a response.
    pub read_timeout: Duration,
    /// Bound on any single socket write while sending a request.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

fn opt(d: Duration) -> Option<Duration> {
    if d.is_zero() {
        None
    } else {
        Some(d)
    }
}

/// A connection to a [`SagaServer`](crate::SagaServer).
pub struct SagaClient {
    addr: String,
    cfg: ClientConfig,
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    next_id: u64,
    /// Responses that arrived while waiting for a different id.
    parked: HashMap<u64, Response>,
    session: SessionToken,
}

impl SagaClient {
    /// Connect to a server with default (bounded) timeouts. The address
    /// is kept for [`reconnect`](Self::reconnect).
    pub fn connect(addr: impl Into<String>) -> Result<SagaClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit socket behavior.
    pub fn connect_with(addr: impl Into<String>, cfg: ClientConfig) -> Result<SagaClient> {
        let addr = addr.into();
        let (writer, reader) = Self::open(&addr, &cfg)?;
        Ok(SagaClient {
            addr,
            cfg,
            writer,
            reader,
            next_id: 1,
            parked: HashMap::new(),
            session: SessionToken::default(),
        })
    }

    fn open(
        addr: &str,
        cfg: &ClientConfig,
    ) -> Result<(BufWriter<TcpStream>, BufReader<TcpStream>)> {
        let stream = match opt(cfg.connect_timeout) {
            None => TcpStream::connect(addr).map_err(|e| net_err("connect", e))?,
            Some(bound) => {
                // `connect_timeout` needs resolved addresses; try each
                // and keep the last failure for the error message.
                let addrs = addr.to_socket_addrs().map_err(|e| net_err("resolve", e))?;
                let mut last: Option<std::io::Error> = None;
                let mut connected = None;
                for sock_addr in addrs {
                    match TcpStream::connect_timeout(&sock_addr, bound) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                connected.ok_or_else(|| match last {
                    Some(e) => net_err("connect", e),
                    None => net_err("resolve", "address resolved to nothing"),
                })?
            }
        };
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(opt(cfg.read_timeout))
            .map_err(|e| net_err("set read timeout", e))?;
        stream
            .set_write_timeout(opt(cfg.write_timeout))
            .map_err(|e| net_err("set write timeout", e))?;
        let read_half = stream.try_clone().map_err(|e| net_err("clone stream", e))?;
        Ok((BufWriter::new(stream), BufReader::new(read_half)))
    }

    /// Drop the connection and dial the same address again. The session
    /// token is *kept*: queries after a reconnect still demand every
    /// write this client has observed. Parked responses from the old
    /// connection are discarded (their requests died with it).
    pub fn reconnect(&mut self) -> Result<()> {
        let (writer, reader) = Self::open(&self.addr, &self.cfg)?;
        self.writer = writer;
        self.reader = reader;
        self.parked.clear();
        Ok(())
    }

    /// The address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// This client's read-your-writes token.
    pub fn session(&self) -> SessionToken {
        self.session
    }

    /// Replace the session token (e.g. one deserialized from
    /// `SessionToken::from_wire` to resume another process's session).
    pub fn set_session(&mut self, token: SessionToken) {
        self.session = token;
    }

    // -- pipelined API ----------------------------------------------------

    /// Send one request without waiting; returns its request id. Any
    /// number of requests may be in flight on the connection.
    pub fn send(&mut self, request: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer
            .write_all(&request.encode(id))
            .and_then(|()| self.writer.flush())
            .map_err(|e| net_err("send", e))?;
        Ok(id)
    }

    /// Send without flushing — for batching many sends into few syscalls;
    /// pair with [`flush`](Self::flush) (or any `recv_*`, which flushes).
    pub fn send_buffered(&mut self, request: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer
            .write_all(&request.encode(id))
            .map_err(|e| net_err("send", e))?;
        Ok(id)
    }

    /// Flush buffered sends to the socket.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush().map_err(|e| net_err("flush", e))
    }

    /// Receive the response for a specific request id, parking any
    /// responses for other in-flight ids along the way.
    pub fn recv_by_id(&mut self, id: u64) -> Result<Response> {
        if let Some(found) = self.parked.remove(&id) {
            return Ok(found);
        }
        self.flush()?;
        loop {
            let (got_id, response) = self.read_one()?;
            if got_id == id {
                return Ok(response);
            }
            self.parked.insert(got_id, response);
        }
    }

    /// Receive whichever response arrives next (parked ones first).
    pub fn recv_any(&mut self) -> Result<(u64, Response)> {
        if let Some(id) = self.parked.keys().next().copied() {
            let response = self.parked.remove(&id).expect("key just observed");
            return Ok((id, response));
        }
        self.flush()?;
        self.read_one()
    }

    fn read_one(&mut self) -> Result<(u64, Response)> {
        let frame = read_frame(&mut self.reader)
            .map_err(|e| net_err("read frame", e))?
            .ok_or_else(|| SagaError::Unavailable("server closed the connection".to_string()))?;
        let response = decode_response(&frame)?;
        Ok((frame.request_id, response))
    }

    // -- blocking API -----------------------------------------------------

    /// Send one request and wait for its response. Returns the raw
    /// [`Response`] — including typed `Overloaded` / `Unavailable` /
    /// `Error` variants — so callers owning their retry policy can see
    /// exactly what the server said.
    pub fn call(&mut self, request: &Request) -> Result<Response> {
        let id = self.send(request)?;
        self.recv_by_id(id)
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping { delay_ms: 0 })? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// One KGQ query with no freshness constraint.
    pub fn query(&mut self, text: &str) -> Result<QueryResult> {
        let request = Request::Query {
            text: text.to_string(),
            session: None,
        };
        match self.call(&request)? {
            Response::Result(result) => Ok(result),
            other => Err(response_error(other)),
        }
    }

    /// One KGQ query constrained by this client's session token: the
    /// server must serve it from a replica at or past every commit this
    /// client has made (read-your-writes over the wire).
    pub fn query_with_session(&mut self, text: &str) -> Result<QueryResult> {
        let request = Request::Query {
            text: text.to_string(),
            session: Some(self.session),
        };
        match self.call(&request)? {
            Response::Result(result) => Ok(result),
            other => Err(response_error(other)),
        }
    }

    /// Commit a batch through the server's write-ahead log. On success
    /// the client's session token advances to the commit's LSN, so
    /// subsequent [`query_with_session`](Self::query_with_session) calls
    /// observe the write.
    pub fn commit(&mut self, batch: WireBatch) -> Result<Committed> {
        match self.call(&Request::Commit(batch))? {
            Response::Committed(committed) => {
                self.session.observe(committed.lsn);
                Ok(committed)
            }
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::postings` over the wire.
    pub fn postings(&mut self, probe: &ProbeKey) -> Result<Vec<EntityId>> {
        match self.call(&Request::Postings(probe.clone()))? {
            Response::Entities(ids) => Ok(ids),
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::selectivity` over the wire.
    pub fn selectivity(&mut self, probe: &ProbeKey) -> Result<u64> {
        match self.call(&Request::Selectivity(probe.clone()))? {
            Response::Count(n) => Ok(n),
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::probe_contains` over the wire.
    pub fn probe_contains(&mut self, probe: &ProbeKey, id: EntityId) -> Result<bool> {
        match self.call(&Request::ProbeContains(probe.clone(), id))? {
            Response::Bool(b) => Ok(b),
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::resolve_name` over the wire.
    pub fn resolve_name(&mut self, name: &str) -> Result<Vec<EntityId>> {
        match self.call(&Request::ResolveName(name.to_string()))? {
            Response::Entities(ids) => Ok(ids),
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::record` over the wire.
    pub fn record(&mut self, id: EntityId) -> Result<Option<EntityRecord>> {
        match self.call(&Request::Record(id))? {
            Response::Record(record) => Ok(record),
            other => Err(response_error(other)),
        }
    }

    /// The fleet's generation counter over the wire.
    pub fn generation(&mut self) -> Result<u64> {
        match self.call(&Request::Generation)? {
            Response::Count(n) => Ok(n),
            other => Err(response_error(other)),
        }
    }

    /// Convenience: the string values of a `GET` query.
    pub fn query_values(&mut self, text: &str) -> Result<Vec<Value>> {
        match self.query(text)? {
            QueryResult::Values(values) => Ok(values),
            QueryResult::Entities(_) => Err(SagaError::Query(
                "query returned entities where values were expected".to_string(),
            )),
        }
    }
}

/// Lift a non-success wire response into the typed error a blocking
/// helper reports: sheds become the retryable [`SagaError::Overloaded`]
/// (hint included), freshness misses the retryable
/// [`SagaError::Unavailable`], query failures stay [`SagaError::Query`].
pub(crate) fn response_error(response: Response) -> SagaError {
    match response {
        Response::Overloaded {
            message,
            backoff_hint_ms,
        } => SagaError::Overloaded {
            message,
            backoff_hint_ms,
        },
        Response::Unavailable { message } => SagaError::Unavailable(message),
        Response::Error { kind, message } => match kind {
            ErrorKind::Query => SagaError::Query(message),
            ErrorKind::BadRequest => SagaError::Storage(format!("bad request: {message}")),
            ErrorKind::Internal => SagaError::Storage(format!("server error: {message}")),
        },
        other => unexpected("success response", &other),
    }
}

fn unexpected(wanted: &str, got: &Response) -> SagaError {
    SagaError::Storage(format!("net: expected {wanted}, got {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_frame, opcode};

    /// The retry contract, checked over *every* error-range opcode and
    /// through the real codec: each response is encoded to wire bytes,
    /// read back as a frame, decoded, and lifted by [`response_error`].
    /// Retryability must survive the round trip — a client deciding to
    /// retry sees exactly what the server sent, nothing typed is lost.
    #[test]
    fn retryability_matrix_over_every_wire_error_opcode() {
        let cases: Vec<(Response, bool, Option<u64>)> = vec![
            (
                Response::Overloaded {
                    message: "job queue full".into(),
                    backoff_hint_ms: 40,
                },
                true,
                Some(40),
            ),
            (
                Response::Unavailable {
                    message: "session wait timed out".into(),
                },
                true,
                None,
            ),
            (
                Response::Error {
                    kind: ErrorKind::Query,
                    message: "parse error".into(),
                },
                false,
                None,
            ),
            (
                Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: "unknown opcode".into(),
                },
                false,
                None,
            ),
            (
                Response::Error {
                    kind: ErrorKind::Internal,
                    message: "replay failed".into(),
                },
                false,
                None,
            ),
        ];
        let mut opcodes_seen = std::collections::BTreeSet::new();
        for (resp, retryable, hint) in cases {
            opcodes_seen.insert(resp.opcode());
            let bytes = resp.encode(7);
            let frame = read_frame(&mut bytes.as_slice()).unwrap().unwrap();
            let err = response_error(decode_response(&frame).unwrap());
            assert_eq!(err.is_retryable(), retryable, "{err}");
            assert_eq!(err.backoff_hint_ms(), hint, "{err}");
        }
        // The matrix covers the whole error range (0xE0..): if a new
        // error opcode is added without a row here, this fails.
        assert_eq!(
            opcodes_seen.into_iter().collect::<Vec<_>>(),
            vec![opcode::ERROR, opcode::OVERLOADED, opcode::UNAVAILABLE],
        );
    }

    /// An `Overloaded` frame from a peer that predates the hint field
    /// still decodes — hint 0 means "no hint, client schedule applies".
    #[test]
    fn hintless_overloaded_from_an_older_peer_still_decodes() {
        let bytes = encode_frame(3, opcode::OVERLOADED, br#"{"message":"queue full"}"#);
        let frame = read_frame(&mut bytes.as_slice()).unwrap().unwrap();
        let err = response_error(decode_response(&frame).unwrap());
        assert!(err.is_retryable());
        assert_eq!(err.backoff_hint_ms(), Some(0));
    }
}
