//! The client: blocking calls, explicit pipelining, session threading.
//!
//! [`SagaClient`] speaks the [`protocol`](crate::protocol) over one TCP
//! connection. Two styles compose:
//!
//! * **Blocking** — [`call`](SagaClient::call) and the typed helpers
//!   ([`query`](SagaClient::query), [`commit`](SagaClient::commit), ...)
//!   send one request and wait for its response.
//! * **Pipelined** — [`send`](SagaClient::send) returns the request id
//!   immediately; any number may be in flight, and
//!   [`recv_by_id`](SagaClient::recv_by_id) /
//!   [`recv_any`](SagaClient::recv_any) collect responses in whatever
//!   order the server produced them (out-of-order responses for other
//!   ids are parked, never lost).
//!
//! The client carries a [`SessionToken`] that every [`commit`] advances
//! and every [`query_with_session`](SagaClient::query_with_session)
//! threads into the request — read-your-writes over the wire. The token
//! survives [`reconnect`](SagaClient::reconnect) (and serializes via
//! `saga_core::wire` for hand-off across processes), so a client that
//! reconnects mid-session still refuses stale serves.
//!
//! [`commit`]: SagaClient::commit

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;

use saga_core::{EntityId, EntityRecord, ProbeKey, Result, SagaError, SessionToken, Value};
use saga_live::QueryResult;

use crate::protocol::{
    decode_response, read_frame, Committed, ErrorKind, Request, Response, WireBatch,
};

fn net_err(context: &str, err: impl std::fmt::Display) -> SagaError {
    SagaError::Storage(format!("net: {context}: {err}"))
}

/// A connection to a [`SagaServer`](crate::SagaServer).
pub struct SagaClient {
    addr: String,
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    next_id: u64,
    /// Responses that arrived while waiting for a different id.
    parked: HashMap<u64, Response>,
    session: SessionToken,
}

impl SagaClient {
    /// Connect to a server. The address is kept for
    /// [`reconnect`](Self::reconnect).
    pub fn connect(addr: impl Into<String>) -> Result<SagaClient> {
        let addr = addr.into();
        let (writer, reader) = Self::open(&addr)?;
        Ok(SagaClient {
            addr,
            writer,
            reader,
            next_id: 1,
            parked: HashMap::new(),
            session: SessionToken::default(),
        })
    }

    fn open(addr: &str) -> Result<(BufWriter<TcpStream>, BufReader<TcpStream>)> {
        let stream = TcpStream::connect(addr).map_err(|e| net_err("connect", e))?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone().map_err(|e| net_err("clone stream", e))?;
        Ok((BufWriter::new(stream), BufReader::new(read_half)))
    }

    /// Drop the connection and dial the same address again. The session
    /// token is *kept*: queries after a reconnect still demand every
    /// write this client has observed. Parked responses from the old
    /// connection are discarded (their requests died with it).
    pub fn reconnect(&mut self) -> Result<()> {
        let (writer, reader) = Self::open(&self.addr)?;
        self.writer = writer;
        self.reader = reader;
        self.parked.clear();
        Ok(())
    }

    /// This client's read-your-writes token.
    pub fn session(&self) -> SessionToken {
        self.session
    }

    /// Replace the session token (e.g. one deserialized from
    /// `SessionToken::from_wire` to resume another process's session).
    pub fn set_session(&mut self, token: SessionToken) {
        self.session = token;
    }

    // -- pipelined API ----------------------------------------------------

    /// Send one request without waiting; returns its request id. Any
    /// number of requests may be in flight on the connection.
    pub fn send(&mut self, request: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer
            .write_all(&request.encode(id))
            .and_then(|()| self.writer.flush())
            .map_err(|e| net_err("send", e))?;
        Ok(id)
    }

    /// Send without flushing — for batching many sends into few syscalls;
    /// pair with [`flush`](Self::flush) (or any `recv_*`, which flushes).
    pub fn send_buffered(&mut self, request: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer
            .write_all(&request.encode(id))
            .map_err(|e| net_err("send", e))?;
        Ok(id)
    }

    /// Flush buffered sends to the socket.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush().map_err(|e| net_err("flush", e))
    }

    /// Receive the response for a specific request id, parking any
    /// responses for other in-flight ids along the way.
    pub fn recv_by_id(&mut self, id: u64) -> Result<Response> {
        if let Some(found) = self.parked.remove(&id) {
            return Ok(found);
        }
        self.flush()?;
        loop {
            let (got_id, response) = self.read_one()?;
            if got_id == id {
                return Ok(response);
            }
            self.parked.insert(got_id, response);
        }
    }

    /// Receive whichever response arrives next (parked ones first).
    pub fn recv_any(&mut self) -> Result<(u64, Response)> {
        if let Some(id) = self.parked.keys().next().copied() {
            let response = self.parked.remove(&id).expect("key just observed");
            return Ok((id, response));
        }
        self.flush()?;
        self.read_one()
    }

    fn read_one(&mut self) -> Result<(u64, Response)> {
        let frame = read_frame(&mut self.reader)
            .map_err(|e| net_err("read frame", e))?
            .ok_or_else(|| SagaError::Unavailable("server closed the connection".to_string()))?;
        let response = decode_response(&frame)?;
        Ok((frame.request_id, response))
    }

    // -- blocking API -----------------------------------------------------

    /// Send one request and wait for its response. Returns the raw
    /// [`Response`] — including typed `Overloaded` / `Unavailable` /
    /// `Error` variants — so callers owning their retry policy can see
    /// exactly what the server said.
    pub fn call(&mut self, request: &Request) -> Result<Response> {
        let id = self.send(request)?;
        self.recv_by_id(id)
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping { delay_ms: 0 })? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// One KGQ query with no freshness constraint.
    pub fn query(&mut self, text: &str) -> Result<QueryResult> {
        let request = Request::Query {
            text: text.to_string(),
            session: None,
        };
        match self.call(&request)? {
            Response::Result(result) => Ok(result),
            other => Err(response_error(other)),
        }
    }

    /// One KGQ query constrained by this client's session token: the
    /// server must serve it from a replica at or past every commit this
    /// client has made (read-your-writes over the wire).
    pub fn query_with_session(&mut self, text: &str) -> Result<QueryResult> {
        let request = Request::Query {
            text: text.to_string(),
            session: Some(self.session),
        };
        match self.call(&request)? {
            Response::Result(result) => Ok(result),
            other => Err(response_error(other)),
        }
    }

    /// Commit a batch through the server's write-ahead log. On success
    /// the client's session token advances to the commit's LSN, so
    /// subsequent [`query_with_session`](Self::query_with_session) calls
    /// observe the write.
    pub fn commit(&mut self, batch: WireBatch) -> Result<Committed> {
        match self.call(&Request::Commit(batch))? {
            Response::Committed(committed) => {
                self.session.observe(committed.lsn);
                Ok(committed)
            }
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::postings` over the wire.
    pub fn postings(&mut self, probe: &ProbeKey) -> Result<Vec<EntityId>> {
        match self.call(&Request::Postings(probe.clone()))? {
            Response::Entities(ids) => Ok(ids),
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::selectivity` over the wire.
    pub fn selectivity(&mut self, probe: &ProbeKey) -> Result<u64> {
        match self.call(&Request::Selectivity(probe.clone()))? {
            Response::Count(n) => Ok(n),
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::probe_contains` over the wire.
    pub fn probe_contains(&mut self, probe: &ProbeKey, id: EntityId) -> Result<bool> {
        match self.call(&Request::ProbeContains(probe.clone(), id))? {
            Response::Bool(b) => Ok(b),
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::resolve_name` over the wire.
    pub fn resolve_name(&mut self, name: &str) -> Result<Vec<EntityId>> {
        match self.call(&Request::ResolveName(name.to_string()))? {
            Response::Entities(ids) => Ok(ids),
            other => Err(response_error(other)),
        }
    }

    /// `GraphRead::record` over the wire.
    pub fn record(&mut self, id: EntityId) -> Result<Option<EntityRecord>> {
        match self.call(&Request::Record(id))? {
            Response::Record(record) => Ok(record),
            other => Err(response_error(other)),
        }
    }

    /// The fleet's generation counter over the wire.
    pub fn generation(&mut self) -> Result<u64> {
        match self.call(&Request::Generation)? {
            Response::Count(n) => Ok(n),
            other => Err(response_error(other)),
        }
    }

    /// Convenience: the string values of a `GET` query.
    pub fn query_values(&mut self, text: &str) -> Result<Vec<Value>> {
        match self.query(text)? {
            QueryResult::Values(values) => Ok(values),
            QueryResult::Entities(_) => Err(SagaError::Query(
                "query returned entities where values were expected".to_string(),
            )),
        }
    }
}

/// Lift a non-success wire response into the typed error a blocking
/// helper reports: shed/stale conditions become the retryable
/// [`SagaError::Unavailable`], query failures stay [`SagaError::Query`].
fn response_error(response: Response) -> SagaError {
    match response {
        Response::Overloaded { message } => {
            SagaError::Unavailable(format!("server overloaded: {message}"))
        }
        Response::Unavailable { message } => SagaError::Unavailable(message),
        Response::Error { kind, message } => match kind {
            ErrorKind::Query => SagaError::Query(message),
            ErrorKind::BadRequest => SagaError::Storage(format!("bad request: {message}")),
            ErrorKind::Internal => SagaError::Storage(format!("server error: {message}")),
        },
        other => unexpected("success response", &other),
    }
}

fn unexpected(wanted: &str, got: &Response) -> SagaError {
    SagaError::Storage(format!("net: expected {wanted}, got {got:?}"))
}
