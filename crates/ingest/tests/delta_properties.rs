//! Property-based tests for delta computation: the Added/Updated/Deleted
//! partitions must exactly account for the difference between snapshots.

use proptest::prelude::*;
use saga_core::{intern, EntityPayload, FactMeta, FxHashSet, SourceId, Value};
use saga_ingest::{compute_delta, SourceSnapshot};

/// A miniature source version: entity id → (name value, popularity).
type Version = Vec<(u8, u8, u8)>;

fn payloads(version: &Version) -> Vec<EntityPayload> {
    let mut seen = FxHashSet::default();
    version
        .iter()
        .filter(|(id, _, _)| seen.insert(*id))
        .map(|(id, name, pop)| {
            let mut p = EntityPayload::new(SourceId(1), format!("e{id}"), intern("song"));
            let meta = FactMeta::from_source(SourceId(1), 0.9);
            p.push_simple(intern("name"), Value::str(format!("N{name}")), meta.clone());
            p.push_simple(intern("popularity"), Value::Int(i64::from(*pop)), meta);
            p
        })
        .collect()
}

fn volatile() -> FxHashSet<saga_core::Symbol> {
    let mut s = FxHashSet::default();
    s.insert(intern("popularity"));
    s
}

proptest! {
    /// Partition laws: Added ∪ Updated ⊆ current; Deleted ⊆ previous∖current;
    /// the three partitions are disjoint; unchanged entities appear nowhere.
    #[test]
    fn delta_partitions_account_for_the_diff(prev in any::<Version>(), cur in any::<Version>()) {
        let prev_snap = SourceSnapshot::from_payloads(payloads(&prev));
        let cur_snap = SourceSnapshot::from_payloads(payloads(&cur));
        let delta = compute_delta(&prev_snap, &cur_snap, &volatile());

        let prev_ids: FxHashSet<String> =
            prev_snap.iter().map(|(id, _)| id.clone()).collect();
        let cur_ids: FxHashSet<String> = cur_snap.iter().map(|(id, _)| id.clone()).collect();

        let added: FxHashSet<String> =
            delta.added.iter().map(|p| p.local_id().unwrap().to_string()).collect();
        let updated: FxHashSet<String> =
            delta.updated.iter().map(|p| p.local_id().unwrap().to_string()).collect();
        let deleted: FxHashSet<String> = delta.deleted.iter().cloned().collect();

        // Added = current ∖ previous.
        for id in &added {
            prop_assert!(cur_ids.contains(id) && !prev_ids.contains(id));
        }
        for id in cur_ids.difference(&prev_ids) {
            prop_assert!(added.contains(id), "missing added {id}");
        }
        // Deleted = previous ∖ current.
        for id in &deleted {
            prop_assert!(prev_ids.contains(id) && !cur_ids.contains(id));
        }
        for id in prev_ids.difference(&cur_ids) {
            prop_assert!(deleted.contains(id), "missing deleted {id}");
        }
        // Updated ⊆ previous ∩ current, disjoint from both other partitions.
        for id in &updated {
            prop_assert!(prev_ids.contains(id) && cur_ids.contains(id));
            prop_assert!(!added.contains(id) && !deleted.contains(id));
        }
    }

    /// Volatile churn never lands in the stable partitions, and every
    /// current entity's volatile facts appear in the full volatile dump.
    #[test]
    fn volatile_dump_is_full_and_separate(prev in any::<Version>(), cur in any::<Version>()) {
        let prev_snap = SourceSnapshot::from_payloads(payloads(&prev));
        let cur_snap = SourceSnapshot::from_payloads(payloads(&cur));
        let delta = compute_delta(&prev_snap, &cur_snap, &volatile());
        let pop = intern("popularity");
        for p in delta.added.iter().chain(delta.updated.iter()) {
            prop_assert!(p.values(pop).is_empty(), "volatile fact leaked into stable partition");
        }
        // One volatile fact per current entity (each payload has exactly one).
        prop_assert_eq!(delta.volatile.len(), cur_snap.len());
    }

    /// Self-delta is a stable no-op: diffing a snapshot against itself
    /// yields empty Added/Updated/Deleted.
    #[test]
    fn self_delta_is_noop(v in any::<Version>()) {
        let a = SourceSnapshot::from_payloads(payloads(&v));
        let b = SourceSnapshot::from_payloads(payloads(&v));
        let delta = compute_delta(&a, &b, &volatile());
        prop_assert!(delta.is_stable_noop());
    }
}
