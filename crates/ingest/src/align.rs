//! Ontology alignment via Predicate Generation Functions (PGFs).
//!
//! §2.2: "Users specify both the source predicates and target predicates
//! from the KG ontology in the configuration. Then, PGFs based on this
//! specification are used to populate the target schema from the source
//! data." Alignment is config-driven: an [`AlignmentConfig`] is plain data
//! (serde-serializable, so it can live in a JSON configuration file) and is
//! interpreted against each entity-centric row.
//!
//! Output entities follow KG-ontology predicates while subjects and object
//! references remain in the source namespace — linking happens later in
//! knowledge construction.

use saga_core::json::Json;
use saga_core::{intern, EntityPayload, FactMeta, RelId, Result, Row, SagaError, SourceId, Value};
use saga_ontology::{Ontology, ValueKind};

/// One Predicate Generation Function: how to populate target predicates
/// from source columns.
///
/// In JSON configuration files a PGF is a tagged object,
/// `{"op": "map", "column": "category", "predicate": "genre"}`.
#[derive(Clone, Debug, PartialEq)]
pub enum Pgf {
    /// Copy a column into a (possibly renamed) target predicate
    /// (`category` → `genre`).
    Map {
        /// Source column.
        column: String,
        /// Target KG predicate.
        predicate: String,
    },
    /// Copy a column as an entity *reference* in the source namespace.
    MapRef {
        /// Source column holding a source-namespace id or a name.
        column: String,
        /// Target KG predicate.
        predicate: String,
    },
    /// Concatenate several columns into one target predicate
    /// (`<title, sequel_number>` → `full_title`).
    Combine {
        /// Source columns, in order.
        columns: Vec<String>,
        /// Join separator.
        separator: String,
        /// Target KG predicate.
        predicate: String,
    },
    /// Explode a delimited multi-valued column into repeated facts.
    Split {
        /// Source column.
        column: String,
        /// Delimiter.
        delimiter: String,
        /// Target KG predicate.
        predicate: String,
    },
    /// Populate a composite relationship node; one node per row.
    Composite {
        /// Target composite predicate.
        predicate: String,
        /// `(facet, source column, is_ref)` assignments.
        facets: Vec<FacetSpec>,
    },
    /// Assert a constant fact on every entity (e.g. vertical tags).
    Const {
        /// Target KG predicate.
        predicate: String,
        /// String value asserted.
        value: String,
    },
}

/// One facet assignment inside a [`Pgf::Composite`].
#[derive(Clone, Debug, PartialEq)]
pub struct FacetSpec {
    /// Facet predicate inside the relationship node.
    pub facet: String,
    /// Source column providing the facet's value.
    pub column: String,
    /// Whether the value is a source-namespace entity reference
    /// (defaults to `false` when absent from the config file).
    pub is_ref: bool,
}

/// Config-driven description of one source's ontology alignment.
#[derive(Clone, Debug, PartialEq)]
pub struct AlignmentConfig {
    /// KG ontology type assigned to every entity of this source
    /// ("Entity type specification is also part of this step").
    pub entity_type: String,
    /// Column holding the source-local id.
    pub id_column: String,
    /// Locale tag applied to produced string literals (optional in JSON).
    pub locale: Option<String>,
    /// Trust score this source's facts carry.
    pub trust: f32,
    /// The predicate generation functions.
    pub pgfs: Vec<Pgf>,
}

fn bad(msg: impl Into<String>) -> SagaError {
    SagaError::Ontology(format!("bad alignment config: {}", msg.into()))
}

fn req_str(v: &Json, key: &str) -> Result<String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("missing string field {key}")))
}

fn obj(entries: Vec<(&str, Json)>) -> Json {
    Json::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl FacetSpec {
    fn to_json_value(&self) -> Json {
        obj(vec![
            ("facet", Json::str(&self.facet)),
            ("column", Json::str(&self.column)),
            ("is_ref", Json::Bool(self.is_ref)),
        ])
    }

    fn from_json_value(v: &Json) -> Result<FacetSpec> {
        Ok(FacetSpec {
            facet: req_str(v, "facet")?,
            column: req_str(v, "column")?,
            is_ref: v.get("is_ref").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

impl Pgf {
    fn to_json_value(&self) -> Json {
        match self {
            Pgf::Map { column, predicate } => obj(vec![
                ("op", Json::str("map")),
                ("column", Json::str(column)),
                ("predicate", Json::str(predicate)),
            ]),
            Pgf::MapRef { column, predicate } => obj(vec![
                ("op", Json::str("map_ref")),
                ("column", Json::str(column)),
                ("predicate", Json::str(predicate)),
            ]),
            Pgf::Combine {
                columns,
                separator,
                predicate,
            } => obj(vec![
                ("op", Json::str("combine")),
                (
                    "columns",
                    Json::Array(columns.iter().map(Json::str).collect()),
                ),
                ("separator", Json::str(separator)),
                ("predicate", Json::str(predicate)),
            ]),
            Pgf::Split {
                column,
                delimiter,
                predicate,
            } => obj(vec![
                ("op", Json::str("split")),
                ("column", Json::str(column)),
                ("delimiter", Json::str(delimiter)),
                ("predicate", Json::str(predicate)),
            ]),
            Pgf::Composite { predicate, facets } => obj(vec![
                ("op", Json::str("composite")),
                ("predicate", Json::str(predicate)),
                (
                    "facets",
                    Json::Array(facets.iter().map(FacetSpec::to_json_value).collect()),
                ),
            ]),
            Pgf::Const { predicate, value } => obj(vec![
                ("op", Json::str("const")),
                ("predicate", Json::str(predicate)),
                ("value", Json::str(value)),
            ]),
        }
    }

    fn from_json_value(v: &Json) -> Result<Pgf> {
        let op = req_str(v, "op")?;
        match op.as_str() {
            "map" => Ok(Pgf::Map {
                column: req_str(v, "column")?,
                predicate: req_str(v, "predicate")?,
            }),
            "map_ref" => Ok(Pgf::MapRef {
                column: req_str(v, "column")?,
                predicate: req_str(v, "predicate")?,
            }),
            "combine" => Ok(Pgf::Combine {
                columns: v
                    .get("columns")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("combine needs columns"))?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| bad("column name"))
                    })
                    .collect::<Result<Vec<String>>>()?,
                separator: req_str(v, "separator")?,
                predicate: req_str(v, "predicate")?,
            }),
            "split" => Ok(Pgf::Split {
                column: req_str(v, "column")?,
                delimiter: req_str(v, "delimiter")?,
                predicate: req_str(v, "predicate")?,
            }),
            "composite" => Ok(Pgf::Composite {
                predicate: req_str(v, "predicate")?,
                facets: v
                    .get("facets")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("composite needs facets"))?
                    .iter()
                    .map(FacetSpec::from_json_value)
                    .collect::<Result<Vec<FacetSpec>>>()?,
            }),
            "const" => Ok(Pgf::Const {
                predicate: req_str(v, "predicate")?,
                value: req_str(v, "value")?,
            }),
            other => Err(bad(format!("unknown op {other}"))),
        }
    }
}

impl AlignmentConfig {
    /// Parse a JSON configuration file's contents.
    pub fn from_json(json: &str) -> Result<AlignmentConfig> {
        let v = saga_core::json::parse(json).map_err(|e| bad(e.to_string()))?;
        let trust = v
            .get("trust")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("missing trust"))?;
        Ok(AlignmentConfig {
            entity_type: req_str(&v, "entity_type")?,
            id_column: req_str(&v, "id_column")?,
            locale: match v.get("locale") {
                None | Some(Json::Null) => None,
                Some(Json::Str(s)) => Some(s.clone()),
                Some(_) => return Err(bad("locale must be a string")),
            },
            trust: trust as f32,
            pgfs: v
                .get("pgfs")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("missing pgfs"))?
                .iter()
                .map(Pgf::from_json_value)
                .collect::<Result<Vec<Pgf>>>()?,
        })
    }

    /// Serialize to a JSON configuration string.
    pub fn to_json(&self) -> String {
        obj(vec![
            ("entity_type", Json::str(&self.entity_type)),
            ("id_column", Json::str(&self.id_column)),
            (
                "locale",
                match &self.locale {
                    Some(l) => Json::str(l),
                    None => Json::Null,
                },
            ),
            ("trust", Json::Float(self.trust as f64)),
            (
                "pgfs",
                Json::Array(self.pgfs.iter().map(Pgf::to_json_value).collect()),
            ),
        ])
        .to_string_pretty()
    }

    /// Coerce a raw imported value to the ontology-declared kind.
    fn coerce(value: &Value, kind: ValueKind) -> Value {
        match (kind, value) {
            (_, Value::Null) => Value::Null,
            (ValueKind::Int, Value::Str(s)) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Null),
            (ValueKind::Int, Value::Float(f)) => Value::Int(*f as i64),
            (ValueKind::Float, Value::Str(s)) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .unwrap_or(Value::Null),
            (ValueKind::Float, Value::Int(i)) => Value::Float(*i as f64),
            (ValueKind::Bool, Value::Str(s)) => match s.trim() {
                "true" | "TRUE" | "1" => Value::Bool(true),
                "false" | "FALSE" | "0" => Value::Bool(false),
                _ => Value::Null,
            },
            (ValueKind::Str, Value::Int(i)) => Value::str(i.to_string()),
            (ValueKind::Str, Value::Float(f)) => Value::str(f.to_string()),
            _ => value.clone(),
        }
    }

    fn meta(&self, source: SourceId) -> FactMeta {
        match &self.locale {
            Some(loc) => FactMeta::localized(source, self.trust, loc),
            None => FactMeta::from_source(source, self.trust),
        }
    }

    /// Align one entity-centric row into an [`EntityPayload`] in the KG
    /// ontology schema.
    pub fn align_row(
        &self,
        ontology: &Ontology,
        source: SourceId,
        row: &Row,
    ) -> Result<EntityPayload> {
        let id_cell = row
            .get(&self.id_column)
            .ok_or_else(|| SagaError::Ontology(format!("id column {} missing", self.id_column)))?;
        let local_id = match id_cell {
            Value::Str(s) => s.to_string(),
            Value::Int(i) => i.to_string(),
            other => other.render(),
        };
        let ty = intern(&self.entity_type);
        if ontology.types().id_of_symbol(ty).is_none() {
            return Err(SagaError::Ontology(format!(
                "entity type {} not in ontology",
                self.entity_type
            )));
        }
        let mut payload = EntityPayload::new(source, &local_id, ty);
        // The entity's declared type is itself a fact.
        payload.push_simple(
            intern("type"),
            Value::str(&self.entity_type),
            self.meta(source),
        );

        let mut next_rel = 1u32;
        for pgf in &self.pgfs {
            self.apply_pgf(ontology, source, row, pgf, &mut payload, &mut next_rel)?;
        }
        Ok(payload)
    }

    fn declared_kind(&self, ontology: &Ontology, predicate: &str) -> Result<ValueKind> {
        ontology
            .predicate_named(predicate)
            .map(|d| d.kind)
            .ok_or_else(|| SagaError::Ontology(format!("predicate {predicate} not in ontology")))
    }

    fn apply_pgf(
        &self,
        ontology: &Ontology,
        source: SourceId,
        row: &Row,
        pgf: &Pgf,
        payload: &mut EntityPayload,
        next_rel: &mut u32,
    ) -> Result<()> {
        let col = |name: &str| -> Result<&Value> {
            row.get(name)
                .ok_or_else(|| SagaError::Ontology(format!("source column {name} missing")))
        };
        match pgf {
            Pgf::Map { column, predicate } => {
                let kind = self.declared_kind(ontology, predicate)?;
                let v = Self::coerce(col(column)?, kind);
                if !v.is_null() {
                    payload.push_simple(intern(predicate), v, self.meta(source));
                }
            }
            Pgf::MapRef { column, predicate } => {
                self.declared_kind(ontology, predicate)?;
                if let Some(s) = col(column)?.as_str() {
                    payload.push_simple(intern(predicate), Value::source_ref(s), self.meta(source));
                }
            }
            Pgf::Combine {
                columns,
                separator,
                predicate,
            } => {
                self.declared_kind(ontology, predicate)?;
                let mut parts = Vec::with_capacity(columns.len());
                for c in columns {
                    match col(c)? {
                        Value::Null => {}
                        v => parts.push(v.render()),
                    }
                }
                if !parts.is_empty() {
                    payload.push_simple(
                        intern(predicate),
                        Value::str(parts.join(separator)),
                        self.meta(source),
                    );
                }
            }
            Pgf::Split {
                column,
                delimiter,
                predicate,
            } => {
                let kind = self.declared_kind(ontology, predicate)?;
                if let Some(s) = col(column)?.as_str() {
                    for part in s.split(delimiter.as_str()) {
                        let part = part.trim();
                        if part.is_empty() {
                            continue;
                        }
                        let v = Self::coerce(&Value::str(part), kind);
                        if !v.is_null() {
                            payload.push_simple(intern(predicate), v, self.meta(source));
                        }
                    }
                }
            }
            Pgf::Composite { predicate, facets } => {
                let def = ontology.predicate_named(predicate).ok_or_else(|| {
                    SagaError::Ontology(format!("predicate {predicate} not in ontology"))
                })?;
                if def.kind != ValueKind::Composite {
                    return Err(SagaError::Ontology(format!(
                        "predicate {predicate} is not composite"
                    )));
                }
                let rel_id = RelId(*next_rel);
                let mut produced = false;
                for f in facets {
                    let fk = def.facet_kind(intern(&f.facet)).ok_or_else(|| {
                        SagaError::Ontology(format!("{predicate} has no facet {}", f.facet))
                    })?;
                    let raw = col(&f.column)?;
                    let v = if f.is_ref {
                        raw.as_str().map(Value::source_ref).unwrap_or(Value::Null)
                    } else {
                        Self::coerce(raw, fk)
                    };
                    if !v.is_null() {
                        payload.push_composite(
                            intern(predicate),
                            rel_id,
                            intern(&f.facet),
                            v,
                            self.meta(source),
                        );
                        produced = true;
                    }
                }
                if produced {
                    *next_rel += 1;
                }
            }
            Pgf::Const { predicate, value } => {
                self.declared_kind(ontology, predicate)?;
                payload.push_simple(intern(predicate), Value::str(value), self.meta(source));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_core::Dataset;
    use saga_ontology::default_ontology;

    fn movie_row() -> Dataset {
        let mut d = Dataset::with_schema(&[
            "movie_id",
            "title",
            "sequel_number",
            "category",
            "director",
            "year",
        ]);
        d.push(vec![
            Value::str("m7"),
            Value::str("Knives Out"),
            Value::str("2"),
            Value::str("mystery|comedy"),
            Value::str("dir_rj"),
            Value::str("2022"),
        ]);
        d
    }

    fn movie_config() -> AlignmentConfig {
        AlignmentConfig {
            entity_type: "movie".into(),
            id_column: "movie_id".into(),
            locale: Some("en".into()),
            trust: 0.85,
            pgfs: vec![
                Pgf::Combine {
                    columns: vec!["title".into(), "sequel_number".into()],
                    separator: " ".into(),
                    predicate: "full_title".into(),
                },
                Pgf::Map {
                    column: "title".into(),
                    predicate: "name".into(),
                },
                Pgf::Split {
                    column: "category".into(),
                    delimiter: "|".into(),
                    predicate: "genre".into(),
                },
                Pgf::MapRef {
                    column: "director".into(),
                    predicate: "directed_by".into(),
                },
                Pgf::Map {
                    column: "year".into(),
                    predicate: "release_year".into(),
                },
            ],
        }
    }

    #[test]
    fn paper_examples_category_to_genre_and_full_title() {
        let ont = default_ontology();
        let ds = movie_row();
        let p = movie_config()
            .align_row(&ont, SourceId(3), ds.row(0))
            .unwrap();
        assert_eq!(p.local_id(), Some("m7"));
        assert_eq!(p.entity_type, intern("movie"));
        assert_eq!(p.first_str(intern("full_title")), Some("Knives Out 2"));
        let genres: Vec<&Value> = p.values(intern("genre"));
        assert_eq!(genres.len(), 2, "category split into two genre facts");
        assert_eq!(
            p.values(intern("directed_by"))[0].as_source_ref(),
            Some("dir_rj"),
            "references stay in the source namespace"
        );
        assert_eq!(
            p.values(intern("release_year"))[0],
            &Value::Int(2022),
            "coerced to int"
        );
    }

    #[test]
    fn alignment_config_roundtrips_through_json() {
        let cfg = movie_config();
        let json = cfg.to_json();
        let back = AlignmentConfig::from_json(&json).unwrap();
        assert_eq!(back, cfg);
        assert!(AlignmentConfig::from_json("{nope").is_err());
    }

    #[test]
    fn unknown_predicate_or_type_is_an_ontology_error() {
        let ont = default_ontology();
        let ds = movie_row();
        let mut cfg = movie_config();
        cfg.pgfs.push(Pgf::Map {
            column: "title".into(),
            predicate: "not_a_pred".into(),
        });
        assert!(cfg.align_row(&ont, SourceId(1), ds.row(0)).is_err());

        let mut cfg2 = movie_config();
        cfg2.entity_type = "spaceship".into();
        assert!(cfg2.align_row(&ont, SourceId(1), ds.row(0)).is_err());
    }

    #[test]
    fn composite_pgf_builds_relationship_nodes() {
        let ont = default_ontology();
        let mut d = Dataset::with_schema(&["pid", "school", "degree", "yr"]);
        d.push(vec![
            Value::str("p1"),
            Value::str("uw_id"),
            Value::str("PhD"),
            Value::str("2005"),
        ]);
        let cfg = AlignmentConfig {
            entity_type: "person".into(),
            id_column: "pid".into(),
            locale: None,
            trust: 0.8,
            pgfs: vec![Pgf::Composite {
                predicate: "educated_at".into(),
                facets: vec![
                    FacetSpec {
                        facet: "school".into(),
                        column: "school".into(),
                        is_ref: true,
                    },
                    FacetSpec {
                        facet: "degree".into(),
                        column: "degree".into(),
                        is_ref: false,
                    },
                    FacetSpec {
                        facet: "year".into(),
                        column: "yr".into(),
                        is_ref: false,
                    },
                ],
            }],
        };
        let p = cfg.align_row(&ont, SourceId(2), d.row(0)).unwrap();
        let comps: Vec<_> = p.triples.iter().filter(|t| t.rel.is_some()).collect();
        assert_eq!(comps.len(), 3);
        let rel_id = comps[0].rel.unwrap().rel_id;
        assert!(comps.iter().all(|t| t.rel.unwrap().rel_id == rel_id));
        assert!(comps
            .iter()
            .any(|t| t.object.as_source_ref() == Some("uw_id")));
        assert!(comps.iter().any(|t| t.object == Value::Int(2005)));
    }

    #[test]
    fn nulls_are_dropped_not_asserted() {
        let ont = default_ontology();
        let mut d = Dataset::with_schema(&["id", "name", "year"]);
        d.push(vec![Value::str("x"), Value::Null, Value::str("not a year")]);
        let cfg = AlignmentConfig {
            entity_type: "movie".into(),
            id_column: "id".into(),
            locale: None,
            trust: 0.5,
            pgfs: vec![
                Pgf::Map {
                    column: "name".into(),
                    predicate: "name".into(),
                },
                Pgf::Map {
                    column: "year".into(),
                    predicate: "release_year".into(),
                },
            ],
        };
        let p = cfg.align_row(&ont, SourceId(1), d.row(0)).unwrap();
        // Only the `type` fact survives: name was null, year unparseable.
        assert_eq!(p.triples.len(), 1);
        assert_eq!(p.first_str(intern("type")), Some("movie"));
    }

    #[test]
    fn locale_is_attached_to_facts() {
        let ont = default_ontology();
        let ds = movie_row();
        let p = movie_config()
            .align_row(&ont, SourceId(3), ds.row(0))
            .unwrap();
        let name = p
            .triples
            .iter()
            .find(|t| t.predicate == intern("name"))
            .unwrap();
        assert_eq!(name.meta.locale, Some(intern("en")));
        assert_eq!(name.meta.provenance[0].trust, 0.85);
    }
}
