//! Seeded synthetic source generators.
//!
//! The paper's deployment ingests licensed music/movies/sports feeds we do
//! not have; these generators produce the same *statistical phenomena* the
//! construction pipeline has to cope with (see DESIGN.md §2):
//!
//! * multiple providers covering overlapping slices of one ground truth,
//!   each in its own id namespace;
//! * in-source duplicates, typos, nickname aliases, missing fields;
//! * volatile popularity columns churning every version;
//! * version-to-version evolution (adds / updates / deletes) driving the
//!   delta pipeline and the Fig. 12 growth experiment.
//!
//! Everything is deterministic under a caller-supplied seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use saga_core::Dataset;
use saga_core::Value;

use crate::align::{AlignmentConfig, Pgf};

/// First names with common nicknames — the synonym phenomenon §5.1's
/// learned string similarities are built to capture.
pub const NICKNAMES: &[(&str, &str)] = &[
    ("Robert", "Bob"),
    ("William", "Bill"),
    ("Elizabeth", "Liz"),
    ("Katherine", "Kate"),
    ("Michael", "Mike"),
    ("Jennifer", "Jen"),
    ("Richard", "Rick"),
    ("Margaret", "Peggy"),
    ("Christopher", "Chris"),
    ("Alexandra", "Sasha"),
    ("Anthony", "Tony"),
    ("Patricia", "Trish"),
    ("Theodore", "Ted"),
    ("Josephine", "Jo"),
    ("Benjamin", "Ben"),
    ("Victoria", "Vicky"),
];

const LAST_NAMES: &[&str] = &[
    "Smith",
    "Okafor",
    "Tanaka",
    "Rossi",
    "Novak",
    "Eilish",
    "Carter",
    "Nguyen",
    "Haddad",
    "Kowalski",
    "Ibrahim",
    "Silva",
    "Moreau",
    "Schmidt",
    "Larsen",
    "Petrov",
    "Yamada",
    "Garcia",
    "Chen",
    "Osei",
    "Lindqvist",
    "Marino",
    "Dubois",
    "Farah",
    "Novotna",
    "Kim",
    "Adeyemi",
    "Castillo",
    "Bergström",
    "Halloran",
];

const GENRES: &[&str] = &[
    "pop",
    "rock",
    "hip hop",
    "jazz",
    "electronic",
    "folk",
    "r&b",
    "metal",
];

const TITLE_WORDS: &[&str] = &[
    "Midnight", "Golden", "Echoes", "River", "Neon", "Silent", "Summer", "Broken", "Electric",
    "Wild", "Paper", "Crimson", "Hollow", "Dancing", "Fading", "Glass", "Thunder", "Velvet",
    "Lonely", "Rising", "Ocean", "Static", "Burning", "Frozen", "Distant",
];

/// Ground-truth artist.
#[derive(Clone, Debug)]
pub struct GroundArtist {
    /// Stable ground-truth key (shared across providers).
    pub key: usize,
    /// Canonical full name.
    pub name: String,
    /// Known aliases (nickname variants).
    pub aliases: Vec<String>,
    /// Primary genre.
    pub genre: String,
}

/// Ground-truth song.
#[derive(Clone, Debug)]
pub struct GroundSong {
    /// Stable ground-truth key.
    pub key: usize,
    /// Ground-truth key of the performing artist.
    pub artist_key: usize,
    /// Canonical title.
    pub title: String,
    /// Duration in seconds.
    pub duration: i64,
}

/// A versioned ground-truth music world.
#[derive(Clone, Debug)]
pub struct MusicWorld {
    /// Current artists.
    pub artists: Vec<GroundArtist>,
    /// Current songs.
    pub songs: Vec<GroundSong>,
    /// Version counter (bumped by [`evolve`](Self::evolve)).
    pub version: u64,
    rng: StdRng,
    next_artist_key: usize,
    next_song_key: usize,
}

fn make_name(rng: &mut StdRng) -> (String, Vec<String>) {
    let (first, nick) = NICKNAMES[rng.gen_range(0..NICKNAMES.len())];
    let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
    let name = format!("{first} {last}");
    let alias = format!("{nick} {last}");
    (name, vec![alias])
}

fn make_title(rng: &mut StdRng) -> String {
    let a = TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())];
    let b = TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())];
    if rng.gen_bool(0.3) {
        a.to_string()
    } else {
        format!("{a} {b}")
    }
}

/// Apply a realistic typo: swap, drop or double one character.
pub fn typo(rng: &mut StdRng, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 3 {
        return s.to_string();
    }
    let i = rng.gen_range(1..chars.len() - 1);
    let mut out = chars.clone();
    match rng.gen_range(0..3u8) {
        0 => out.swap(i, i - 1),
        1 => {
            out.remove(i);
        }
        _ => out.insert(i, chars[i]),
    }
    out.into_iter().collect()
}

impl MusicWorld {
    /// Generate a fresh world with `n_artists` artists and roughly
    /// `songs_per_artist` songs each.
    pub fn generate(seed: u64, n_artists: usize, songs_per_artist: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut artists = Vec::with_capacity(n_artists);
        let mut songs = Vec::new();
        let mut song_key = 0usize;
        let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
        for key in 0..n_artists {
            // Ground-truth artists are distinct people: redraw colliding
            // names, falling back to generational suffixes.
            let (mut name, mut aliases) = make_name(&mut rng);
            let mut attempt = 0;
            while !used.insert(name.clone()) {
                attempt += 1;
                let (base, base_aliases) = make_name(&mut rng);
                if attempt > 4 {
                    name = format!("{base} {attempt}");
                    aliases = base_aliases
                        .iter()
                        .map(|a| format!("{a} {attempt}"))
                        .collect();
                } else {
                    name = base;
                    aliases = base_aliases;
                }
            }
            let genre = GENRES[rng.gen_range(0..GENRES.len())].to_string();
            artists.push(GroundArtist {
                key,
                name,
                aliases,
                genre,
            });
            let n_songs = rng.gen_range(songs_per_artist.max(1) / 2..=songs_per_artist.max(1));
            for _ in 0..n_songs {
                songs.push(GroundSong {
                    key: song_key,
                    artist_key: key,
                    title: make_title(&mut rng),
                    duration: rng.gen_range(90..420),
                });
                song_key += 1;
            }
        }
        MusicWorld {
            artists,
            songs,
            version: 0,
            rng,
            next_artist_key: n_artists,
            next_song_key: song_key,
        }
    }

    /// Evolve the world one version: add `adds` artists (with songs), retitle
    /// a `update_rate` fraction of songs, delete a `delete_rate` fraction.
    pub fn evolve(&mut self, adds: usize, update_rate: f64, delete_rate: f64) {
        self.version += 1;
        // Deletes.
        let n_del = ((self.songs.len() as f64) * delete_rate) as usize;
        for _ in 0..n_del {
            if self.songs.is_empty() {
                break;
            }
            let idx = self.rng.gen_range(0..self.songs.len());
            self.songs.swap_remove(idx);
        }
        // Updates.
        let n_upd = ((self.songs.len() as f64) * update_rate) as usize;
        for _ in 0..n_upd {
            if self.songs.is_empty() {
                break;
            }
            let idx = self.rng.gen_range(0..self.songs.len());
            let t = make_title(&mut self.rng);
            self.songs[idx].title = t;
        }
        // Adds.
        for _ in 0..adds {
            let key = self.next_artist_key;
            self.next_artist_key += 1;
            let (name, aliases) = make_name(&mut self.rng);
            let genre = GENRES[self.rng.gen_range(0..GENRES.len())].to_string();
            self.artists.push(GroundArtist {
                key,
                name,
                aliases,
                genre,
            });
            let n_songs = self.rng.gen_range(1..=4);
            for _ in 0..n_songs {
                self.songs.push(GroundSong {
                    key: self.next_song_key,
                    artist_key: key,
                    title: make_title(&mut self.rng),
                    duration: self.rng.gen_range(90..420),
                });
                self.next_song_key += 1;
            }
        }
    }
}

/// How a provider distorts the ground truth it publishes.
#[derive(Clone, Debug)]
pub struct ProviderSpec {
    /// Seed for the provider's own noise.
    pub seed: u64,
    /// Id prefix (providers have their own namespaces).
    pub id_prefix: String,
    /// Fraction of ground-truth entities this provider covers.
    pub coverage: f64,
    /// Probability a published name carries a typo.
    pub typo_rate: f64,
    /// Probability the provider publishes the nickname alias instead of the
    /// canonical name.
    pub alias_rate: f64,
    /// Probability an entity is published twice under different local ids
    /// (in-source duplicates, §2.3).
    pub duplicate_rate: f64,
}

impl ProviderSpec {
    /// A clean, full-coverage provider.
    pub fn clean(seed: u64, id_prefix: &str) -> Self {
        ProviderSpec {
            seed,
            id_prefix: id_prefix.into(),
            coverage: 1.0,
            typo_rate: 0.0,
            alias_rate: 0.0,
            duplicate_rate: 0.0,
        }
    }

    /// A noisy, partial provider.
    pub fn noisy(seed: u64, id_prefix: &str) -> Self {
        ProviderSpec {
            seed,
            id_prefix: id_prefix.into(),
            coverage: 0.7,
            typo_rate: 0.15,
            alias_rate: 0.25,
            duplicate_rate: 0.05,
        }
    }
}

/// Datasets a music provider publishes: `(artists, songs, popularity)`.
///
/// * artists: `artist_id, artist_name, genre`
/// * songs: `song_id, title, artist, secs` (artist is a source-namespace ref)
/// * popularity: `artist_id, plays` (volatile enrichment artifact)
pub fn provider_datasets(world: &MusicWorld, spec: &ProviderSpec) -> (Dataset, Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ world.version.wrapping_mul(0x9E37_79B9));
    let mut artists = Dataset::with_schema(&["artist_id", "artist_name", "genre"]);
    let mut songs = Dataset::with_schema(&["song_id", "title", "artist", "secs"]);
    let mut pops = Dataset::with_schema(&["artist_id", "plays"]);

    let mut covered: Vec<&GroundArtist> = world
        .artists
        .iter()
        .filter(|_| rng.gen_bool(spec.coverage.clamp(0.0, 1.0)))
        .collect();
    covered.shuffle(&mut rng);

    let emit_name = |rng: &mut StdRng, a: &GroundArtist| -> String {
        let base = if rng.gen_bool(spec.alias_rate) && !a.aliases.is_empty() {
            a.aliases[0].clone()
        } else {
            a.name.clone()
        };
        if rng.gen_bool(spec.typo_rate) {
            typo(rng, &base)
        } else {
            base
        }
    };

    for a in &covered {
        let local = format!("{}a{}", spec.id_prefix, a.key);
        artists.push(vec![
            Value::str(&local),
            Value::str(emit_name(&mut rng, a)),
            Value::str(&a.genre),
        ]);
        pops.push(vec![
            Value::str(&local),
            Value::Int(rng.gen_range(0..1_000_000)),
        ]);
        if rng.gen_bool(spec.duplicate_rate) {
            let dup_local = format!("{}a{}dup", spec.id_prefix, a.key);
            artists.push(vec![
                Value::str(&dup_local),
                Value::str(emit_name(&mut rng, a)),
                Value::str(&a.genre),
            ]);
            pops.push(vec![
                Value::str(&dup_local),
                Value::Int(rng.gen_range(0..1_000_000)),
            ]);
        }
    }
    let covered_keys: std::collections::HashSet<usize> = covered.iter().map(|a| a.key).collect();
    for s in &world.songs {
        if !covered_keys.contains(&s.artist_key) {
            continue;
        }
        let local = format!("{}s{}", spec.id_prefix, s.key);
        let title = if rng.gen_bool(spec.typo_rate) {
            typo(&mut rng, &s.title)
        } else {
            s.title.clone()
        };
        songs.push(vec![
            Value::str(&local),
            Value::str(title),
            Value::str(format!("{}a{}", spec.id_prefix, s.artist_key)),
            Value::Int(s.duration),
        ]);
    }
    (artists, songs, pops)
}

/// Alignment config for a provider's artists artifact.
pub fn artist_alignment(trust: f32) -> AlignmentConfig {
    AlignmentConfig {
        entity_type: "music_artist".into(),
        id_column: "artist_id".into(),
        locale: Some("en".into()),
        trust,
        pgfs: vec![
            Pgf::Map {
                column: "artist_name".into(),
                predicate: "name".into(),
            },
            Pgf::Map {
                column: "genre".into(),
                predicate: "occupation".into(),
            },
            Pgf::Map {
                column: "plays".into(),
                predicate: "popularity".into(),
            },
        ],
    }
}

/// Alignment config for a provider's songs artifact.
pub fn song_alignment(trust: f32) -> AlignmentConfig {
    AlignmentConfig {
        entity_type: "song".into(),
        id_column: "song_id".into(),
        locale: Some("en".into()),
        trust,
        pgfs: vec![
            Pgf::Map {
                column: "title".into(),
                predicate: "name".into(),
            },
            Pgf::MapRef {
                column: "artist".into(),
                predicate: "performed_by".into(),
            },
            Pgf::Map {
                column: "secs".into(),
                predicate: "duration_s".into(),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_under_seed() {
        let w1 = MusicWorld::generate(42, 20, 4);
        let w2 = MusicWorld::generate(42, 20, 4);
        assert_eq!(w1.artists.len(), w2.artists.len());
        assert_eq!(w1.songs.len(), w2.songs.len());
        assert_eq!(w1.artists[5].name, w2.artists[5].name);
        let w3 = MusicWorld::generate(43, 20, 4);
        assert!(
            w1.artists
                .iter()
                .zip(&w3.artists)
                .any(|(a, b)| a.name != b.name),
            "different seeds give different worlds"
        );
    }

    #[test]
    fn every_artist_has_a_nickname_alias() {
        let w = MusicWorld::generate(1, 10, 2);
        for a in &w.artists {
            assert_eq!(a.aliases.len(), 1);
            assert_ne!(a.aliases[0], a.name);
            // Alias shares the surname.
            let last = a.name.split(' ').next_back().unwrap();
            assert!(a.aliases[0].ends_with(last));
        }
    }

    #[test]
    fn evolve_changes_version_and_content() {
        let mut w = MusicWorld::generate(7, 30, 3);
        let before_songs = w.songs.len();
        let before_artists = w.artists.len();
        w.evolve(5, 0.1, 0.1);
        assert_eq!(w.version, 1);
        assert_eq!(w.artists.len(), before_artists + 5);
        assert!(w.songs.len() != before_songs || w.songs.len() == before_songs); // size changed by adds/deletes
                                                                                 // Keys keep increasing — no reuse.
        let max_key = w.artists.iter().map(|a| a.key).max().unwrap();
        assert_eq!(max_key, before_artists + 5 - 1);
    }

    #[test]
    fn clean_provider_publishes_exact_names() {
        let w = MusicWorld::generate(5, 15, 2);
        let (artists, songs, pops) = provider_datasets(&w, &ProviderSpec::clean(9, "p1_"));
        assert_eq!(artists.len(), 15, "full coverage, no duplicates");
        assert_eq!(pops.len(), 15);
        assert!(!songs.is_empty());
        let names: Vec<&str> = artists
            .iter()
            .map(|r| r.get("artist_name").unwrap().as_str().unwrap())
            .collect();
        for a in &w.artists {
            assert!(names.contains(&a.name.as_str()));
        }
    }

    #[test]
    fn noisy_provider_distorts_and_duplicates() {
        let w = MusicWorld::generate(5, 200, 2);
        let (artists, _, _) = provider_datasets(&w, &ProviderSpec::noisy(11, "p2_"));
        // Coverage strictly below 1 plus some duplicates: row count differs from 200.
        assert!(artists.len() < 220);
        assert!(artists.len() > 100);
        let dup_rows = artists.iter().filter(|r| {
            r.get("artist_id")
                .unwrap()
                .as_str()
                .unwrap()
                .ends_with("dup")
        });
        assert!(
            dup_rows.count() > 0,
            "in-source duplicates exist at this size"
        );
    }

    #[test]
    fn typo_changes_but_preserves_length_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = "Billie Eilish";
        let mut changed = 0;
        for _ in 0..20 {
            let t = typo(&mut rng, s);
            if t != s {
                changed += 1;
            }
            assert!((t.len() as i64 - s.len() as i64).abs() <= 1);
        }
        assert!(changed > 10);
    }

    #[test]
    fn provider_output_is_deterministic() {
        let w = MusicWorld::generate(5, 50, 2);
        let spec = ProviderSpec::noisy(11, "p_");
        let (a1, s1, _) = provider_datasets(&w, &spec);
        let (a2, s2, _) = provider_datasets(&w, &spec);
        assert_eq!(a1.len(), a2.len());
        assert_eq!(s1.len(), s2.len());
        for i in 0..a1.len() {
            assert_eq!(a1.row(i).get("artist_name"), a2.row(i).get("artist_name"));
        }
    }
}
