//! The end-to-end source ingestion pipeline (Fig. 3).
//!
//! One [`SourceIngestionPipeline`] instance exists per onboarded provider.
//! Each run executes Import → Entity Transform → Ontology Alignment →
//! Delta Computation → Export, maintaining the last-consumed snapshot so
//! diffs are eager (§2.2). The exported [`SourceDelta`] is exactly what the
//! knowledge-construction pipeline consumes.

use saga_core::{Dataset, FxHashSet, Result, SourceId, Symbol};
use saga_ontology::{validate_payload, Ontology};

use crate::align::AlignmentConfig;
use crate::delta::{compute_delta, SourceDelta, SourceSnapshot};
use crate::transform::DataTransformer;

/// Summary of one ingestion run, for observability and tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IngestionReport {
    /// Rows produced by the entity-transform stage.
    pub transformed_rows: usize,
    /// Payloads that passed ontology validation.
    pub aligned_entities: usize,
    /// Payloads dropped because of ontology violations.
    pub rejected_entities: usize,
    /// Total individual violations across rejected payloads.
    pub violations: usize,
    /// Added / Updated / Deleted partition sizes.
    pub added: usize,
    /// Updated partition size.
    pub updated: usize,
    /// Deleted partition size.
    pub deleted: usize,
    /// Volatile triples in the full dump.
    pub volatile_facts: usize,
}

/// A configured, stateful ingestion pipeline for one data source.
pub struct SourceIngestionPipeline {
    source: SourceId,
    name: String,
    transformer: DataTransformer,
    alignment: AlignmentConfig,
    previous: SourceSnapshot,
}

impl SourceIngestionPipeline {
    /// Assemble a pipeline for `source`.
    pub fn new(
        source: SourceId,
        name: impl Into<String>,
        transformer: DataTransformer,
        alignment: AlignmentConfig,
    ) -> Self {
        SourceIngestionPipeline {
            source,
            name: name.into(),
            transformer,
            alignment,
            previous: SourceSnapshot::empty(),
        }
    }

    /// The provider's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source id this pipeline feeds.
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// The snapshot consumed by the KG so far.
    pub fn last_snapshot(&self) -> &SourceSnapshot {
        &self.previous
    }

    /// Run one ingestion over freshly imported artifacts.
    ///
    /// `artifacts[0]` is the provider's primary dataset (see
    /// [`TransformSpec`](crate::transform::TransformSpec) for joins). The
    /// volatile predicate set comes from the ontology.
    pub fn ingest(
        &mut self,
        ontology: &Ontology,
        artifacts: &[Dataset],
    ) -> Result<(SourceDelta, IngestionReport)> {
        let volatile: FxHashSet<Symbol> = ontology.volatile_predicates();
        let entity_rows = self.transformer.transform(artifacts)?;

        let mut report = IngestionReport {
            transformed_rows: entity_rows.len(),
            ..Default::default()
        };
        let mut payloads = Vec::with_capacity(entity_rows.len());
        for row in entity_rows.iter() {
            let payload = self.alignment.align_row(ontology, self.source, row)?;
            let violations = validate_payload(ontology, &payload);
            if violations.is_empty() {
                payloads.push(payload);
                report.aligned_entities += 1;
            } else {
                report.rejected_entities += 1;
                report.violations += violations.len();
            }
        }

        let current = SourceSnapshot::from_payloads(payloads);
        let delta = compute_delta(&self.previous, &current, &volatile);
        report.added = delta.added.len();
        report.updated = delta.updated.len();
        report.deleted = delta.deleted.len();
        report.volatile_facts = delta.volatile.len();
        self.previous = current;
        Ok((delta, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::Pgf;
    use crate::transform::TransformSpec;
    use saga_core::Value;
    use saga_ontology::default_ontology;

    fn songs(v: &[(&str, &str, i64, i64)]) -> Dataset {
        let mut d = Dataset::with_schema(&["id", "title", "secs", "plays"]);
        for (id, title, secs, plays) in v {
            d.push(vec![
                Value::str(*id),
                Value::str(*title),
                Value::Int(*secs),
                Value::Int(*plays),
            ]);
        }
        d
    }

    fn pipeline() -> SourceIngestionPipeline {
        let alignment = AlignmentConfig {
            entity_type: "song".into(),
            id_column: "id".into(),
            locale: Some("en".into()),
            trust: 0.9,
            pgfs: vec![
                Pgf::Map {
                    column: "title".into(),
                    predicate: "name".into(),
                },
                Pgf::Map {
                    column: "secs".into(),
                    predicate: "duration_s".into(),
                },
                Pgf::Map {
                    column: "plays".into(),
                    predicate: "popularity".into(),
                },
            ],
        };
        SourceIngestionPipeline::new(
            SourceId(7),
            "acme-music",
            DataTransformer::new(TransformSpec::simple("id")),
            alignment,
        )
    }

    #[test]
    fn first_run_emits_full_added_payload() {
        let ont = default_ontology();
        let mut p = pipeline();
        let (delta, report) = p
            .ingest(
                &ont,
                &[songs(&[
                    ("s1", "Bad Guy", 194, 10),
                    ("s2", "Halo", 261, 20),
                ])],
            )
            .unwrap();
        assert_eq!(report.transformed_rows, 2);
        assert_eq!(report.aligned_entities, 2);
        assert_eq!(report.added, 2);
        assert_eq!(report.volatile_facts, 2);
        assert_eq!(delta.added.len(), 2);
        assert_eq!(p.last_snapshot().len(), 2);
    }

    #[test]
    fn second_run_emits_only_diffs() {
        let ont = default_ontology();
        let mut p = pipeline();
        p.ingest(
            &ont,
            &[songs(&[
                ("s1", "Bad Guy", 194, 10),
                ("s2", "Halo", 261, 20),
            ])],
        )
        .unwrap();
        // s1 retitled, s2 removed, s3 added; plays churn everywhere.
        let (delta, report) = p
            .ingest(
                &ont,
                &[songs(&[
                    ("s1", "bad guy", 194, 999),
                    ("s3", "Lush", 200, 5),
                ])],
            )
            .unwrap();
        assert_eq!(report.added, 1);
        assert_eq!(report.updated, 1);
        assert_eq!(report.deleted, 1);
        assert_eq!(delta.deleted, vec!["s2".to_string()]);
        assert_eq!(delta.updated[0].name(), Some("bad guy"));
        assert_eq!(delta.added[0].name(), Some("Lush"));
    }

    #[test]
    fn invalid_payloads_are_rejected_with_violation_counts() {
        let ont = default_ontology();
        // `secs` mapped to a string-typed predicate to force a kind mismatch.
        let alignment = AlignmentConfig {
            entity_type: "song".into(),
            id_column: "id".into(),
            locale: None,
            trust: 0.9,
            pgfs: vec![
                Pgf::Map {
                    column: "title".into(),
                    predicate: "name".into(),
                },
                Pgf::Map {
                    column: "title".into(),
                    predicate: "name".into(),
                }, // cardinality 2x
            ],
        };
        let mut p = SourceIngestionPipeline::new(
            SourceId(7),
            "bad-source",
            DataTransformer::new(TransformSpec::simple("id")),
            alignment,
        );
        let (delta, report) = p
            .ingest(&ont, &[songs(&[("s1", "Bad Guy", 1, 1)])])
            .unwrap();
        assert_eq!(report.rejected_entities, 1);
        assert!(report.violations >= 1);
        assert!(delta.added.is_empty());
    }

    #[test]
    fn volatile_only_change_keeps_stable_partitions_empty() {
        let ont = default_ontology();
        let mut p = pipeline();
        p.ingest(&ont, &[songs(&[("s1", "Bad Guy", 194, 10)])])
            .unwrap();
        let (delta, report) = p
            .ingest(&ont, &[songs(&[("s1", "Bad Guy", 194, 777)])])
            .unwrap();
        assert!(delta.is_stable_noop());
        assert_eq!(report.volatile_facts, 1);
        assert_eq!(delta.volatile[0].object, Value::Int(777));
    }
}
