//! Eager delta computation (§2.2 "Delta Computation", §2.4).
//!
//! When an upstream provider publishes a new version, the difference against
//! the snapshot already consumed by the KG is computed and materialized
//! immediately so that knowledge construction only ever consumes diffs.
//!
//! For a source last consumed at `t0` and currently at `tn`, entities are
//! split into:
//!
//! * **Added** — exist at `tn` but not `t0`;
//! * **Deleted** — exist at `t0` but not `tn`;
//! * **Updated** — exist at both and differ at `tn` (volatile predicates
//!   excluded from the comparison);
//! * plus a separate **full volatile dump** of volatile predicates of *all*
//!   entities, so high-churn values (popularity…) never pollute the deltas.

use saga_core::{EntityPayload, ExtendedTriple, FxHashMap, FxHashSet, Symbol};

/// A consumed snapshot of a source: payloads keyed by source-local id.
#[derive(Clone, Debug, Default)]
pub struct SourceSnapshot {
    entities: FxHashMap<String, EntityPayload>,
}

impl SourceSnapshot {
    /// An empty snapshot (a source never consumed before).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build a snapshot from aligned payloads.
    ///
    /// # Panics
    /// Panics if a payload has no source-local id (already linked payloads
    /// cannot be snapshotted).
    pub fn from_payloads(payloads: impl IntoIterator<Item = EntityPayload>) -> Self {
        let mut entities = FxHashMap::default();
        for p in payloads {
            let id = p
                .local_id()
                .expect("snapshot payloads must be unlinked")
                .to_string();
            entities.insert(id, p);
        }
        SourceSnapshot { entities }
    }

    /// Number of entities in the snapshot.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True if no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Look up a payload by local id.
    pub fn get(&self, local_id: &str) -> Option<&EntityPayload> {
        self.entities.get(local_id)
    }

    /// Iterate `(local id, payload)`.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &EntityPayload)> {
        self.entities.iter()
    }
}

/// The partitioned dump handed to knowledge construction.
#[derive(Clone, Debug, Default)]
pub struct SourceDelta {
    /// Entities new at `tn`: need the full linking pipeline.
    pub added: Vec<EntityPayload>,
    /// Entities changed at `tn`: previously linked, id-lookup fast path.
    pub updated: Vec<EntityPayload>,
    /// Local ids of entities removed at `tn`.
    pub deleted: Vec<String>,
    /// Full dump of volatile-predicate triples for *all* current entities
    /// (the `ToFuse` payload of Fig. 5).
    pub volatile: Vec<ExtendedTriple>,
}

impl SourceDelta {
    /// Total number of stable-entity changes.
    pub fn change_count(&self) -> usize {
        self.added.len() + self.updated.len() + self.deleted.len()
    }

    /// True if nothing changed (volatile dump may still be non-empty).
    pub fn is_stable_noop(&self) -> bool {
        self.change_count() == 0
    }
}

/// Strip volatile triples out of a payload, returning `(stable, volatile)`.
fn split_volatile(
    payload: &EntityPayload,
    volatile: &FxHashSet<Symbol>,
) -> (EntityPayload, Vec<ExtendedTriple>) {
    let mut stable = payload.clone();
    let mut vol = Vec::new();
    stable.triples.retain(|t| {
        if volatile.contains(&t.predicate) {
            vol.push(t.clone());
            false
        } else {
            true
        }
    });
    (stable, vol)
}

/// Triple multiset equality ignoring order (sources rarely guarantee row
/// order across versions).
fn same_facts(a: &EntityPayload, b: &EntityPayload) -> bool {
    if a.triples.len() != b.triples.len() || a.entity_type != b.entity_type {
        return false;
    }
    let mut remaining: Vec<&ExtendedTriple> = b.triples.iter().collect();
    for t in &a.triples {
        match remaining
            .iter()
            .position(|r| r.predicate == t.predicate && r.rel == t.rel && r.object == t.object)
        {
            Some(i) => {
                remaining.swap_remove(i);
            }
            None => return false,
        }
    }
    true
}

/// Compute the Added/Updated/Deleted/volatile partitions between the last
/// consumed snapshot and the current one.
pub fn compute_delta(
    previous: &SourceSnapshot,
    current: &SourceSnapshot,
    volatile_predicates: &FxHashSet<Symbol>,
) -> SourceDelta {
    let mut delta = SourceDelta::default();
    for (id, cur) in current.iter() {
        let (stable_cur, vol) = split_volatile(cur, volatile_predicates);
        delta.volatile.extend(vol);
        match previous.get(id) {
            None => delta.added.push(stable_cur),
            Some(prev) => {
                let (stable_prev, _) = split_volatile(prev, volatile_predicates);
                if !same_facts(&stable_cur, &stable_prev) {
                    delta.updated.push(stable_cur);
                }
            }
        }
    }
    for (id, _) in previous.iter() {
        if current.get(id).is_none() {
            delta.deleted.push(id.clone());
        }
    }
    delta.deleted.sort_unstable();
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_core::{intern, FactMeta, SourceId, Value};

    fn payload(id: &str, name: &str, pop: i64) -> EntityPayload {
        let mut p = EntityPayload::new(SourceId(1), id, intern("song"));
        let meta = FactMeta::from_source(SourceId(1), 0.9);
        p.push_simple(intern("name"), Value::str(name), meta.clone());
        p.push_simple(intern("popularity"), Value::Int(pop), meta);
        p
    }

    fn volatile() -> FxHashSet<Symbol> {
        let mut s = FxHashSet::default();
        s.insert(intern("popularity"));
        s
    }

    #[test]
    fn first_consumption_is_all_added() {
        let cur = SourceSnapshot::from_payloads(vec![payload("s1", "A", 5), payload("s2", "B", 6)]);
        let d = compute_delta(&SourceSnapshot::empty(), &cur, &volatile());
        assert_eq!(d.added.len(), 2);
        assert!(d.updated.is_empty());
        assert!(d.deleted.is_empty());
        assert_eq!(
            d.volatile.len(),
            2,
            "popularity of every entity in the volatile dump"
        );
        // Added payloads carry no volatile triples.
        assert!(d
            .added
            .iter()
            .all(|p| p.values(intern("popularity")).is_empty()));
    }

    #[test]
    fn unchanged_entities_produce_no_delta() {
        let prev = SourceSnapshot::from_payloads(vec![payload("s1", "A", 5)]);
        let cur = SourceSnapshot::from_payloads(vec![payload("s1", "A", 5)]);
        let d = compute_delta(&prev, &cur, &volatile());
        assert!(d.is_stable_noop());
        assert_eq!(d.volatile.len(), 1);
    }

    #[test]
    fn volatile_churn_does_not_count_as_update() {
        let prev = SourceSnapshot::from_payloads(vec![payload("s1", "A", 5)]);
        let cur = SourceSnapshot::from_payloads(vec![payload("s1", "A", 99_999)]);
        let d = compute_delta(&prev, &cur, &volatile());
        assert!(
            d.updated.is_empty(),
            "popularity churn is factored out of deltas"
        );
        assert_eq!(d.volatile.len(), 1);
        assert_eq!(d.volatile[0].object, Value::Int(99_999));
    }

    #[test]
    fn stable_change_is_an_update() {
        let prev = SourceSnapshot::from_payloads(vec![payload("s1", "A", 5)]);
        let cur = SourceSnapshot::from_payloads(vec![payload("s1", "A (Remix)", 5)]);
        let d = compute_delta(&prev, &cur, &volatile());
        assert_eq!(d.updated.len(), 1);
        assert_eq!(d.updated[0].name(), Some("A (Remix)"));
    }

    #[test]
    fn removed_entities_are_deleted() {
        let prev =
            SourceSnapshot::from_payloads(vec![payload("s1", "A", 5), payload("s2", "B", 6)]);
        let cur = SourceSnapshot::from_payloads(vec![payload("s2", "B", 6)]);
        let d = compute_delta(&prev, &cur, &volatile());
        assert_eq!(d.deleted, vec!["s1".to_string()]);
        assert!(d.added.is_empty());
    }

    #[test]
    fn fact_order_does_not_matter() {
        let mut a = EntityPayload::new(SourceId(1), "x", intern("song"));
        let meta = FactMeta::from_source(SourceId(1), 0.9);
        a.push_simple(intern("name"), Value::str("N"), meta.clone());
        a.push_simple(intern("genre"), Value::str("pop"), meta.clone());
        let mut b = EntityPayload::new(SourceId(1), "x", intern("song"));
        b.push_simple(intern("genre"), Value::str("pop"), meta.clone());
        b.push_simple(intern("name"), Value::str("N"), meta);
        let prev = SourceSnapshot::from_payloads(vec![a]);
        let cur = SourceSnapshot::from_payloads(vec![b]);
        let d = compute_delta(&prev, &cur, &volatile());
        assert!(d.is_stable_noop());
    }

    #[test]
    fn duplicate_facts_are_multiset_compared() {
        let meta = FactMeta::from_source(SourceId(1), 0.9);
        let mut two = EntityPayload::new(SourceId(1), "x", intern("song"));
        two.push_simple(intern("genre"), Value::str("pop"), meta.clone());
        two.push_simple(intern("genre"), Value::str("pop"), meta.clone());
        let mut one = EntityPayload::new(SourceId(1), "x", intern("song"));
        one.push_simple(intern("genre"), Value::str("pop"), meta);
        let d = compute_delta(
            &SourceSnapshot::from_payloads(vec![two]),
            &SourceSnapshot::from_payloads(vec![one]),
            &volatile(),
        );
        assert_eq!(d.updated.len(), 1, "losing a duplicate fact is a change");
    }
}
