//! Entity transform: entity-centric views plus the §2.2 integrity checks.
//!
//! The transformer consumes the importers' uniform row representation and
//! produces one row per source entity. It "does not add any new predicates"
//! but may join multiple artifacts (e.g. raw artist info ⋈ artist
//! popularity) and enforces these data integrity checks:
//!
//! * entity IDs are unique across all entities produced;
//! * each entity has a (non-null) ID predicate;
//! * predicate (column) names are non-empty;
//! * every predicate in the source schema is present in the produced entity
//!   (rectangularity — guaranteed structurally by [`Dataset`]);
//! * predicate names are unique within the source entity.

use saga_core::{Dataset, FxHashSet, Result, SagaError, Value};

/// Declarative description of the transform stage for one source.
#[derive(Clone, Debug)]
pub struct TransformSpec {
    /// Column holding the source-local entity id.
    pub id_column: String,
    /// Joins to enrich the primary artifact: `(artifact index, left column,
    /// right column)`. Artifact 0 is the primary; joins apply in order.
    pub joins: Vec<(usize, String, String)>,
}

impl TransformSpec {
    /// A transform over a single artifact with id column `id_column`.
    pub fn simple(id_column: impl Into<String>) -> Self {
        TransformSpec {
            id_column: id_column.into(),
            joins: Vec::new(),
        }
    }

    /// Add an enrichment join against artifact `artifact_idx`.
    #[must_use]
    pub fn join(
        mut self,
        artifact_idx: usize,
        left_col: impl Into<String>,
        right_col: impl Into<String>,
    ) -> Self {
        self.joins
            .push((artifact_idx, left_col.into(), right_col.into()));
        self
    }
}

/// The entity-transform stage.
pub struct DataTransformer {
    spec: TransformSpec,
}

impl DataTransformer {
    /// Build a transformer from its spec.
    pub fn new(spec: TransformSpec) -> Self {
        DataTransformer { spec }
    }

    /// Produce the entity-centric view from imported artifacts.
    ///
    /// `artifacts[0]` is the primary dataset; others are joined per the
    /// spec. Fails if any integrity check is violated.
    pub fn transform(&self, artifacts: &[Dataset]) -> Result<Dataset> {
        let primary = artifacts
            .first()
            .ok_or_else(|| SagaError::Integrity("no artifacts supplied".into()))?;
        let mut current = primary.clone();
        for (idx, left, right) in &self.spec.joins {
            let other = artifacts.get(*idx).ok_or_else(|| {
                SagaError::Integrity(format!("join references missing artifact {idx}"))
            })?;
            if !current.schema().iter().any(|c| c == left) {
                return Err(SagaError::Integrity(format!(
                    "join column {left} missing on left"
                )));
            }
            if !other.schema().iter().any(|c| c == right) {
                return Err(SagaError::Integrity(format!(
                    "join column {right} missing on right"
                )));
            }
            current = current.hash_join(other, left, right);
        }
        self.check_integrity(&current)?;
        Ok(current)
    }

    fn check_integrity(&self, ds: &Dataset) -> Result<()> {
        // Predicate (column) names must be non-empty and unique.
        let mut seen: FxHashSet<&str> = FxHashSet::default();
        for col in ds.schema() {
            if col.is_empty() {
                return Err(SagaError::Integrity(
                    "empty predicate name in schema".into(),
                ));
            }
            if !seen.insert(col) {
                return Err(SagaError::Integrity(format!(
                    "duplicate predicate name: {col}"
                )));
            }
        }
        // The ID predicate must exist in the schema.
        if !ds.schema().iter().any(|c| c == &self.spec.id_column) {
            return Err(SagaError::Integrity(format!(
                "id predicate {} missing from schema",
                self.spec.id_column
            )));
        }
        // Every entity must have a unique non-null id.
        let mut ids: FxHashSet<String> = FxHashSet::default();
        for (i, row) in ds.iter().enumerate() {
            let id = row.get(&self.spec.id_column).expect("checked above");
            let id_str = match id {
                Value::Str(s) => s.to_string(),
                Value::Int(n) => n.to_string(),
                Value::Null => {
                    return Err(SagaError::Integrity(format!("row {i}: null entity id")))
                }
                other => other.render(),
            };
            if !ids.insert(id_str.clone()) {
                return Err(SagaError::Integrity(format!(
                    "duplicate entity id: {id_str}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artists() -> Dataset {
        let mut d = Dataset::with_schema(&["id", "name"]);
        d.push(vec![Value::str("a1"), Value::str("Billie Eilish")]);
        d.push(vec![Value::str("a2"), Value::str("Jay-Z")]);
        d
    }

    fn plays() -> Dataset {
        let mut d = Dataset::with_schema(&["artist", "plays"]);
        d.push(vec![Value::str("a1"), Value::Int(10)]);
        d.push(vec![Value::str("a2"), Value::Int(20)]);
        d
    }

    #[test]
    fn simple_transform_passes_through() {
        let t = DataTransformer::new(TransformSpec::simple("id"));
        let out = t.transform(&[artists()]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema(), &["id", "name"]);
    }

    #[test]
    fn join_enriches_entities() {
        let t = DataTransformer::new(TransformSpec::simple("id").join(1, "id", "artist"));
        let out = t.transform(&[artists(), plays()]).unwrap();
        assert_eq!(out.schema(), &["id", "name", "plays"]);
        assert_eq!(out.row(0).get("plays").unwrap().as_int(), Some(10));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut d = artists();
        d.push(vec![Value::str("a1"), Value::str("Imposter")]);
        let t = DataTransformer::new(TransformSpec::simple("id"));
        let err = t.transform(&[d]).unwrap_err();
        assert!(err.to_string().contains("duplicate entity id"));
    }

    #[test]
    fn null_id_rejected() {
        let mut d = Dataset::with_schema(&["id", "name"]);
        d.push(vec![Value::Null, Value::str("ghost")]);
        let t = DataTransformer::new(TransformSpec::simple("id"));
        assert!(t.transform(&[d]).is_err());
    }

    #[test]
    fn missing_id_column_rejected() {
        let t = DataTransformer::new(TransformSpec::simple("uuid"));
        assert!(t.transform(&[artists()]).is_err());
    }

    #[test]
    fn empty_or_duplicate_predicate_names_rejected() {
        let empty_col = Dataset::with_schema(&["id", ""]);
        let t = DataTransformer::new(TransformSpec::simple("id"));
        assert!(t.transform(&[empty_col]).is_err());
        // Duplicate columns can only arise via joins that duplicate a name.
        let mut left = Dataset::with_schema(&["id", "name"]);
        left.push(vec![Value::str("a"), Value::str("x")]);
        let mut right = Dataset::with_schema(&["rid", "name"]);
        right.push(vec![Value::str("a"), Value::str("y")]);
        let tj = DataTransformer::new(TransformSpec::simple("id").join(1, "id", "rid"));
        let err = tj.transform(&[left, right]).unwrap_err();
        assert!(err.to_string().contains("duplicate predicate name"));
    }

    #[test]
    fn join_against_missing_artifact_or_column_fails() {
        let t = DataTransformer::new(TransformSpec::simple("id").join(3, "id", "x"));
        assert!(t.transform(&[artists()]).is_err());
        let t2 = DataTransformer::new(TransformSpec::simple("id").join(1, "nope", "artist"));
        assert!(t2.transform(&[artists(), plays()]).is_err());
    }

    #[test]
    fn integer_ids_are_stringified_for_uniqueness() {
        let mut d = Dataset::with_schema(&["id", "v"]);
        d.push(vec![Value::Int(1), Value::str("a")]);
        d.push(vec![Value::Int(2), Value::str("b")]);
        let t = DataTransformer::new(TransformSpec::simple("id"));
        assert!(t.transform(&[d]).is_ok());
    }
}
