//! Data source importers.
//!
//! An importer "reads upstream data artifacts and converts them into a
//! standard row-based dataset format" (§2.2), normalizing upstream
//! heterogeneity for the rest of the pipeline. Saga ships importer
//! templates; here we provide the three the examples and benchmarks need:
//! CSV, JSON-lines, and in-memory datasets.

use saga_core::json::Json;
use saga_core::{Dataset, Result, SagaError, Value};

/// A pluggable importer producing the uniform row-based representation.
pub trait DataSourceImporter {
    /// Read the upstream artifact into a dataset.
    fn import(&self) -> Result<Dataset>;
    /// Human-readable name used in ingestion reports.
    fn name(&self) -> &str;
}

/// Imports CSV text. The first record is the header. Supports quoted fields
/// with embedded commas/newlines and `""` escapes (RFC 4180 subset).
/// All cells import as strings; typing happens during ontology alignment.
pub struct CsvImporter {
    name: String,
    text: String,
}

impl CsvImporter {
    /// Importer over CSV `text`.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        CsvImporter {
            name: name.into(),
            text: text.into(),
        }
    }

    fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
        let mut records = Vec::new();
        let mut record: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut chars = text.chars().peekable();
        let mut in_quotes = false;
        let mut any = false;
        while let Some(c) = chars.next() {
            any = true;
            if in_quotes {
                match c {
                    '"' => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            in_quotes = false;
                        }
                    }
                    _ => field.push(c),
                }
            } else {
                match c {
                    '"' => in_quotes = true,
                    ',' => {
                        record.push(std::mem::take(&mut field));
                    }
                    '\r' => {}
                    '\n' => {
                        record.push(std::mem::take(&mut field));
                        records.push(std::mem::take(&mut record));
                    }
                    _ => field.push(c),
                }
            }
        }
        if in_quotes {
            return Err(SagaError::Import("unterminated quoted field".into()));
        }
        if any && (!field.is_empty() || !record.is_empty()) {
            record.push(field);
            records.push(record);
        }
        Ok(records)
    }
}

impl DataSourceImporter for CsvImporter {
    fn import(&self) -> Result<Dataset> {
        let records = Self::parse_records(&self.text)?;
        let Some((header, rows)) = records.split_first() else {
            return Err(SagaError::Import(format!(
                "{}: empty CSV artifact",
                self.name
            )));
        };
        let cols: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut ds = Dataset::with_schema(&cols);
        for (i, rec) in rows.iter().enumerate() {
            if rec.len() != cols.len() {
                return Err(SagaError::Import(format!(
                    "{}: row {} has {} fields, header has {}",
                    self.name,
                    i + 1,
                    rec.len(),
                    cols.len()
                )));
            }
            ds.push(
                rec.iter()
                    .map(|f| {
                        if f.is_empty() {
                            Value::Null
                        } else {
                            Value::str(f)
                        }
                    })
                    .collect(),
            );
        }
        Ok(ds)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Imports JSON-lines text: one JSON object per line. The schema is the
/// union of keys across all objects (missing keys become `Null`); keys are
/// in first-seen order, with each object's keys visited alphabetically.
/// Numbers, booleans and strings map to the corresponding [`Value`] variants.
pub struct JsonLinesImporter {
    name: String,
    text: String,
}

impl JsonLinesImporter {
    /// Importer over JSON-lines `text`.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        JsonLinesImporter {
            name: name.into(),
            text: text.into(),
        }
    }

    fn to_value(v: &Json) -> Value {
        match v {
            Json::Null => Value::Null,
            Json::Bool(b) => Value::Bool(*b),
            Json::Int(i) => Value::Int(*i),
            Json::Float(f) => Value::Float(*f),
            Json::Str(s) => Value::str(s),
            // Arrays flatten to a pipe-joined string; alignment's Split PGF
            // can re-explode them into multi-valued predicates.
            Json::Array(items) => {
                let parts: Vec<String> = items
                    .iter()
                    .map(|i| match i {
                        Json::Str(s) => s.clone(),
                        other => other.to_string(),
                    })
                    .collect();
                Value::str(parts.join("|"))
            }
            Json::Object(_) => Value::str(v.to_string()),
        }
    }
}

impl DataSourceImporter for JsonLinesImporter {
    fn import(&self) -> Result<Dataset> {
        let mut objects: Vec<std::collections::BTreeMap<String, Json>> = Vec::new();
        for (i, line) in self.text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let parsed = saga_core::json::parse(line)
                .map_err(|e| SagaError::Import(format!("{}: line {}: {}", self.name, i + 1, e)))?;
            match parsed {
                Json::Object(map) => objects.push(map),
                _ => {
                    return Err(SagaError::Import(format!(
                        "{}: line {} is not a JSON object",
                        self.name,
                        i + 1
                    )))
                }
            }
        }
        // Stable union schema: first-seen order.
        let mut columns: Vec<String> = Vec::new();
        for obj in &objects {
            for key in obj.keys() {
                if !columns.iter().any(|c| c == key) {
                    columns.push(key.clone());
                }
            }
        }
        let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
        let mut ds = Dataset::with_schema(&cols);
        for obj in &objects {
            ds.push(
                columns
                    .iter()
                    .map(|c| obj.get(c).map(Self::to_value).unwrap_or(Value::Null))
                    .collect(),
            );
        }
        Ok(ds)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Wraps an already-materialized dataset (used by synthetic generators and
/// by tests).
pub struct MemoryImporter {
    name: String,
    dataset: Dataset,
}

impl MemoryImporter {
    /// Importer over an in-memory dataset.
    pub fn new(name: impl Into<String>, dataset: Dataset) -> Self {
        MemoryImporter {
            name: name.into(),
            dataset,
        }
    }
}

impl DataSourceImporter for MemoryImporter {
    fn import(&self) -> Result<Dataset> {
        Ok(self.dataset.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_basic_header_and_rows() {
        let csv = "id,name,plays\na1,Billie Eilish,1000\na2,Jay-Z,2000\n";
        let ds = CsvImporter::new("music", csv).import().unwrap();
        assert_eq!(ds.schema(), &["id", "name", "plays"]);
        assert_eq!(ds.len(), 2);
        assert_eq!(
            ds.row(0).get("name").unwrap().as_str(),
            Some("Billie Eilish")
        );
    }

    #[test]
    fn csv_quoted_fields_with_commas_and_escapes() {
        let csv = "id,name\n1,\"Crosby, Stills \"\"and\"\" Nash\"\n";
        let ds = CsvImporter::new("t", csv).import().unwrap();
        assert_eq!(
            ds.row(0).get("name").unwrap().as_str(),
            Some("Crosby, Stills \"and\" Nash")
        );
    }

    #[test]
    fn csv_empty_cell_becomes_null_and_missing_newline_ok() {
        let csv = "id,name\n1,";
        let ds = CsvImporter::new("t", csv).import().unwrap();
        assert_eq!(ds.len(), 1);
        assert!(ds.row(0).get("name").unwrap().is_null());
    }

    #[test]
    fn csv_errors() {
        assert!(CsvImporter::new("t", "").import().is_err());
        assert!(
            CsvImporter::new("t", "a,b\n1\n").import().is_err(),
            "ragged row"
        );
        assert!(CsvImporter::new("t", "a\n\"unterminated").import().is_err());
    }

    #[test]
    fn jsonl_union_schema_and_typing() {
        let text = r#"{"id":"s1","title":"Bad Guy","secs":194}
{"id":"s2","title":"Halo","feat":true}"#;
        let ds = JsonLinesImporter::new("songs", text).import().unwrap();
        assert_eq!(ds.schema(), &["id", "secs", "title", "feat"]);
        assert_eq!(ds.row(0).get("secs").unwrap().as_int(), Some(194));
        assert!(ds.row(0).get("feat").unwrap().is_null());
        assert_eq!(ds.row(1).get("feat").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn jsonl_arrays_flatten_with_pipe() {
        let text = r#"{"id":"a","genres":["pop","dark pop"]}"#;
        let ds = JsonLinesImporter::new("g", text).import().unwrap();
        assert_eq!(
            ds.row(0).get("genres").unwrap().as_str(),
            Some("pop|dark pop")
        );
    }

    #[test]
    fn jsonl_rejects_non_objects_and_bad_json() {
        assert!(JsonLinesImporter::new("t", "[1,2]").import().is_err());
        assert!(JsonLinesImporter::new("t", "{oops").import().is_err());
        // blank lines are fine
        let ds = JsonLinesImporter::new("t", "\n{\"a\":1}\n\n")
            .import()
            .unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn memory_importer_roundtrips() {
        let mut d = Dataset::with_schema(&["x"]);
        d.push(vec![Value::Int(1)]);
        let ds = MemoryImporter::new("m", d).import().unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(
            MemoryImporter::new("m", Dataset::with_schema(&["x"])).name(),
            "m"
        );
    }
}
