//! # saga-ingest
//!
//! The Data Source Ingestion module (§2.2, Fig. 3): a set of pluggable,
//! configurable stages that take an upstream provider's raw artifacts to
//! ontology-aligned, delta-partitioned extended triples ready for knowledge
//! construction.
//!
//! Pipeline stages (each a module here):
//!
//! 1. **Import** ([`importer`]) — read raw upstream data (CSV, JSON-lines,
//!    in-memory) into the standard row-based [`Dataset`](saga_core::Dataset).
//! 2. **Entity Transform** ([`transform`]) — produce entity-centric rows
//!    (one row = one source entity) while enforcing the §2.2 integrity
//!    checks (unique non-empty ids, schema completeness, …). Multiple
//!    artifacts can be joined (e.g. artists ⋈ popularity).
//! 3. **Ontology Alignment** ([`align`]) — config-driven Predicate
//!    Generation Functions map source columns to KG-ontology predicates,
//!    producing [`EntityPayload`](saga_core::EntityPayload)s whose subjects
//!    and object references stay in the source namespace.
//! 4. **Delta Computation** ([`delta`]) — eager diffing against the last
//!    snapshot consumed by the KG, splitting entities into Added / Updated /
//!    Deleted plus a full volatile-predicate dump (§2.4).
//! 5. **Export** ([`pipeline`]) — ontology validation and hand-off.
//!
//! [`synth`] provides the seeded synthetic source generators that stand in
//! for the paper's licensed data feeds (see DESIGN.md §2).

pub mod align;
pub mod delta;
pub mod importer;
pub mod pipeline;
pub mod synth;
pub mod transform;

pub use align::{AlignmentConfig, Pgf};
pub use delta::{compute_delta, SourceDelta, SourceSnapshot};
pub use importer::{CsvImporter, DataSourceImporter, JsonLinesImporter, MemoryImporter};
pub use pipeline::{IngestionReport, SourceIngestionPipeline};
pub use transform::{DataTransformer, TransformSpec};
