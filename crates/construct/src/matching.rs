//! Matching models (§2.3 step 4): calibrated match probabilities for
//! candidate entity pairs.
//!
//! "The matching model emits a calibrated probability that can be used to
//! determine if a pair of entities corresponds to a true match or not. The
//! platform allows for both machine learning-based and rule-based matching
//! models." Features come from the deterministic and learned similarity
//! functions of `saga-ml`.

use saga_core::{intern, EntityPayload, FxHashSet, Symbol, Value};
use saga_ml::simlib::{jaro_winkler, levenshtein, numeric_closeness, qgram_jaccard};
use saga_ml::StringEncoder;

/// Similarity features for one candidate pair.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MatchFeatures {
    /// Jaro-Winkler over primary names.
    pub name_jw: f64,
    /// Levenshtein similarity over primary names.
    pub name_lev: f64,
    /// 3-gram Jaccard over primary names.
    pub name_qgram: f64,
    /// Best learned (neural) similarity over all name/alias combinations;
    /// falls back to `name_jw` when no encoder is supplied.
    pub name_neural: f64,
    /// Agreement over shared scalar attributes (fraction equal/close).
    pub attr_agreement: f64,
    /// Fraction of shared predicates (schema overlap).
    pub predicate_overlap: f64,
}

impl MatchFeatures {
    /// Compute features for a pair, optionally using a learned encoder.
    pub fn compute(
        a: &EntityPayload,
        b: &EntityPayload,
        encoder: Option<&StringEncoder>,
    ) -> MatchFeatures {
        let name_a = a.name().unwrap_or("");
        let name_b = b.name().unwrap_or("");
        let name_jw = jaro_winkler(name_a, name_b);
        let name_lev = levenshtein(name_a, name_b);
        let name_qgram = qgram_jaccard(name_a, name_b, 3);
        let name_neural = match encoder {
            Some(enc) => {
                let mut names_a = vec![name_a.to_string()];
                names_a.extend(a.aliases().iter().map(|s| s.to_string()));
                let mut names_b = vec![name_b.to_string()];
                names_b.extend(b.aliases().iter().map(|s| s.to_string()));
                let mut best = 0.0f64;
                for na in &names_a {
                    for nb in &names_b {
                        best = best.max(f64::from(enc.similarity(na, nb)));
                    }
                }
                best
            }
            None => name_jw,
        };

        // Attribute agreement over shared simple predicates.
        let name_sym = intern("name");
        let alias_sym = intern("alias");
        let type_sym = intern("type");
        let preds_a: FxHashSet<Symbol> = a
            .triples
            .iter()
            .filter(|t| t.rel.is_none())
            .map(|t| t.predicate)
            .filter(|p| *p != name_sym && *p != alias_sym && *p != type_sym)
            .collect();
        let preds_b: FxHashSet<Symbol> = b
            .triples
            .iter()
            .filter(|t| t.rel.is_none())
            .map(|t| t.predicate)
            .filter(|p| *p != name_sym && *p != alias_sym && *p != type_sym)
            .collect();
        let shared: Vec<Symbol> = preds_a.intersection(&preds_b).copied().collect();
        let union = preds_a.union(&preds_b).count();
        let predicate_overlap = if union == 0 {
            0.0
        } else {
            shared.len() as f64 / union as f64
        };

        let mut agree = 0.0;
        for &p in &shared {
            let va = a.values(p);
            let vb = b.values(p);
            agree += value_agreement(&va, &vb);
        }
        let attr_agreement = if shared.is_empty() {
            0.0
        } else {
            agree / shared.len() as f64
        };

        MatchFeatures {
            name_jw,
            name_lev,
            name_qgram,
            name_neural,
            attr_agreement,
            predicate_overlap,
        }
    }

    fn as_array(&self) -> [f64; 6] {
        [
            self.name_jw,
            self.name_lev,
            self.name_qgram,
            self.name_neural,
            self.attr_agreement,
            self.predicate_overlap,
        ]
    }
}

fn value_agreement(va: &[&Value], vb: &[&Value]) -> f64 {
    if va.is_empty() || vb.is_empty() {
        return 0.0;
    }
    let mut best = 0.0f64;
    for x in va {
        for y in vb {
            let s = match (x, y) {
                (Value::Str(a), Value::Str(b)) => jaro_winkler(a, b),
                (Value::Int(a), Value::Int(b)) => numeric_closeness(*a as f64, *b as f64, 10.0),
                (Value::Float(a), Value::Float(b)) => numeric_closeness(*a, *b, 1.0),
                (a, b) if a == b => 1.0,
                _ => 0.0,
            };
            best = best.max(s);
        }
    }
    best
}

/// A matching model: calibrated probability that a pair is a true match.
pub trait MatchingModel: Send + Sync {
    /// Probability in `[0, 1]` that `a` and `b` denote the same entity.
    fn score(&self, a: &EntityPayload, b: &EntityPayload) -> f64;
}

/// Rule-based matcher: thresholded feature combination (the NADEEF/ER-style
/// deterministic option the platform must also support).
#[derive(Clone, Debug)]
pub struct RuleMatcher {
    /// Accept if blended name similarity exceeds this.
    pub name_threshold: f64,
    /// Attribute agreement needed when names are borderline.
    pub attr_threshold: f64,
}

impl Default for RuleMatcher {
    fn default() -> Self {
        RuleMatcher {
            name_threshold: 0.88,
            attr_threshold: 0.7,
        }
    }
}

impl MatchingModel for RuleMatcher {
    fn score(&self, a: &EntityPayload, b: &EntityPayload) -> f64 {
        let f = MatchFeatures::compute(a, b, None);
        let name = 0.45 * f.name_jw + 0.25 * f.name_lev + 0.3 * f.name_qgram;
        if name >= self.name_threshold {
            // Strong name evidence: calibrate into the high range.
            0.9 + 0.1 * (name - self.name_threshold) / (1.0 - self.name_threshold).max(1e-9)
        } else if name >= self.name_threshold - 0.12 && f.attr_agreement >= self.attr_threshold {
            0.75
        } else {
            // Weak evidence: scale into the low range.
            0.5 * name
        }
    }
}

/// Learned matcher: logistic regression over [`MatchFeatures`], optionally
/// blending the neural string encoder's similarity (§5.1's "out-of-the-box"
/// featurization).
#[derive(Clone, Debug)]
pub struct LearnedMatcher {
    weights: [f64; 6],
    bias: f64,
    encoder: Option<StringEncoder>,
}

impl LearnedMatcher {
    /// A matcher with hand-calibrated default weights.
    pub fn with_default_weights(encoder: Option<StringEncoder>) -> Self {
        LearnedMatcher {
            weights: [4.0, 2.0, 3.0, 4.0, 1.5, 0.5],
            bias: -8.2,
            encoder,
        }
    }

    /// Train by logistic SGD on labeled pairs `(a, b, is_match)`.
    pub fn train(
        &mut self,
        pairs: &[(EntityPayload, EntityPayload, bool)],
        epochs: usize,
        lr: f64,
    ) {
        let feats: Vec<([f64; 6], f64)> = pairs
            .iter()
            .map(|(a, b, y)| {
                (
                    MatchFeatures::compute(a, b, self.encoder.as_ref()).as_array(),
                    f64::from(u8::from(*y)),
                )
            })
            .collect();
        for _ in 0..epochs.max(1) {
            for (x, y) in &feats {
                let z: f64 =
                    self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.bias;
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - y;
                for (w, v) in self.weights.iter_mut().zip(x) {
                    *w -= lr * err * v;
                }
                self.bias -= lr * err;
            }
        }
    }
}

impl MatchingModel for LearnedMatcher {
    fn score(&self, a: &EntityPayload, b: &EntityPayload) -> f64 {
        let f = MatchFeatures::compute(a, b, self.encoder.as_ref());
        let z: f64 = self
            .weights
            .iter()
            .zip(f.as_array())
            .map(|(w, v)| w * v)
            .sum::<f64>()
            + self.bias;
        1.0 / (1.0 + (-z).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_core::{FactMeta, SourceId};

    fn payload(src: u32, id: &str, name: &str, year: Option<i64>) -> EntityPayload {
        let mut p = EntityPayload::new(SourceId(src), id, intern("music_artist"));
        let meta = FactMeta::from_source(SourceId(src), 0.9);
        p.push_simple(intern("name"), Value::str(name), meta.clone());
        if let Some(y) = year {
            p.push_simple(intern("release_year"), Value::Int(y), meta);
        }
        p
    }

    #[test]
    fn features_reflect_similarity() {
        let a = payload(1, "a", "Billie Eilish", Some(2019));
        let b = payload(2, "b", "Bilie Eilish", Some(2019));
        let c = payload(2, "c", "Jay-Z", Some(1996));
        let fab = MatchFeatures::compute(&a, &b, None);
        let fac = MatchFeatures::compute(&a, &c, None);
        assert!(fab.name_jw > 0.85 && fac.name_jw < 0.6);
        assert!(fab.attr_agreement > 0.99, "same year agrees");
        assert!(fab.name_qgram > fac.name_qgram);
        assert_eq!(fab.predicate_overlap, 1.0);
    }

    #[test]
    fn rule_matcher_separates_dup_from_distinct() {
        let m = RuleMatcher::default();
        let a = payload(1, "a", "Billie Eilish", None);
        let b = payload(2, "b", "Bilie Eilish", None);
        let c = payload(2, "c", "Billie Holiday", None);
        assert!(m.score(&a, &b) > 0.85, "typo duplicate scores high");
        assert!(
            m.score(&a, &c) < 0.6,
            "different artist scores low: {}",
            m.score(&a, &c)
        );
    }

    #[test]
    fn rule_matcher_uses_attributes_for_borderline_names() {
        let a = payload(1, "a", "The Midnight", Some(2014));
        let b = payload(2, "b", "The Midnights", Some(2014));
        // Derive the blended name score, then pick a threshold that makes
        // this pair borderline (inside the threshold−0.12 window).
        let f = MatchFeatures::compute(&a, &b, None);
        let blended = 0.45 * f.name_jw + 0.25 * f.name_lev + 0.3 * f.name_qgram;
        let m = RuleMatcher {
            name_threshold: blended + 0.05,
            attr_threshold: 0.5,
        };
        let s = m.score(&a, &b);
        assert!(
            s >= 0.7,
            "attribute corroboration rescues borderline names: {s}"
        );
        // Without the matching year the same pair stays low.
        let c = payload(2, "c", "The Midnights", Some(1971));
        let s2 = m.score(&a, &c);
        assert!(s2 < s, "no corroboration → lower score: {s2} vs {s}");
    }

    #[test]
    fn learned_matcher_improves_with_training() {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let names = [
            "Golden River",
            "Neon Thunder",
            "Silent Ocean",
            "Broken Glass",
            "Velvet Echo",
        ];
        for (i, n) in names.iter().enumerate() {
            let a = payload(1, &format!("a{i}"), n, Some(2000 + i as i64));
            let mut tweaked = n.to_string();
            tweaked.remove(1);
            let b = payload(2, &format!("b{i}"), &tweaked, Some(2000 + i as i64));
            pos.push((a.clone(), b, true));
            let other = names[(i + 1) % names.len()];
            let c = payload(2, &format!("c{i}"), other, Some(1900));
            neg.push((a, c, false));
        }
        let mut all = pos.clone();
        all.extend(neg.clone());
        let mut m = LearnedMatcher {
            weights: [0.0; 6],
            bias: 0.0,
            encoder: None,
        };
        m.train(&all, 200, 0.5);
        let avg_pos: f64 =
            pos.iter().map(|(a, b, _)| m.score(a, b)).sum::<f64>() / pos.len() as f64;
        let avg_neg: f64 =
            neg.iter().map(|(a, b, _)| m.score(a, b)).sum::<f64>() / neg.len() as f64;
        assert!(
            avg_pos > avg_neg + 0.3,
            "trained separation: {avg_pos:.3} vs {avg_neg:.3}"
        );
    }

    #[test]
    fn default_learned_matcher_is_sane_untrained() {
        let m = LearnedMatcher::with_default_weights(None);
        let a = payload(1, "a", "Billie Eilish", None);
        let b = payload(2, "b", "Billie Eilish", None);
        let c = payload(2, "c", "Thunder Paper", None);
        assert!(m.score(&a, &b) > 0.8);
        assert!(m.score(&a, &c) < 0.3);
    }
}
