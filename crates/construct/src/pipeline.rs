//! The parallel, incremental knowledge-construction pipeline (§2.4, Fig. 5).
//!
//! Knowledge construction "is designed as a continuously running delta-based
//! framework; it always operates by consuming source diffs". Each source's
//! Added / Updated / Deleted / volatile payloads are processed with:
//!
//! * **Inter-source parallelism** — sources link concurrently against the
//!   same KG snapshot (linking is read-only); the synchronization point is
//!   fusion, applied one source at a time.
//! * **Intra-source parallelism** — Added needs the full linking pipeline;
//!   Updated/Deleted use the `same_as` id-lookup fast path; the volatile
//!   payload is fused last via partition overwrite.
//!
//! A brand-new source is simply a batch with a full Added payload and empty
//! Updated/Deleted partitions.

use std::time::Instant;

use saga_core::{
    CommitReceipt, Delta, EntityId, EntityPayload, FxHashSet, IdGenerator, KgTransaction,
    KnowledgeGraph, Result, SourceId, SubjectRef, Symbol,
};
use saga_graph::{LoggedWriter, OpKind};
use saga_ingest::SourceDelta;

use crate::fusion::{fuse_payload, FusionConfig, FusionReport};
use crate::linking::{LinkOutcome, Linker, LinkerConfig};
use crate::matching::MatchingModel;
use crate::obr::ObjectResolver;

/// One source's delta payload entering construction.
#[derive(Clone, Debug)]
pub struct SourceBatch {
    /// The source.
    pub source: SourceId,
    /// Provider name (reporting only).
    pub name: String,
    /// The Added/Updated/Deleted/volatile partitions from ingestion.
    pub delta: SourceDelta,
}

/// Aggregate counters for one construction cycle.
#[derive(Clone, Debug, Default)]
pub struct ConstructionReport {
    /// Sources consumed.
    pub sources: usize,
    /// Source entities linked to brand-new KG entities.
    pub new_entities: usize,
    /// Source entities linked to existing KG entities.
    pub matched_existing: usize,
    /// Updated entities re-fused via the id-lookup fast path.
    pub updated: usize,
    /// Updated entities that had no link and went through full linking.
    pub updated_relinked: usize,
    /// Deleted source entities retracted.
    pub deleted: usize,
    /// Volatile facts overwritten.
    pub volatile_facts: usize,
    /// Candidate pairs scored across all sources.
    pub pairs_scored: usize,
    /// Sum of per-payload fusion counters.
    pub fusion: FusionReport,
    /// Wall-clock milliseconds spent in the (parallel) linking phase.
    pub linking_ms: u128,
    /// Wall-clock milliseconds spent in the (serial) fusion phase.
    pub fusion_ms: u128,
    /// Distinct entities whose facts changed this cycle, in id order — what
    /// the Graph Engine appends to its operation log.
    pub changed: Vec<EntityId>,
    /// The cycle's [`Delta`] change payload, taken from the commit
    /// receipts (one per [`GraphWrite`](saga_core::GraphWrite) commit the
    /// cycle performed), ready for derived stores to replay.
    pub deltas: Vec<Delta>,
    /// Commits performed this cycle (one in parallel mode, one per source
    /// in serial mode).
    pub commits: usize,
}

/// The construction pipeline executor.
pub struct KnowledgeConstructor {
    /// Linking configuration.
    pub linker: LinkerConfig,
    /// Fusion configuration.
    pub fusion: FusionConfig,
    /// Volatile predicates (from the ontology) for partition overwrite.
    pub volatile_predicates: FxHashSet<Symbol>,
    /// Run inter-source linking in parallel (the Fig. 5 mode) or serially
    /// (ablation baseline for experiment E10).
    pub parallel: bool,
}

impl KnowledgeConstructor {
    /// A constructor with the given volatile-predicate set and defaults
    /// elsewhere.
    pub fn new(volatile_predicates: FxHashSet<Symbol>) -> Self {
        KnowledgeConstructor {
            linker: LinkerConfig::default(),
            fusion: FusionConfig::default(),
            volatile_predicates,
            parallel: true,
        }
    }

    /// Consume one cycle of source batches, updating the KG in place
    /// through the transactional [`GraphWrite`](saga_core::GraphWrite)
    /// commit point (staging per cycle in parallel mode, per source in
    /// serial mode). The cycle's change payload lands in
    /// [`ConstructionReport::deltas`], straight from the commit receipts.
    ///
    /// Producers that also own an operation log should prefer
    /// [`consume_logged`](Self::consume_logged), which appends each commit
    /// to the log *before* applying it.
    pub fn consume(
        &self,
        kg: &mut KnowledgeGraph,
        id_gen: &IdGenerator,
        batches: Vec<SourceBatch>,
        matcher: &dyn MatchingModel,
        resolver: &dyn ObjectResolver,
    ) -> ConstructionReport {
        let mut report = ConstructionReport {
            sources: batches.len(),
            ..Default::default()
        };

        let linker = Linker::new(self.linker.clone());
        if self.parallel && batches.len() > 1 {
            let prepared = Self::link_parallel(kg, id_gen, &linker, batches, matcher, &mut report);
            let fuse_start = Instant::now();
            let staged = {
                let mut txn = KgTransaction::new(kg);
                for prep in prepared {
                    self.fuse_prepared(&mut txn, prep, resolver, &mut report);
                }
                txn.into_staged()
            };
            finish_cycle(&mut report, kg.apply_staged(staged));
            report.fusion_ms = fuse_start.elapsed().as_millis();
        } else {
            // ---- Serial mode: sources are consumed one at a time, each
            // committed before the next links — so later sources link
            // against the KG *including* the previous sources' fused
            // payloads (full cross-source dedup within the cycle).
            for batch in batches {
                let link_start = Instant::now();
                let prep = prepare_source(kg, id_gen, &linker, batch, matcher);
                report.linking_ms += link_start.elapsed().as_millis();
                let fuse_start = Instant::now();
                let staged = {
                    let mut txn = KgTransaction::new(kg);
                    self.fuse_prepared(&mut txn, prep, resolver, &mut report);
                    txn.into_staged()
                };
                finish_cycle(&mut report, kg.apply_staged(staged));
                report.fusion_ms += fuse_start.elapsed().as_millis();
            }
        }
        seal_report(&mut report);
        report
    }

    /// The log-first form of [`consume`](Self::consume): every commit is
    /// appended to the writer's operation log *before* it is applied to
    /// the KG, so derived stores can follow the construction stream with
    /// no hand-paired changelog-drain/`append_op` anywhere. Returns the report
    /// alongside the LSNs the cycle occupied.
    pub fn consume_logged(
        &self,
        writer: &LoggedWriter,
        id_gen: &IdGenerator,
        batches: Vec<SourceBatch>,
        matcher: &dyn MatchingModel,
        resolver: &dyn ObjectResolver,
    ) -> Result<(ConstructionReport, Vec<saga_core::Lsn>)> {
        let mut report = ConstructionReport {
            sources: batches.len(),
            ..Default::default()
        };
        let mut lsns = Vec::new();
        let linker = Linker::new(self.linker.clone());
        if self.parallel && batches.len() > 1 {
            let prepared = {
                let kg = writer.read();
                Self::link_parallel(&kg, id_gen, &linker, batches, matcher, &mut report)
            };
            let fuse_start = Instant::now();
            let (_, commit) = writer.with_txn(OpKind::Upsert, |txn| {
                for prep in prepared {
                    self.fuse_prepared(txn, prep, resolver, &mut report);
                }
            })?;
            lsns.push(commit.lsn);
            finish_cycle(&mut report, commit.receipt);
            report.fusion_ms = fuse_start.elapsed().as_millis();
        } else {
            for batch in batches {
                let link_start = Instant::now();
                let prep = {
                    let kg = writer.read();
                    prepare_source(&kg, id_gen, &linker, batch, matcher)
                };
                report.linking_ms += link_start.elapsed().as_millis();
                let fuse_start = Instant::now();
                let (_, commit) = writer.with_txn(OpKind::Upsert, |txn| {
                    self.fuse_prepared(txn, prep, resolver, &mut report);
                })?;
                lsns.push(commit.lsn);
                finish_cycle(&mut report, commit.receipt);
                report.fusion_ms += fuse_start.elapsed().as_millis();
            }
        }
        seal_report(&mut report);
        Ok((report, lsns))
    }

    /// Inter-source parallel linking against one KG snapshot (Fig. 5).
    /// Duplicates *across sources within one batch* are not merged until a
    /// later cycle re-observes them — the latency/dedup tradeoff of
    /// snapshot linking.
    fn link_parallel(
        kg: &KnowledgeGraph,
        id_gen: &IdGenerator,
        linker: &Linker,
        batches: Vec<SourceBatch>,
        matcher: &dyn MatchingModel,
        report: &mut ConstructionReport,
    ) -> Vec<PreparedSource> {
        let link_start = Instant::now();
        let prepared: Vec<PreparedSource> = std::thread::scope(|scope| {
            let handles: Vec<_> = batches
                .into_iter()
                .map(|batch| {
                    scope.spawn(move || prepare_source(kg, id_gen, linker, batch, matcher))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("linking worker panicked"))
                .collect()
        });
        report.linking_ms += link_start.elapsed().as_millis();
        prepared
    }

    fn fuse_prepared(
        &self,
        txn: &mut KgTransaction<'_>,
        prep: PreparedSource,
        resolver: &dyn ObjectResolver,
        report: &mut ConstructionReport,
    ) {
        {
            report.new_entities += prep.added.new_entities;
            report.matched_existing += prep.added.matched_existing;
            report.pairs_scored += prep.added.pairs_scored + prep.relinked_updates.pairs_scored;
            report.updated_relinked += prep.relinked_updates.linked.len();

            // same_as links first: OBR's link-table path depends on them
            // (staged read-your-writes makes them visible immediately).
            for (src, local, id) in prep
                .added
                .links
                .iter()
                .chain(prep.relinked_updates.links.iter())
            {
                txn.link(*src, local, *id);
            }
            // Fuse Added (including re-linked updates).
            for p in prep
                .added
                .linked
                .into_iter()
                .chain(prep.relinked_updates.linked)
            {
                merge_fusion(
                    &mut report.fusion,
                    fuse_payload(txn, p, resolver, &self.fusion),
                );
            }
            // Updated fast path: retract the source's old contribution to
            // the entity, then fuse the fresh payload.
            for (kg_id, mut payload, local) in prep.updated {
                txn.retract_source_entity(prep.source, &local);
                txn.link(prep.source, &local, kg_id);
                payload.relink(kg_id);
                merge_fusion(
                    &mut report.fusion,
                    fuse_payload(txn, payload, resolver, &self.fusion),
                );
                report.updated += 1;
            }
            // Deleted.
            for local in prep.deleted {
                txn.retract_source_entity(prep.source, &local);
                report.deleted += 1;
            }
            // Volatile overwrite, last (§2.4: after added/deleted are
            // fused). Subjects resolve through the staged link table, so
            // volatile facts about entities linked earlier in this very
            // transaction are kept.
            let mut volatile = Vec::new();
            for mut t in prep.volatile {
                if let SubjectRef::Source(src, local) = &t.subject {
                    match txn.lookup_link(*src, local) {
                        Some(id) => t.subject = SubjectRef::Kg(id),
                        None => continue, // entity not (yet) in the KG
                    }
                }
                volatile.push(t);
            }
            report.volatile_facts += volatile.len();
            txn.overwrite_volatile(prep.source, &self.volatile_predicates, volatile);
        }
    }
}

/// Fold one commit receipt into the cycle report.
fn finish_cycle(report: &mut ConstructionReport, receipt: CommitReceipt) {
    report.commits += 1;
    report.deltas.extend(receipt.deltas);
}

/// Derive the changed-id summary once every commit is folded in.
fn seal_report(report: &mut ConstructionReport) {
    let mut changed: Vec<EntityId> = report.deltas.iter().map(|d| d.entity).collect();
    changed.sort_unstable();
    changed.dedup();
    report.changed = changed;
}

struct PreparedSource {
    source: SourceId,
    added: LinkOutcome,
    /// Updated entities with a known link: `(kg id, payload, local id)`.
    updated: Vec<(EntityId, EntityPayload, String)>,
    /// Updated entities whose link was missing — sent through full linking.
    relinked_updates: LinkOutcome,
    deleted: Vec<String>,
    volatile: Vec<saga_core::ExtendedTriple>,
}

/// Per-source linking work: runs against an immutable KG snapshot.
fn prepare_source(
    kg: &KnowledgeGraph,
    id_gen: &IdGenerator,
    linker: &Linker,
    batch: SourceBatch,
    matcher: &dyn MatchingModel,
) -> PreparedSource {
    let SourceBatch { source, delta, .. } = batch;
    let added = linker.link(kg, id_gen, delta.added, matcher);

    // Intra-source: Updated takes the id-lookup fast path.
    let mut updated = Vec::new();
    let mut needs_linking = Vec::new();
    for p in delta.updated {
        let local = p
            .local_id()
            .expect("updated payloads are unlinked")
            .to_string();
        match kg.lookup_link(source, &local) {
            Some(id) => updated.push((id, p, local)),
            None => needs_linking.push(p),
        }
    }
    let relinked_updates = if needs_linking.is_empty() {
        LinkOutcome::default()
    } else {
        linker.link(kg, id_gen, needs_linking, matcher)
    };

    PreparedSource {
        source,
        added,
        updated,
        relinked_updates,
        deleted: delta.deleted,
        volatile: delta.volatile,
    }
}

fn merge_fusion(total: &mut FusionReport, one: FusionReport) {
    total.facts_added += one.facts_added;
    total.facts_merged += one.facts_merged;
    total.rel_nodes_merged += one.rel_nodes_merged;
    total.rel_nodes_added += one.rel_nodes_added;
    total.resolution.resolved += one.resolution.resolved;
    total.resolution.unresolved += one.resolution.unresolved;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::RuleMatcher;
    use crate::obr::LinkTableResolver;
    use saga_core::{intern, FactMeta, Value};
    use saga_ingest::SourceDelta;

    fn volatile_set() -> FxHashSet<Symbol> {
        let mut s = FxHashSet::default();
        s.insert(intern("popularity"));
        s
    }

    fn artist(src: u32, id: &str, name: &str) -> EntityPayload {
        let mut p = EntityPayload::new(SourceId(src), id, intern("music_artist"));
        let meta = FactMeta::from_source(SourceId(src), 0.9);
        p.push_simple(intern("type"), Value::str("music_artist"), meta.clone());
        p.push_simple(intern("name"), Value::str(name), meta);
        p
    }

    fn batch(src: u32, delta: SourceDelta) -> SourceBatch {
        SourceBatch {
            source: SourceId(src),
            name: format!("src{src}"),
            delta,
        }
    }

    #[test]
    fn full_added_payload_builds_the_graph() {
        let mut kg = KnowledgeGraph::new();
        let gen = IdGenerator::starting_at(1);
        let ctor = KnowledgeConstructor::new(volatile_set());
        let delta = SourceDelta {
            added: vec![artist(1, "a1", "Billie Eilish"), artist(1, "a2", "Jay-Z")],
            ..Default::default()
        };
        let report = ctor.consume(
            &mut kg,
            &gen,
            vec![batch(1, delta)],
            &RuleMatcher::default(),
            &LinkTableResolver,
        );
        assert_eq!(report.new_entities, 2);
        assert_eq!(kg.entity_count(), 2);
        assert_eq!(kg.find_by_name("Billie Eilish").len(), 1);
        assert_eq!(
            kg.lookup_link(SourceId(1), "a1"),
            Some(kg.find_by_name("Billie Eilish")[0])
        );
        // The cycle's change feed names both new entities, and the commit
        // receipts rolled up into the report.
        let mut ids: Vec<EntityId> = kg.entity_ids().collect();
        ids.sort_unstable();
        assert_eq!(report.changed, ids);
        assert!(!report.deltas.is_empty());
        assert_eq!(report.commits, 1, "one source batch, one commit");
        // Replaying the report's deltas onto an empty index rebuilds the
        // KG's index — the contract derived stores rely on.
        let mut replayed = saga_core::TripleIndex::new();
        for d in &report.deltas {
            replayed.apply(d);
        }
        assert_eq!(replayed.fact_count(), kg.index().fact_count());
    }

    #[test]
    fn two_sources_merge_on_shared_entities() {
        let mut kg = KnowledgeGraph::new();
        let gen = IdGenerator::starting_at(1);
        let ctor = KnowledgeConstructor::new(volatile_set());
        // Cycle 1: source 1 creates the artist.
        ctor.consume(
            &mut kg,
            &gen,
            vec![batch(
                1,
                SourceDelta {
                    added: vec![artist(1, "a1", "Billie Eilish")],
                    ..Default::default()
                },
            )],
            &RuleMatcher::default(),
            &LinkTableResolver,
        );
        // Cycle 2: source 2 mentions the same artist (typo'd).
        let report = ctor.consume(
            &mut kg,
            &gen,
            vec![batch(
                2,
                SourceDelta {
                    added: vec![artist(2, "z9", "Bilie Eilish")],
                    ..Default::default()
                },
            )],
            &RuleMatcher::default(),
            &LinkTableResolver,
        );
        assert_eq!(report.matched_existing, 1);
        assert_eq!(report.new_entities, 0);
        assert_eq!(kg.entity_count(), 1, "one canonical entity across sources");
        let id = kg.find_by_name("Billie Eilish")[0];
        assert_eq!(kg.lookup_link(SourceId(2), "z9"), Some(id));
    }

    #[test]
    fn updated_partition_uses_fast_path_and_replaces_facts() {
        let mut kg = KnowledgeGraph::new();
        let gen = IdGenerator::starting_at(1);
        let ctor = KnowledgeConstructor::new(volatile_set());
        ctor.consume(
            &mut kg,
            &gen,
            vec![batch(
                1,
                SourceDelta {
                    added: vec![artist(1, "a1", "Old Name")],
                    ..Default::default()
                },
            )],
            &RuleMatcher::default(),
            &LinkTableResolver,
        );
        let id = kg.find_by_name("Old Name")[0];
        let report = ctor.consume(
            &mut kg,
            &gen,
            vec![batch(
                1,
                SourceDelta {
                    updated: vec![artist(1, "a1", "New Name")],
                    ..Default::default()
                },
            )],
            &RuleMatcher::default(),
            &LinkTableResolver,
        );
        assert_eq!(report.updated, 1);
        assert_eq!(report.new_entities, 0, "no re-linking for known entities");
        let rec = kg.entity(id).unwrap();
        assert_eq!(rec.name(), Some("New Name"));
        assert!(
            kg.find_by_name("Old Name").is_empty(),
            "old fact retracted with the update"
        );
    }

    #[test]
    fn deleted_partition_retracts_entities() {
        let mut kg = KnowledgeGraph::new();
        let gen = IdGenerator::starting_at(1);
        let ctor = KnowledgeConstructor::new(volatile_set());
        ctor.consume(
            &mut kg,
            &gen,
            vec![batch(
                1,
                SourceDelta {
                    added: vec![artist(1, "a1", "Ghost")],
                    ..Default::default()
                },
            )],
            &RuleMatcher::default(),
            &LinkTableResolver,
        );
        let report = ctor.consume(
            &mut kg,
            &gen,
            vec![batch(
                1,
                SourceDelta {
                    deleted: vec!["a1".into()],
                    ..Default::default()
                },
            )],
            &RuleMatcher::default(),
            &LinkTableResolver,
        );
        assert_eq!(report.deleted, 1);
        assert_eq!(kg.entity_count(), 0);
    }

    #[test]
    fn volatile_payload_overwrites_without_touching_stable() {
        let mut kg = KnowledgeGraph::new();
        let gen = IdGenerator::starting_at(1);
        let ctor = KnowledgeConstructor::new(volatile_set());
        let mut with_pop = artist(1, "a1", "Billie Eilish");
        with_pop.push_simple(
            intern("popularity"),
            Value::Int(10),
            FactMeta::from_source(SourceId(1), 0.9),
        );
        // First cycle: stable + volatile arrive together (volatile split by
        // ingestion, but construction also tolerates inline volatile facts).
        let vol_fact = {
            let mut p = EntityPayload::new(SourceId(1), "a1", intern("music_artist"));
            p.push_simple(
                intern("popularity"),
                Value::Int(999),
                FactMeta::from_source(SourceId(1), 0.9),
            );
            p.triples[0].clone()
        };
        ctor.consume(
            &mut kg,
            &gen,
            vec![batch(
                1,
                SourceDelta {
                    added: vec![artist(1, "a1", "Billie Eilish")],
                    volatile: vec![vol_fact],
                    ..Default::default()
                },
            )],
            &RuleMatcher::default(),
            &LinkTableResolver,
        );
        let id = kg.find_by_name("Billie Eilish")[0];
        let rec = kg.entity(id).unwrap();
        assert_eq!(rec.values(intern("popularity")), vec![&Value::Int(999)]);
        assert_eq!(rec.name(), Some("Billie Eilish"));
    }

    #[test]
    fn consume_logged_appends_each_commit_before_applying() {
        use std::sync::Arc;
        let log = Arc::new(saga_graph::OperationLog::in_memory());
        let writer = LoggedWriter::new(
            Arc::new(parking_lot::RwLock::new(KnowledgeGraph::new())),
            Arc::clone(&log),
        );
        let gen = IdGenerator::starting_at(1);
        let mut ctor = KnowledgeConstructor::new(volatile_set());
        ctor.parallel = false; // serial: one logged op per source
        let batches = vec![
            batch(
                1,
                SourceDelta {
                    added: vec![artist(1, "a1", "Billie Eilish")],
                    ..Default::default()
                },
            ),
            batch(
                2,
                SourceDelta {
                    added: vec![artist(2, "z9", "Jay-Z")],
                    ..Default::default()
                },
            ),
        ];
        let (report, lsns) = ctor
            .consume_logged(
                &writer,
                &gen,
                batches,
                &RuleMatcher::default(),
                &LinkTableResolver,
            )
            .unwrap();
        assert_eq!(report.commits, 2);
        assert_eq!(lsns.len(), 2);
        assert_eq!(log.head(), saga_core::Lsn(2));
        // The logged ops carry exactly the report's deltas, in order.
        let logged: Vec<saga_core::Delta> = log
            .read_after(saga_core::Lsn::ZERO)
            .into_iter()
            .flat_map(|op| op.deltas)
            .collect();
        assert_eq!(logged, report.deltas);
        assert_eq!(writer.read().entity_count(), 2);
    }

    #[test]
    fn parallel_and_serial_modes_agree_on_totals() {
        let make_batches = || {
            (1..=4u32)
                .map(|s| {
                    batch(
                        s,
                        SourceDelta {
                            added: (0..10)
                                .map(|i| artist(s, &format!("e{i}"), &format!("Artist {s}x{i}")))
                                .collect(),
                            ..Default::default()
                        },
                    )
                })
                .collect::<Vec<_>>()
        };
        let run = |parallel: bool| {
            let mut kg = KnowledgeGraph::new();
            let gen = IdGenerator::starting_at(1);
            let mut ctor = KnowledgeConstructor::new(volatile_set());
            ctor.parallel = parallel;
            let r = ctor.consume(
                &mut kg,
                &gen,
                make_batches(),
                &RuleMatcher::default(),
                &LinkTableResolver,
            );
            (kg.entity_count(), kg.fact_count(), r.new_entities)
        };
        let (e1, f1, n1) = run(true);
        let (e2, f2, n2) = run(false);
        assert_eq!(e1, e2);
        assert_eq!(f1, f2);
        assert_eq!(n1, n2);
        assert_eq!(e1, 40, "all 40 distinct artists created");
    }
}
