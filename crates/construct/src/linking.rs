//! The Linking stage (§2.3): in-source deduplication + subject linking.
//!
//! Steps, exactly as the paper lists them:
//! 1. group input by entity type and extract the relevant KG view;
//! 2. combine source payload (which may include duplicates) with the view;
//! 3. blocking;
//! 4. pair generation + matching model scores;
//! 5. correlation clustering; each cluster keeps at most one KG entity,
//!    source entities inherit its id or a freshly minted one; `same_as`
//!    links record the decisions for provenance.

use saga_core::{
    EntityId, EntityPayload, FxHashMap, IdGenerator, KnowledgeGraph, SourceId, Symbol,
};

use crate::blocking::{block_payloads, generate_pairs, BlockingStrategy};
use crate::cluster::{correlation_cluster, ClusterNode, LinkageGraph};
use crate::matching::MatchingModel;

/// Linker configuration.
#[derive(Clone, Debug)]
pub struct LinkerConfig {
    /// Blocking strategy for candidate generation.
    pub blocking: BlockingStrategy,
    /// Blocks above this size generate no pairs.
    pub max_block_size: usize,
    /// Match probability at/above which a +1 edge is added.
    pub hi_threshold: f64,
    /// Pivot-clustering seed.
    pub seed: u64,
}

impl Default for LinkerConfig {
    fn default() -> Self {
        LinkerConfig {
            blocking: BlockingStrategy::NameQGrams(3),
            max_block_size: 64,
            hi_threshold: 0.7,
            seed: 17,
        }
    }
}

/// The result of linking one source's Added payloads.
#[derive(Clone, Debug, Default)]
pub struct LinkOutcome {
    /// Payloads rewritten to KG subjects (duplicates share an id).
    pub linked: Vec<EntityPayload>,
    /// `same_as` records to persist: `(source, local id, KG entity)`.
    pub links: Vec<(SourceId, String, EntityId)>,
    /// How many payloads matched an existing KG entity.
    pub matched_existing: usize,
    /// How many new KG entities were minted.
    pub new_entities: usize,
    /// Candidate pairs scored by the matching model (cost accounting).
    pub pairs_scored: usize,
}

/// The Linking stage executor.
pub struct Linker {
    config: LinkerConfig,
}

impl Linker {
    /// A linker with the given configuration.
    pub fn new(config: LinkerConfig) -> Self {
        Linker { config }
    }

    /// A linker with default configuration.
    pub fn with_defaults() -> Self {
        Linker {
            config: LinkerConfig::default(),
        }
    }

    /// Link `payloads` (one source's Added partition) against the KG.
    ///
    /// `kg` is read-only — fusion applies the outcome later, which is what
    /// lets multiple sources link in parallel against the same snapshot
    /// (Fig. 5). New ids come from the shared atomic `id_gen`.
    pub fn link(
        &self,
        kg: &KnowledgeGraph,
        id_gen: &IdGenerator,
        payloads: Vec<EntityPayload>,
        matcher: &dyn MatchingModel,
    ) -> LinkOutcome {
        let mut outcome = LinkOutcome::default();
        // Step 1: group by entity type.
        let mut by_type: FxHashMap<Symbol, Vec<EntityPayload>> = FxHashMap::default();
        for p in payloads {
            by_type.entry(p.entity_type).or_default().push(p);
        }
        let mut type_keys: Vec<Symbol> = by_type.keys().copied().collect();
        type_keys.sort_unstable(); // deterministic processing order
        for ty in type_keys {
            let group = by_type.remove(&ty).expect("key exists");
            self.link_type_group(kg, id_gen, ty, group, matcher, &mut outcome);
        }
        outcome
    }

    fn link_type_group(
        &self,
        kg: &KnowledgeGraph,
        id_gen: &IdGenerator,
        entity_type: Symbol,
        source_payloads: Vec<EntityPayload>,
        matcher: &dyn MatchingModel,
        outcome: &mut LinkOutcome,
    ) {
        // Step 1b/2: KG view for this type, combined with the source payload.
        let kg_view: Vec<EntityPayload> = kg
            .entities_of_type(entity_type)
            .into_iter()
            .map(|r| r.to_payload(entity_type))
            .collect();
        let n_src = source_payloads.len();
        let mut combined: Vec<EntityPayload> = source_payloads;
        combined.extend(kg_view);

        // Step 3: blocking over the combined payload.
        let blocks = block_payloads(&combined, self.config.blocking);
        // Step 4: pair generation + matching.
        let pairs = generate_pairs(&blocks, self.config.max_block_size);
        let mut graph = LinkageGraph::new();
        let node_of = |i: usize| -> ClusterNode {
            if i < n_src {
                ClusterNode::Source(i)
            } else {
                ClusterNode::Kg(
                    combined[i]
                        .subject
                        .as_kg()
                        .expect("KG view payloads are linked"),
                )
            }
        };
        // Every source payload is a node even if it pairs with nothing.
        for i in 0..n_src {
            graph.add_node(ClusterNode::Source(i));
        }
        for (i, j) in pairs {
            // KG-KG pairs carry no work: existing entities never merge here.
            if i >= n_src && j >= n_src {
                continue;
            }
            outcome.pairs_scored += 1;
            let p = matcher.score(&combined[i], &combined[j]);
            if p >= self.config.hi_threshold {
                graph.add_positive(node_of(i), node_of(j));
            }
        }

        // Step 5: resolution.
        let clusters = correlation_cluster(&graph, self.config.seed);
        for cluster in clusters {
            let kg_id = cluster.iter().find_map(|n| match n {
                ClusterNode::Kg(id) => Some(*id),
                ClusterNode::Source(_) => None,
            });
            let members: Vec<usize> = cluster
                .iter()
                .filter_map(|n| match n {
                    ClusterNode::Source(i) => Some(*i),
                    ClusterNode::Kg(_) => None,
                })
                .collect();
            if members.is_empty() {
                continue;
            }
            let id = match kg_id {
                Some(id) => {
                    outcome.matched_existing += members.len();
                    id
                }
                None => {
                    outcome.new_entities += 1;
                    id_gen.allocate()
                }
            };
            for m in members {
                let mut p = combined[m].clone();
                if let (Some(src), Some(local)) = (p.source(), p.local_id().map(str::to_string)) {
                    outcome.links.push((src, local, id));
                }
                p.relink(id);
                outcome.linked.push(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::RuleMatcher;
    use saga_core::{intern, FactMeta, Value};

    fn payload(src: u32, id: &str, name: &str) -> EntityPayload {
        let mut p = EntityPayload::new(SourceId(src), id, intern("music_artist"));
        p.push_simple(
            intern("name"),
            Value::str(name),
            FactMeta::from_source(SourceId(src), 0.9),
        );
        p.push_simple(
            intern("type"),
            Value::str("music_artist"),
            FactMeta::from_source(SourceId(src), 0.9),
        );
        p
    }

    #[test]
    fn new_entities_are_minted_for_unseen_names() {
        let kg = KnowledgeGraph::new();
        let gen = IdGenerator::starting_at(100);
        let linker = Linker::with_defaults();
        let out = linker.link(
            &kg,
            &gen,
            vec![payload(1, "a", "Billie Eilish"), payload(1, "b", "Jay-Z")],
            &RuleMatcher::default(),
        );
        assert_eq!(out.new_entities, 2);
        assert_eq!(out.matched_existing, 0);
        assert_eq!(out.linked.len(), 2);
        assert_eq!(out.links.len(), 2);
        let ids: Vec<EntityId> = out
            .linked
            .iter()
            .map(|p| p.subject.as_kg().unwrap())
            .collect();
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn in_source_duplicates_share_one_new_id() {
        let kg = KnowledgeGraph::new();
        let gen = IdGenerator::starting_at(100);
        let linker = Linker::with_defaults();
        let out = linker.link(
            &kg,
            &gen,
            vec![
                payload(1, "a", "Billie Eilish"),
                payload(1, "a_dup", "Bilie Eilish"),
            ],
            &RuleMatcher::default(),
        );
        assert_eq!(out.new_entities, 1, "typo duplicates deduplicate in-source");
        let ids: Vec<EntityId> = out
            .linked
            .iter()
            .map(|p| p.subject.as_kg().unwrap())
            .collect();
        assert_eq!(ids[0], ids[1]);
        assert_eq!(out.links.len(), 2, "both local ids recorded as same_as");
    }

    #[test]
    fn source_entities_link_to_existing_kg_entities() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(
            EntityId(7),
            "Billie Eilish",
            "music_artist",
            SourceId(9),
            0.95,
        );
        let gen = IdGenerator::starting_at(100);
        let linker = Linker::with_defaults();
        let out = linker.link(
            &kg,
            &gen,
            vec![payload(1, "a", "Billie Eilish")],
            &RuleMatcher::default(),
        );
        assert_eq!(out.matched_existing, 1);
        assert_eq!(out.new_entities, 0);
        assert_eq!(out.linked[0].subject.as_kg(), Some(EntityId(7)));
        assert_eq!(out.links, vec![(SourceId(1), "a".to_string(), EntityId(7))]);
    }

    #[test]
    fn homonym_kg_entities_never_merge_via_a_source() {
        // Two distinct KG "Hanover" cities; a new source mention of Hanover
        // must attach to at most one of them.
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "Hanover", "music_artist", SourceId(9), 0.9);
        kg.add_named_entity(EntityId(2), "Hanover", "music_artist", SourceId(9), 0.9);
        let gen = IdGenerator::starting_at(100);
        let linker = Linker::with_defaults();
        let out = linker.link(
            &kg,
            &gen,
            vec![payload(1, "h", "Hanover")],
            &RuleMatcher::default(),
        );
        assert_eq!(out.linked.len(), 1);
        let id = out.linked[0].subject.as_kg().unwrap();
        assert!(id == EntityId(1) || id == EntityId(2));
        assert_eq!(out.new_entities, 0);
    }

    #[test]
    fn types_are_linked_independently() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "Echo", "song", SourceId(9), 0.9);
        let gen = IdGenerator::starting_at(100);
        let linker = Linker::with_defaults();
        // Same name, different type: must NOT link to the song.
        let out = linker.link(
            &kg,
            &gen,
            vec![payload(1, "a", "Echo")],
            &RuleMatcher::default(),
        );
        assert_eq!(
            out.new_entities, 1,
            "artist Echo is a new entity, not the song"
        );
        assert_ne!(out.linked[0].subject.as_kg(), Some(EntityId(1)));
    }

    #[test]
    fn pair_scoring_cost_is_reported() {
        let kg = KnowledgeGraph::new();
        let gen = IdGenerator::starting_at(1);
        let linker = Linker::with_defaults();
        let payloads: Vec<EntityPayload> = (0..6)
            .map(|i| payload(1, &format!("p{i}"), "Exact Same Name"))
            .collect();
        let out = linker.link(&kg, &gen, payloads, &RuleMatcher::default());
        assert_eq!(out.pairs_scored, 15, "6 choose 2");
        assert_eq!(out.new_entities, 1);
    }
}
