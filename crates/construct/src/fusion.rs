//! Fusion (§2.3): merge linked source payloads into a consistent KG state.
//!
//! * Simple facts fuse by an outer join with the KG triples — either the
//!   provenance of an existing fact is extended, or a new fact is added
//!   ([`KgTransaction::upsert`] implements exactly this).
//! * Composite facts are more elaborate: a source relationship node merges
//!   into a KG relationship node when their underlying facts intersect
//!   sufficiently; otherwise it is added as a brand-new relationship node.
//! * Object resolution runs first so cross-references are standardized
//!   before the join.

use saga_core::{
    EntityPayload, EntityRecord, ExtendedTriple, FxHashMap, KgTransaction, RelId, Symbol, Value,
};

use crate::obr::{ObjectResolver, ResolutionStats};

/// Fusion configuration.
#[derive(Clone, Copy, Debug)]
pub struct FusionConfig {
    /// Fraction of a source relationship node's facets that must match an
    /// existing KG relationship node for the two to merge.
    pub rel_merge_overlap: f64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            rel_merge_overlap: 0.5,
        }
    }
}

/// Counters for one fused payload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionReport {
    /// Facts newly added to the KG.
    pub facts_added: usize,
    /// Facts whose provenance was extended (outer-join hit).
    pub facts_merged: usize,
    /// Source relationship nodes merged into existing KG nodes.
    pub rel_nodes_merged: usize,
    /// Source relationship nodes added as new KG nodes.
    pub rel_nodes_added: usize,
    /// Object-resolution counters.
    pub resolution: ResolutionStats,
}

/// Fuse one linked payload into a staging transaction.
///
/// Fusion *stages* — nothing is visible to readers until the transaction
/// commits — but every read it performs (relationship-node matching,
/// fresh rel-id minting, object resolution) observes the staged state, so
/// payloads fused earlier in the same cycle behave exactly as if they had
/// already been applied.
///
/// # Panics
/// Panics if the payload was not linked (subject still in a source
/// namespace) — fusion is only defined over linked payloads.
pub fn fuse_payload(
    txn: &mut KgTransaction<'_>,
    mut payload: EntityPayload,
    resolver: &dyn ObjectResolver,
    config: &FusionConfig,
) -> FusionReport {
    let entity_id = payload
        .subject
        .as_kg()
        .expect("fusion requires a linked payload");
    let mut report = FusionReport {
        resolution: resolver.resolve(txn, &mut payload),
        ..Default::default()
    };

    // Split simple vs composite facts.
    let mut simple = Vec::new();
    let mut composite: FxHashMap<(Symbol, RelId), Vec<ExtendedTriple>> = FxHashMap::default();
    for t in payload.triples {
        match t.rel {
            None => simple.push(t),
            Some(rel) => composite
                .entry((t.predicate, rel.rel_id))
                .or_default()
                .push(t),
        }
    }

    // Simple facts: outer join.
    for t in simple {
        if txn.upsert(t) {
            report.facts_added += 1;
        } else {
            report.facts_merged += 1;
        }
    }

    // Composite facts: relationship-node matching.
    let mut keys: Vec<(Symbol, RelId)> = composite.keys().copied().collect();
    keys.sort_unstable_by_key(|(p, r)| (p.0, r.0)); // deterministic order
    for key in keys {
        let facets = composite.remove(&key).expect("key exists");
        let (predicate, _) = key;
        let record = txn.record(entity_id);
        let target_rel = match find_mergeable_rel_node(record, predicate, &facets, config) {
            Some(existing) => {
                report.rel_nodes_merged += 1;
                existing
            }
            None => {
                report.rel_nodes_added += 1;
                record
                    .and_then(|r| r.max_rel_id(predicate))
                    .map(|r| RelId(r.0 + 1))
                    .unwrap_or(RelId(1))
            }
        };
        for mut t in facets {
            t.rel = Some(saga_core::RelPart {
                rel_id: target_rel,
                rel_predicate: t.rel.expect("composite fact").rel_predicate,
            });
            if txn.upsert(t) {
                report.facts_added += 1;
            } else {
                report.facts_merged += 1;
            }
        }
    }
    report
}

/// Find an existing relationship node of the record under `predicate`
/// whose facts sufficiently intersect the incoming facets.
fn find_mergeable_rel_node(
    record: Option<&EntityRecord>,
    predicate: Symbol,
    facets: &[ExtendedTriple],
    config: &FusionConfig,
) -> Option<RelId> {
    let record = record?;
    let incoming: Vec<(Symbol, &Value)> = facets
        .iter()
        .map(|t| (t.rel.expect("composite fact").rel_predicate, &t.object))
        .collect();
    if incoming.is_empty() {
        return None;
    }
    let mut best: Option<(RelId, f64)> = None;
    for rel_id in record.rel_ids(predicate) {
        let existing = record.rel_facets(predicate, rel_id);
        let matches = incoming
            .iter()
            .filter(|(f, v)| existing.iter().any(|(ef, ev)| ef == f && ev == v))
            .count();
        let overlap = matches as f64 / incoming.len() as f64;
        if overlap >= config.rel_merge_overlap && best.map(|(_, b)| overlap > b).unwrap_or(true) {
            best = Some((rel_id, overlap));
        }
    }
    best.map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obr::LinkTableResolver;
    use saga_core::{intern, EntityId, FactMeta, GraphWriteExt, KnowledgeGraph, SourceId};

    fn meta(src: u32) -> FactMeta {
        FactMeta::from_source(SourceId(src), 0.9)
    }

    /// Stage one payload and commit it — the per-payload form of what the
    /// construction pipeline does per cycle.
    fn fuse_into(
        kg: &mut KnowledgeGraph,
        payload: EntityPayload,
        resolver: &dyn ObjectResolver,
        config: &FusionConfig,
    ) -> FusionReport {
        let (report, staged) = {
            let mut txn = KgTransaction::new(kg);
            let report = fuse_payload(&mut txn, payload, resolver, config);
            (report, txn.into_staged())
        };
        kg.apply_staged(staged);
        report
    }

    fn linked_payload(id: u64) -> EntityPayload {
        let mut p = EntityPayload::new(SourceId(1), "x", intern("person"));
        p.relink(EntityId(id));
        p
    }

    #[test]
    fn simple_facts_outer_join() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "J. Smith", "person", SourceId(9), 0.9);
        let mut p = linked_payload(1);
        p.push_simple(intern("name"), Value::str("J. Smith"), meta(1)); // dup → merge
        p.push_simple(intern("birthdate"), Value::str("1980-01-01"), meta(1)); // new
        let report = fuse_into(&mut kg, p, &LinkTableResolver, &FusionConfig::default());
        assert_eq!(report.facts_added, 1);
        assert_eq!(report.facts_merged, 1);
        let rec = kg.entity(EntityId(1)).unwrap();
        let name_fact = rec
            .triples
            .iter()
            .find(|t| t.predicate == intern("name"))
            .unwrap();
        assert_eq!(
            name_fact.meta.source_count(),
            2,
            "provenance extended, not duplicated"
        );
    }

    #[test]
    fn composite_nodes_merge_on_sufficient_overlap() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "J. Smith", "person", SourceId(9), 0.9);
        // KG already has education r1 = {school: UW, degree: PhD}.
        kg.commit_upsert(ExtendedTriple::composite(
            EntityId(1),
            intern("educated_at"),
            RelId(1),
            intern("school"),
            Value::str("UW"),
            meta(9),
        ));
        kg.commit_upsert(ExtendedTriple::composite(
            EntityId(1),
            intern("educated_at"),
            RelId(1),
            intern("degree"),
            Value::str("PhD"),
            meta(9),
        ));
        // Source asserts {school: UW, year: 2005} — 1/2 facets match (0.5).
        let mut p = linked_payload(1);
        p.push_composite(
            intern("educated_at"),
            RelId(77),
            intern("school"),
            Value::str("UW"),
            meta(1),
        );
        p.push_composite(
            intern("educated_at"),
            RelId(77),
            intern("year"),
            Value::Int(2005),
            meta(1),
        );
        let report = fuse_into(&mut kg, p, &LinkTableResolver, &FusionConfig::default());
        assert_eq!(report.rel_nodes_merged, 1);
        assert_eq!(report.rel_nodes_added, 0);
        let rec = kg.entity(EntityId(1)).unwrap();
        assert_eq!(
            rec.rel_ids(intern("educated_at")),
            vec![RelId(1)],
            "merged into r1"
        );
        let facets = rec.rel_facets(intern("educated_at"), RelId(1));
        assert_eq!(facets.len(), 3, "year added to the merged node");
    }

    #[test]
    fn dissimilar_composite_nodes_are_added_fresh() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "J. Smith", "person", SourceId(9), 0.9);
        kg.commit_upsert(ExtendedTriple::composite(
            EntityId(1),
            intern("educated_at"),
            RelId(1),
            intern("school"),
            Value::str("UW"),
            meta(9),
        ));
        // Totally different education.
        let mut p = linked_payload(1);
        p.push_composite(
            intern("educated_at"),
            RelId(5),
            intern("school"),
            Value::str("MIT"),
            meta(1),
        );
        p.push_composite(
            intern("educated_at"),
            RelId(5),
            intern("degree"),
            Value::str("BSc"),
            meta(1),
        );
        let report = fuse_into(&mut kg, p, &LinkTableResolver, &FusionConfig::default());
        assert_eq!(report.rel_nodes_added, 1);
        let rec = kg.entity(EntityId(1)).unwrap();
        assert_eq!(rec.rel_ids(intern("educated_at")), vec![RelId(1), RelId(2)]);
    }

    #[test]
    fn two_source_rel_nodes_stay_distinct() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "J. Smith", "person", SourceId(9), 0.9);
        let mut p = linked_payload(1);
        p.push_composite(
            intern("educated_at"),
            RelId(1),
            intern("school"),
            Value::str("UW"),
            meta(1),
        );
        p.push_composite(
            intern("educated_at"),
            RelId(2),
            intern("school"),
            Value::str("MIT"),
            meta(1),
        );
        let report = fuse_into(&mut kg, p, &LinkTableResolver, &FusionConfig::default());
        assert_eq!(report.rel_nodes_added, 2);
        let rec = kg.entity(EntityId(1)).unwrap();
        assert_eq!(rec.rel_ids(intern("educated_at")).len(), 2);
    }

    #[test]
    fn refusing_creates_no_duplicates() {
        // Fusing the identical payload twice must be idempotent on facts.
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "X", "person", SourceId(9), 0.9);
        let build = || {
            let mut p = linked_payload(1);
            p.push_simple(intern("birthdate"), Value::str("1990"), meta(1));
            p.push_composite(
                intern("educated_at"),
                RelId(1),
                intern("school"),
                Value::str("UW"),
                meta(1),
            );
            p
        };
        fuse_into(
            &mut kg,
            build(),
            &LinkTableResolver,
            &FusionConfig::default(),
        );
        let facts_before = kg.fact_count();
        let report = fuse_into(
            &mut kg,
            build(),
            &LinkTableResolver,
            &FusionConfig::default(),
        );
        assert_eq!(kg.fact_count(), facts_before, "idempotent re-fuse");
        assert_eq!(report.facts_added, 0);
        assert!(report.facts_merged > 0);
    }

    #[test]
    #[should_panic(expected = "linked payload")]
    fn unlinked_payload_panics() {
        let mut kg = KnowledgeGraph::new();
        let p = EntityPayload::new(SourceId(1), "x", intern("person"));
        fuse_into(&mut kg, p, &LinkTableResolver, &FusionConfig::default());
    }
}
