//! Blocking (§2.3 step 3): partition entities into buckets of likely
//! matches so pair generation is tractable.
//!
//! "During blocking, entities are distributed across different buckets by
//! applying lightweight functions to group the entities that are likely to
//! be linked together, e.g., a blocking function may group all movies with
//! high overlap of their title q-grams into the same bucket."
//!
//! An entity may land in several buckets (q-gram blocking is multi-key);
//! pair generation deduplicates.

use saga_core::{EntityPayload, FxHashMap, FxHashSet};
use saga_ml::text::{qgrams, tokens};

/// The lightweight blocking functions offered by the platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockingStrategy {
    /// One bucket per name token (robust default for person/artist names).
    NameTokens,
    /// One bucket per name q-gram (higher recall, more buckets; the movies
    /// example in the paper).
    NameQGrams(usize),
    /// One bucket per normalized first character (cheap, low recall;
    /// baseline for blocking-ablation tests).
    NameInitial,
}

/// Assign each payload (by index) to its blocking buckets.
pub fn block_payloads(
    payloads: &[EntityPayload],
    strategy: BlockingStrategy,
) -> FxHashMap<String, Vec<usize>> {
    let mut blocks: FxHashMap<String, Vec<usize>> = FxHashMap::default();
    for (i, p) in payloads.iter().enumerate() {
        let name = p.name().unwrap_or("");
        match strategy {
            BlockingStrategy::NameTokens => {
                for t in tokens(name) {
                    blocks.entry(t).or_default().push(i);
                }
            }
            BlockingStrategy::NameQGrams(q) => {
                let mut seen = FxHashSet::default();
                for g in qgrams(name, q) {
                    if seen.insert(g.clone()) {
                        blocks.entry(g).or_default().push(i);
                    }
                }
            }
            BlockingStrategy::NameInitial => {
                if let Some(c) = saga_ml::text::normalize(name).chars().next() {
                    blocks.entry(c.to_string()).or_default().push(i);
                }
            }
        }
    }
    blocks
}

/// Generate deduplicated candidate pairs `(i, j)` with `i < j` from blocks,
/// skipping oversized buckets (`max_block_size`) — the standard guard
/// against stop-word-like block keys blowing up the pair count.
pub fn generate_pairs(
    blocks: &FxHashMap<String, Vec<usize>>,
    max_block_size: usize,
) -> Vec<(usize, usize)> {
    let mut pairs: FxHashSet<(usize, usize)> = FxHashSet::default();
    for members in blocks.values() {
        if members.len() < 2 || members.len() > max_block_size {
            continue;
        }
        for a in 0..members.len() {
            for b in (a + 1)..members.len() {
                let (i, j) = (members[a].min(members[b]), members[a].max(members[b]));
                if i != j {
                    pairs.insert((i, j));
                }
            }
        }
    }
    let mut out: Vec<(usize, usize)> = pairs.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_core::{intern, FactMeta, SourceId, Value};

    fn payload(id: &str, name: &str) -> EntityPayload {
        let mut p = EntityPayload::new(SourceId(1), id, intern("music_artist"));
        p.push_simple(
            intern("name"),
            Value::str(name),
            FactMeta::from_source(SourceId(1), 0.9),
        );
        p
    }

    fn artists() -> Vec<EntityPayload> {
        vec![
            payload("a", "Billie Eilish"),
            payload("b", "Bilie Eilish"), // typo duplicate
            payload("c", "Jay-Z"),
            payload("d", "Billie Holiday"),
        ]
    }

    #[test]
    fn token_blocking_groups_shared_tokens() {
        let ps = artists();
        let blocks = block_payloads(&ps, BlockingStrategy::NameTokens);
        let billie = blocks.get("billie").expect("billie bucket");
        assert_eq!(billie, &vec![0, 3]);
        let eilish = blocks.get("eilish").unwrap();
        assert_eq!(eilish, &vec![0, 1]);
    }

    #[test]
    fn qgram_blocking_catches_typos_tokens_miss() {
        let ps = artists();
        let token_pairs = generate_pairs(&block_payloads(&ps, BlockingStrategy::NameTokens), 100);
        let qgram_pairs =
            generate_pairs(&block_payloads(&ps, BlockingStrategy::NameQGrams(3)), 100);
        // The typo pair (0,1) is caught by both (they share "eilish"), but
        // q-grams also pair "Bilie"/"Billie" variants via shared grams.
        assert!(token_pairs.contains(&(0, 1)));
        assert!(qgram_pairs.contains(&(0, 1)));
        // q-gram blocking yields at least the recall of token blocking here.
        for p in &token_pairs {
            assert!(qgram_pairs.contains(p), "{p:?} lost by qgram blocking");
        }
    }

    #[test]
    fn pair_generation_dedupes_and_orders() {
        let ps = artists();
        let pairs = generate_pairs(&block_payloads(&ps, BlockingStrategy::NameQGrams(3)), 100);
        let mut seen = FxHashSet::default();
        for &(i, j) in &pairs {
            assert!(i < j);
            assert!(seen.insert((i, j)), "duplicate pair {i},{j}");
        }
    }

    #[test]
    fn oversized_blocks_are_skipped() {
        let ps: Vec<EntityPayload> = (0..20)
            .map(|i| payload(&format!("p{i}"), "Same Name"))
            .collect();
        let blocks = block_payloads(&ps, BlockingStrategy::NameTokens);
        let pairs = generate_pairs(&blocks, 10);
        assert!(pairs.is_empty(), "blocks above the cap generate no pairs");
        let pairs_ok = generate_pairs(&blocks, 50);
        assert_eq!(pairs_ok.len(), 20 * 19 / 2);
    }

    #[test]
    fn nameless_payloads_do_not_block() {
        let mut p = EntityPayload::new(SourceId(1), "x", intern("music_artist"));
        p.push_simple(
            intern("genre"),
            Value::str("pop"),
            FactMeta::from_source(SourceId(1), 0.9),
        );
        let blocks = block_payloads(&[p], BlockingStrategy::NameTokens);
        assert!(blocks.is_empty());
    }

    #[test]
    fn initial_blocking_is_coarse() {
        let ps = artists();
        let blocks = block_payloads(&ps, BlockingStrategy::NameInitial);
        assert_eq!(
            blocks.get("b").unwrap().len(),
            3,
            "three B names share a bucket"
        );
    }
}
