//! Correlation clustering for entity resolution (§2.3 step 5).
//!
//! "We use the calibrated similarity probabilities to identify
//! high-confidence matches and high-confidence non-matches and construct a
//! linkage graph where nodes correspond to entities and edges between nodes
//! are annotated as positive (+1) or negative (−1). We use a correlation
//! clustering algorithm over this graph to identify entity clusters.
//! During resolution, we require that each cluster contains at most one
//! graph entity."
//!
//! The implementation is the classic randomized *pivot* algorithm (KwikCluster,
//! 3-approximation; parallelized in the paper's citation \[63\]) with a deterministic seeded pivot
//! order and a structural guarantee that two existing-KG nodes never share
//! a cluster (an implicit −1 edge between every pair of KG nodes).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use saga_core::{EntityId, FxHashMap, FxHashSet};

/// A node of the linkage graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ClusterNode {
    /// A source payload, by its index into the combined payload vector.
    Source(usize),
    /// An existing KG entity (from the KG view).
    Kg(EntityId),
}

/// The ±1 linkage graph.
#[derive(Clone, Debug, Default)]
pub struct LinkageGraph {
    nodes: Vec<ClusterNode>,
    index: FxHashMap<ClusterNode, usize>,
    positive: FxHashMap<usize, FxHashSet<usize>>,
}

impl LinkageGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node (idempotent), returning its dense index.
    pub fn add_node(&mut self, node: ClusterNode) -> usize {
        if let Some(&i) = self.index.get(&node) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(node);
        self.index.insert(node, i);
        i
    }

    /// Record a high-confidence match (+1 edge). Edges between two KG nodes
    /// are ignored: existing entities are never merged by linking.
    pub fn add_positive(&mut self, a: ClusterNode, b: ClusterNode) {
        if matches!((a, b), (ClusterNode::Kg(_), ClusterNode::Kg(_))) {
            return;
        }
        let ia = self.add_node(a);
        let ib = self.add_node(b);
        if ia == ib {
            return;
        }
        self.positive.entry(ia).or_default().insert(ib);
        self.positive.entry(ib).or_default().insert(ia);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Run pivot correlation clustering; returns clusters of nodes.
///
/// Guarantees: every node appears in exactly one cluster; no cluster
/// contains two `Kg` nodes (when a pivot's neighbourhood would pull in a
/// second KG entity, that node is left for a later pivot).
pub fn correlation_cluster(graph: &LinkageGraph, seed: u64) -> Vec<Vec<ClusterNode>> {
    let n = graph.nodes.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut assigned = vec![false; n];
    let mut clusters = Vec::new();
    let empty = FxHashSet::default();
    for &pivot in &order {
        if assigned[pivot] {
            continue;
        }
        assigned[pivot] = true;
        let mut cluster = vec![pivot];
        let mut has_kg = matches!(graph.nodes[pivot], ClusterNode::Kg(_));
        let neighbours = graph.positive.get(&pivot).unwrap_or(&empty);
        // Deterministic member order regardless of hash iteration.
        let mut sorted: Vec<usize> = neighbours.iter().copied().collect();
        sorted.sort_unstable();
        for nb in sorted {
            if assigned[nb] {
                continue;
            }
            let is_kg = matches!(graph.nodes[nb], ClusterNode::Kg(_));
            if is_kg && has_kg {
                continue; // at most one graph entity per cluster
            }
            assigned[nb] = true;
            has_kg |= is_kg;
            cluster.push(nb);
        }
        clusters.push(cluster.into_iter().map(|i| graph.nodes[i]).collect());
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> ClusterNode {
        ClusterNode::Source(i)
    }

    fn kg(i: u64) -> ClusterNode {
        ClusterNode::Kg(EntityId(i))
    }

    #[test]
    fn connected_positive_component_clusters_together() {
        let mut g = LinkageGraph::new();
        g.add_positive(s(0), s(1));
        g.add_positive(s(1), s(2));
        g.add_node(s(3)); // isolated
        let clusters = correlation_cluster(&g, 1);
        // Pivot algorithm may split a path (pivot at an end), but node 3 is
        // always alone and all nodes are covered exactly once.
        let all: Vec<ClusterNode> = clusters.iter().flatten().copied().collect();
        assert_eq!(all.len(), 4);
        let three = clusters.iter().find(|c| c.contains(&s(3))).unwrap();
        assert_eq!(three.len(), 1);
    }

    #[test]
    fn triangle_clusters_as_one() {
        let mut g = LinkageGraph::new();
        g.add_positive(s(0), s(1));
        g.add_positive(s(1), s(2));
        g.add_positive(s(0), s(2));
        let clusters = correlation_cluster(&g, 7);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 3);
    }

    #[test]
    fn at_most_one_kg_entity_per_cluster() {
        let mut g = LinkageGraph::new();
        // A source node positively linked to two different KG entities —
        // the ambiguous case the constraint exists for.
        g.add_positive(s(0), kg(100));
        g.add_positive(s(0), kg(200));
        for seed in 0..20 {
            let clusters = correlation_cluster(&g, seed);
            for c in &clusters {
                let kg_count = c.iter().filter(|n| matches!(n, ClusterNode::Kg(_))).count();
                assert!(
                    kg_count <= 1,
                    "seed {seed}: cluster {c:?} has {kg_count} KG nodes"
                );
            }
            // All three nodes still covered.
            assert_eq!(clusters.iter().map(Vec::len).sum::<usize>(), 3);
        }
    }

    #[test]
    fn kg_kg_edges_are_ignored() {
        let mut g = LinkageGraph::new();
        g.add_positive(kg(1), kg(2));
        // Both nodes exist only if added another way; the edge was dropped.
        assert!(g.is_empty());
        g.add_node(kg(1));
        g.add_node(kg(2));
        let clusters = correlation_cluster(&g, 3);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn clustering_is_deterministic_per_seed() {
        let mut g = LinkageGraph::new();
        for i in 0..10 {
            g.add_positive(s(i), s((i + 1) % 10));
        }
        let a = correlation_cluster(&g, 42);
        let b = correlation_cluster(&g, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_edges_and_self_edges_are_safe() {
        let mut g = LinkageGraph::new();
        g.add_positive(s(0), s(1));
        g.add_positive(s(0), s(1));
        g.add_positive(s(1), s(0));
        g.add_positive(s(0), s(0));
        assert_eq!(g.len(), 2);
        let clusters = correlation_cluster(&g, 5);
        assert_eq!(clusters.len(), 1);
    }
}
