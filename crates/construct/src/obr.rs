//! Object Resolution (OBR, §2.3): standardize `object` fields to KG ids.
//!
//! Two resolvers compose:
//!
//! * [`LinkTableResolver`] — a `SourceRef` naming another entity *of the
//!   same source* resolves through the KG's `same_as` link table (the
//!   id-lookup fast path of §2.4).
//! * [`NerdObjectResolver`] — string literals / unresolved mentions go
//!   through the NERD stack (§5.2), with the ontology supplying an entity
//!   type hint from the predicate's declared range (the "NERD + Type Hints"
//!   variant of Fig. 14(b)).

use saga_core::{EntityPayload, KgTransaction, SourceId, Value};
use saga_ml::NerdStack;
use saga_ontology::TypeRegistry;

/// Counters describing one resolution pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResolutionStats {
    /// Objects rewritten to KG entity references.
    pub resolved: usize,
    /// Objects left untouched (no confident resolution).
    pub unresolved: usize,
}

/// Rewrites unresolved object references inside a linked payload.
///
/// Resolution reads the *staged* transaction view, so `same_as` links
/// recorded earlier in the same construction cycle (even earlier in the
/// same uncommitted batch) are visible — the read-your-writes guarantee
/// fusion's ordering depends on.
pub trait ObjectResolver: Send + Sync {
    /// Resolve in place; returns counters.
    fn resolve(&self, txn: &KgTransaction<'_>, payload: &mut EntityPayload) -> ResolutionStats;
}

/// Same-source reference resolution through the `same_as` link table.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkTableResolver;

impl ObjectResolver for LinkTableResolver {
    fn resolve(&self, txn: &KgTransaction<'_>, payload: &mut EntityPayload) -> ResolutionStats {
        let mut stats = ResolutionStats::default();
        for t in &mut payload.triples {
            if let Value::SourceRef(local) = &t.object {
                // The referencing source is recorded in the fact's provenance.
                let source: Option<SourceId> = t.meta.sources().next();
                let hit = source.and_then(|s| txn.lookup_link(s, local));
                match hit {
                    Some(id) => {
                        t.object = Value::Entity(id);
                        stats.resolved += 1;
                    }
                    None => stats.unresolved += 1,
                }
            }
        }
        stats
    }
}

/// NERD-backed resolution of string-literal mentions for reference-typed
/// predicates, with ontology type hints.
pub struct NerdObjectResolver<'a> {
    /// The assembled NERD stack.
    pub nerd: &'a NerdStack,
    /// Type lattice for hint subsumption.
    pub types: &'a TypeRegistry,
    /// Ontology used to find each predicate's expected range type; the
    /// range doubles as the NERD type hint.
    pub ontology: &'a saga_ontology::Ontology,
    /// Use type hints (the Fig. 14(b) ablation toggles this).
    pub use_type_hints: bool,
    /// Confidence required to accept a resolution (0.9 during construction,
    /// per §6.3: "accurate entity disambiguation is a requirement").
    pub confidence: f64,
}

impl NerdObjectResolver<'_> {
    fn hint_for(&self, predicate: saga_core::Symbol) -> Option<saga_core::Symbol> {
        if !self.use_type_hints {
            return None;
        }
        // Only predicates the ontology knows get a hint; the hint itself is
        // the predicate's conventional range type.
        self.ontology.predicate(predicate)?;
        range_hint(&predicate.to_string())
    }
}

/// Built-in range hints for the default ontology's reference predicates.
fn range_hint(predicate: &str) -> Option<saga_core::Symbol> {
    use saga_core::intern;
    let ty = match predicate {
        "performed_by" | "curated_by" => "music_artist",
        "on_album" => "album",
        "track_of" => "song",
        "signed_to" => "record_label",
        "directed_by" | "spouse" | "actor" => "person",
        "school" => "school",
        "birthplace" | "located_in" => "place",
        "home_team" | "away_team" | "plays_for" => "sports_team",
        "venue" => "venue",
        _ => return None,
    };
    Some(intern(ty))
}

impl ObjectResolver for NerdObjectResolver<'_> {
    fn resolve(&self, txn: &KgTransaction<'_>, payload: &mut EntityPayload) -> ResolutionStats {
        // First pass: cheap same-source link-table hits.
        let mut stats = LinkTableResolver.resolve(txn, payload);
        // Second pass: NERD for whatever is left, using the payload's own
        // facts as disambiguation context (a "semi-structured record").
        let context: String = payload
            .triples
            .iter()
            .filter_map(|t| t.object.as_str().map(str::to_string))
            .collect::<Vec<_>>()
            .join(" ");
        let mut newly = 0usize;
        for t in &mut payload.triples {
            let mention = match &t.object {
                Value::SourceRef(m) => m.to_string(),
                _ => continue,
            };
            let facet_pred = t.rel.map(|r| r.rel_predicate).unwrap_or(t.predicate);
            let hint = self.hint_for(facet_pred);
            if let Some((id, conf)) = self
                .nerd
                .resolve_mention(self.types, &mention, &context, hint)
            {
                if conf >= self.confidence {
                    t.object = Value::Entity(id);
                    newly += 1;
                }
            }
        }
        stats.resolved += newly;
        stats.unresolved -= newly.min(stats.unresolved);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_core::{intern, EntityId, FactMeta, KnowledgeGraph, Value, WriteBatch};
    use saga_ml::{ContextualDisambiguator, NerdConfig, NerdEntityView, StringEncoder};
    use saga_ontology::default_ontology;

    fn meta(src: u32) -> FactMeta {
        FactMeta::from_source(SourceId(src), 0.9)
    }

    #[test]
    fn link_table_resolver_rewrites_same_source_refs() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(
            EntityId(5),
            "Billie Eilish",
            "music_artist",
            SourceId(1),
            0.9,
        );
        WriteBatch::new()
            .link(SourceId(1), "artist_9", EntityId(5))
            .commit(&mut kg);

        let mut p = EntityPayload::new(SourceId(1), "song_1", intern("song"));
        p.relink(EntityId(50));
        p.triples.push(saga_core::ExtendedTriple::simple(
            EntityId(50),
            intern("performed_by"),
            Value::source_ref("artist_9"),
            meta(1),
        ));
        p.triples.push(saga_core::ExtendedTriple::simple(
            EntityId(50),
            intern("on_album"),
            Value::source_ref("album_404"),
            meta(1),
        ));
        let stats = LinkTableResolver.resolve(&KgTransaction::new(&kg), &mut p);
        assert_eq!(
            stats,
            ResolutionStats {
                resolved: 1,
                unresolved: 1
            }
        );
        assert_eq!(p.triples[0].object, Value::Entity(EntityId(5)));
        assert_eq!(
            p.triples[1].object,
            Value::source_ref("album_404"),
            "unknown ref untouched"
        );
    }

    #[test]
    fn nerd_resolver_uses_mention_text_and_type_hint() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(
            EntityId(5),
            "Billie Eilish",
            "music_artist",
            SourceId(2),
            0.9,
        );
        kg.add_named_entity(EntityId(6), "Billie Eilish", "song", SourceId(2), 0.9);
        let view = NerdEntityView::build(&kg, None);
        let encoder = StringEncoder::new(16, 512, 3, 1);
        let nerd = saga_ml::NerdStack::new(
            view,
            encoder,
            ContextualDisambiguator::default(),
            NerdConfig {
                max_candidates: 8,
                confidence_threshold: 0.2,
            },
        );
        let ont = default_ontology();
        let resolver = NerdObjectResolver {
            nerd: &nerd,
            types: ont.types(),
            ontology: &ont,
            use_type_hints: true,
            confidence: 0.2,
        };
        let mut p = EntityPayload::new(SourceId(1), "s1", intern("song"));
        p.relink(EntityId(70));
        p.triples.push(saga_core::ExtendedTriple::simple(
            EntityId(70),
            intern("performed_by"),
            Value::source_ref("Billie Eilish"),
            meta(1),
        ));
        let stats = resolver.resolve(&KgTransaction::new(&kg), &mut p);
        assert_eq!(stats.resolved, 1);
        // With the hint, the artist (not the homonymous song) is chosen.
        assert_eq!(p.triples[0].object, Value::Entity(EntityId(5)));
    }

    #[test]
    fn low_confidence_leaves_object_unresolved() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(
            EntityId(5),
            "Completely Different",
            "music_artist",
            SourceId(2),
            0.9,
        );
        let view = NerdEntityView::build(&kg, None);
        let nerd = saga_ml::NerdStack::new(
            view,
            StringEncoder::new(16, 512, 3, 1),
            ContextualDisambiguator::default(),
            NerdConfig::default(),
        );
        let ont = default_ontology();
        let resolver = NerdObjectResolver {
            nerd: &nerd,
            types: ont.types(),
            ontology: &ont,
            use_type_hints: true,
            confidence: 0.9,
        };
        let mut p = EntityPayload::new(SourceId(1), "s1", intern("song"));
        p.relink(EntityId(70));
        p.triples.push(saga_core::ExtendedTriple::simple(
            EntityId(70),
            intern("performed_by"),
            Value::source_ref("Unknown Artist XYZ"),
            meta(1),
        ));
        let stats = resolver.resolve(&KgTransaction::new(&kg), &mut p);
        assert_eq!(stats.resolved, 0);
        assert!(matches!(p.triples[0].object, Value::SourceRef(_)));
    }

    #[test]
    fn range_hints_cover_reference_predicates() {
        assert_eq!(range_hint("performed_by"), Some(intern("music_artist")));
        assert_eq!(range_hint("located_in"), Some(intern("place")));
        assert_eq!(range_hint("name"), None);
    }
}
