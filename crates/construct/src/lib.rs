//! # saga-construct
//!
//! Knowledge construction (§2.3, Fig. 4): integrate ontology-aligned source
//! payloads into the canonical KG by standardizing subjects and objects to
//! KG entities. The pipeline stages, each a module:
//!
//! * [`blocking`] — partition combined payloads into buckets of likely
//!   matches (q-gram / token blocking), taming the quadratic pair space.
//! * [`matching`] — per-entity-type matching models emit calibrated match
//!   probabilities for candidate pairs (rule-based and learned, over the
//!   similarity features of `saga-ml`).
//! * [`cluster`] — correlation clustering over the ±1 linkage graph (pivot
//!   algorithm), under the constraint that a cluster contains at most one
//!   existing KG entity.
//! * [`linking`] — the full Linking stage: group by type, extract the KG
//!   view, block, generate pairs, match, resolve clusters, assign ids.
//! * [`obr`] — Object Resolution: rewrite `SourceRef`/string objects into
//!   KG entity ids via the same-source link table and the NERD stack.
//! * [`truth`] — truth discovery & source-reliability estimation feeding
//!   per-fact confidence.
//! * [`fusion`] — merge linked payloads into the KG: outer-join for simple
//!   facts, relationship-node matching for composite facts, volatile
//!   partition overwrite.
//! * [`pipeline`] — the parallel incremental constructor of Fig. 5:
//!   Added/Updated/Deleted/volatile payloads per source, inter-source
//!   parallel linking, serialized fusion.

pub mod blocking;
pub mod cluster;
pub mod fusion;
pub mod linking;
pub mod matching;
pub mod obr;
pub mod pipeline;
pub mod truth;

pub use blocking::{block_payloads, BlockingStrategy};
pub use cluster::{correlation_cluster, ClusterNode, LinkageGraph};
pub use fusion::{fuse_payload, FusionConfig, FusionReport};
pub use linking::{LinkOutcome, Linker, LinkerConfig};
pub use matching::{LearnedMatcher, MatchFeatures, MatchingModel, RuleMatcher};
pub use obr::{LinkTableResolver, NerdObjectResolver, ObjectResolver, ResolutionStats};
pub use pipeline::{ConstructionReport, KnowledgeConstructor, SourceBatch};
pub use truth::{estimate_source_reliability, ReliabilityReport};
