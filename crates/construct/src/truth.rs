//! Truth discovery and source-reliability estimation (§2.3 Fusion).
//!
//! "We use standard methods of truth discovery and source reliability …
//! These algorithms reason about the agreement and disagreement across
//! sources." The implementation is the classic iterative voting scheme
//! (TruthFinder/SLiMFast-family fixed point):
//!
//! 1. For every conflicting claim group (same subject+predicate, one
//!    expected value), compute each value's belief as the trust-weighted
//!    vote of its supporting sources.
//! 2. Re-estimate each source's reliability as the mean belief of the
//!    values it claims.
//! 3. Iterate to (approximate) convergence.
//!
//! The resulting per-source reliabilities refresh the trust entries in
//! fact provenance, which [`FactMeta::confidence`](saga_core::FactMeta::confidence)
//! aggregates into per-fact correctness probabilities.

use saga_core::{FxHashMap, SourceId, TripleKey, Value};

/// One observed claim: a source asserting `value` for a fact key.
#[derive(Clone, Debug)]
pub struct Claim {
    /// The fact identity (subject, predicate, facet).
    pub key: TripleKey,
    /// The claimed value.
    pub value: Value,
    /// The claiming source.
    pub source: SourceId,
}

/// Result of reliability estimation.
#[derive(Clone, Debug, Default)]
pub struct ReliabilityReport {
    /// Estimated reliability per source.
    pub reliability: FxHashMap<SourceId, f32>,
    /// Belief per (fact key, value) claim group.
    pub beliefs: FxHashMap<(TripleKey, Value), f32>,
    /// Iterations executed.
    pub iterations: usize,
}

/// Estimate source reliabilities from agreement/disagreement over claims.
///
/// `priors` seeds reliabilities (defaults to 0.8 for unseen sources);
/// iteration stops after `max_iters` or when the largest reliability change
/// falls under `1e-4`.
pub fn estimate_source_reliability(
    claims: &[Claim],
    priors: &FxHashMap<SourceId, f32>,
    max_iters: usize,
) -> ReliabilityReport {
    let mut reliability: FxHashMap<SourceId, f32> = FxHashMap::default();
    for c in claims {
        reliability
            .entry(c.source)
            .or_insert_with(|| priors.get(&c.source).copied().unwrap_or(0.8));
    }

    // Group claims by fact key.
    let mut groups: FxHashMap<&TripleKey, Vec<&Claim>> = FxHashMap::default();
    for c in claims {
        groups.entry(&c.key).or_default().push(c);
    }

    let mut beliefs: FxHashMap<(TripleKey, Value), f32> = FxHashMap::default();
    let mut iterations = 0;
    for _ in 0..max_iters.max(1) {
        iterations += 1;
        // E-step: value beliefs from trust-weighted votes.
        beliefs.clear();
        for (key, group) in &groups {
            let mut votes: FxHashMap<&Value, f32> = FxHashMap::default();
            let mut total = 0.0f32;
            for c in group {
                let r = reliability[&c.source];
                *votes.entry(&c.value).or_insert(0.0) += r;
                total += r;
            }
            for (value, vote) in votes {
                let b = if total > 0.0 { vote / total } else { 0.0 };
                beliefs.insert(((*key).clone(), value.clone()), b);
            }
        }
        // M-step: source reliability = mean belief of its claims, damped to
        // keep single-source facts from saturating trust.
        let mut delta = 0.0f32;
        let mut sums: FxHashMap<SourceId, (f32, usize)> = FxHashMap::default();
        for c in claims {
            let b = beliefs[&(c.key.clone(), c.value.clone())];
            let e = sums.entry(c.source).or_insert((0.0, 0));
            e.0 += b;
            e.1 += 1;
        }
        for (src, (sum, n)) in sums {
            let fresh = (sum / n as f32).clamp(0.05, 0.99);
            let old = reliability[&src];
            let damped = 0.5 * old + 0.5 * fresh;
            delta = delta.max((damped - old).abs());
            reliability.insert(src, damped);
        }
        if delta < 1e-4 {
            break;
        }
    }

    ReliabilityReport {
        reliability,
        beliefs,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_core::{intern, EntityId, SubjectRef};

    fn key(e: u64, pred: &str) -> TripleKey {
        TripleKey {
            subject: SubjectRef::Kg(EntityId(e)),
            predicate: intern(pred),
            rel: None,
        }
    }

    fn claim(e: u64, pred: &str, v: &str, src: u32) -> Claim {
        Claim {
            key: key(e, pred),
            value: Value::str(v),
            source: SourceId(src),
        }
    }

    #[test]
    fn majority_agreement_raises_belief() {
        // Sources 1,2 agree on "1988"; source 3 says "1990".
        let claims = vec![
            claim(1, "birthdate", "1988", 1),
            claim(1, "birthdate", "1988", 2),
            claim(1, "birthdate", "1990", 3),
        ];
        let report = estimate_source_reliability(&claims, &FxHashMap::default(), 20);
        let b_true = report.beliefs[&(key(1, "birthdate"), Value::str("1988"))];
        let b_false = report.beliefs[&(key(1, "birthdate"), Value::str("1990"))];
        assert!(b_true > b_false);
        assert!(b_true > 0.6);
    }

    #[test]
    fn chronically_wrong_source_loses_reliability() {
        // Source 9 disagrees with the pair {1,2} on many facts.
        let mut claims = Vec::new();
        for e in 1..=10u64 {
            claims.push(claim(e, "name", "right", 1));
            claims.push(claim(e, "name", "right", 2));
            claims.push(claim(e, "name", "wrong", 9));
        }
        let report = estimate_source_reliability(&claims, &FxHashMap::default(), 30);
        let good = report.reliability[&SourceId(1)];
        let bad = report.reliability[&SourceId(9)];
        assert!(good > bad + 0.2, "good {good:.3} vs bad {bad:.3}");
    }

    #[test]
    fn priors_seed_the_fixed_point() {
        let claims = vec![claim(1, "p", "x", 1), claim(1, "p", "y", 2)];
        let mut priors = FxHashMap::default();
        priors.insert(SourceId(1), 0.95f32);
        priors.insert(SourceId(2), 0.3f32);
        let report = estimate_source_reliability(&claims, &priors, 10);
        // With a 1-1 split, the trusted prior's value should win.
        let bx = report.beliefs[&(key(1, "p"), Value::str("x"))];
        let by = report.beliefs[&(key(1, "p"), Value::str("y"))];
        assert!(bx > by);
    }

    #[test]
    fn converges_and_reports_iterations() {
        let claims = vec![claim(1, "p", "x", 1)];
        let report = estimate_source_reliability(&claims, &FxHashMap::default(), 50);
        assert!(report.iterations < 50, "single-claim system converges fast");
        assert!(report.reliability[&SourceId(1)] > 0.5);
    }

    #[test]
    fn empty_claims_are_fine() {
        let report = estimate_source_reliability(&[], &FxHashMap::default(), 5);
        assert!(report.reliability.is_empty());
        assert!(report.beliefs.is_empty());
    }
}
