//! Property-based tests for correlation clustering: resolution safety
//! invariants must hold for arbitrary linkage graphs (§2.3 step 5).

use proptest::prelude::*;
use saga_construct::{correlation_cluster, ClusterNode, LinkageGraph};
use saga_core::EntityId;

fn build_graph(n_source: usize, n_kg: usize, edges: &[(u8, u8)]) -> (LinkageGraph, usize) {
    let mut g = LinkageGraph::new();
    for i in 0..n_source {
        g.add_node(ClusterNode::Source(i));
    }
    for k in 0..n_kg {
        g.add_node(ClusterNode::Kg(EntityId(k as u64)));
    }
    let total = n_source + n_kg;
    let node = |i: usize| -> ClusterNode {
        if i < n_source {
            ClusterNode::Source(i)
        } else {
            ClusterNode::Kg(EntityId((i - n_source) as u64))
        }
    };
    for &(a, b) in edges {
        let (a, b) = (a as usize % total.max(1), b as usize % total.max(1));
        g.add_positive(node(a), node(b));
    }
    (g, total)
}

proptest! {
    /// Every node lands in exactly one cluster; no cluster holds two
    /// existing-KG entities; results are deterministic per seed.
    #[test]
    fn clustering_invariants(
        n_source in 1usize..12,
        n_kg in 0usize..6,
        edges in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40),
        seed in any::<u64>(),
    ) {
        let (g, total) = build_graph(n_source, n_kg, &edges);
        let clusters = correlation_cluster(&g, seed);

        // Partition: every node exactly once.
        let mut seen = std::collections::HashSet::new();
        for c in &clusters {
            prop_assert!(!c.is_empty(), "no empty clusters");
            for n in c {
                prop_assert!(seen.insert(*n), "node {n:?} in two clusters");
            }
        }
        prop_assert_eq!(seen.len(), total);

        // At most one KG entity per cluster (the §2.3 resolution constraint).
        for c in &clusters {
            let kg_nodes = c.iter().filter(|n| matches!(n, ClusterNode::Kg(_))).count();
            prop_assert!(kg_nodes <= 1, "cluster {c:?} holds {kg_nodes} KG entities");
        }

        // Determinism under the same seed.
        prop_assert_eq!(correlation_cluster(&g, seed), clusters);
    }

    /// Only positively-connected nodes may share a cluster: clustering
    /// never invents links (it may split, never join strangers).
    #[test]
    fn clusters_respect_positive_edges(
        n_source in 2usize..10,
        edges in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..25),
        seed in any::<u64>(),
    ) {
        let (g, _) = build_graph(n_source, 0, &edges);
        let positive: std::collections::HashSet<(usize, usize)> = edges
            .iter()
            .map(|&(a, b)| {
                let (a, b) = (a as usize % n_source, b as usize % n_source);
                (a.min(b), a.max(b))
            })
            .collect();
        for c in correlation_cluster(&g, seed) {
            let ids: Vec<usize> = c
                .iter()
                .map(|n| match n {
                    ClusterNode::Source(i) => *i,
                    ClusterNode::Kg(_) => unreachable!("no KG nodes added"),
                })
                .collect();
            // Pivot clustering joins a pivot with its *direct* neighbours:
            // every member must share a positive edge with some member.
            if ids.len() > 1 {
                for &m in &ids {
                    let connected = ids
                        .iter()
                        .any(|&o| o != m && positive.contains(&(m.min(o), m.max(o))));
                    prop_assert!(connected, "member {m} has no edge into its cluster");
                }
            }
        }
    }
}
