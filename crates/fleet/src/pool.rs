//! The fleet's data plane: serving slots and their replay workers.
//!
//! Each slot owns one [`LiveReplica`] tailing the shared
//! [`OperationLog`] on its own worker thread — bounded
//! [`catch_up_batch`](LiveReplica::catch_up_batch) polls so the log lock
//! is never held long, a per-worker phase offset so the fleet's polls are
//! spread across the poll interval, and a heartbeat/watermark pair
//! published with plain atomics so routing and health checks never take a
//! lock on the serving path.
//!
//! # The no-stale-pin protocol
//!
//! A routed read pins a slot's engine (increments `inflight`, clones the
//! engine `Arc`), then **re-checks** state and watermark. Draining stores
//! `DRAINING` *before* waiting for `inflight == 0`; both sides use
//! `SeqCst`, so if the reader's re-check still observes `SERVING`, the
//! drain had not started and must subsequently wait for this pin to drop —
//! the engine swap cannot happen under a pinned read, and a session read
//! that re-verified `watermark >= token` keeps that guarantee for the
//! engine it actually holds. A re-check that observes anything else
//! releases the pin and re-routes.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use saga_core::{GraphRead, Lsn, Result, SagaError};
use saga_graph::OperationLog;
use saga_live::{LiveKg, LiveReplica, QueryEngine};

use crate::FleetConfig;

/// Slot lifecycle, published as one atomic byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaState {
    /// Caught up enough to serve (subject to the router's lag bound).
    Serving,
    /// Excluded from new reads; in-flight reads are finishing.
    Draining,
    /// Worker dead (panicked, wedged-and-killed, or shut down).
    Down,
}

const STATE_SERVING: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_DOWN: u8 = 2;

/// Externally injectable worker failures, for fault drills and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaFault {
    /// The worker panics at its next loop iteration — the crashed-replica
    /// drill. The slot's drop guard records the death as `Down`.
    Panic,
    /// The worker stops replaying and stops heartbeating but stays alive —
    /// the stuck-I/O drill a liveness check must catch, since the thread
    /// never exits on its own.
    Wedge,
}

const FAULT_NONE: u8 = 0;
const FAULT_PANIC: u8 = 1;
const FAULT_WEDGE: u8 = 2;

/// One serving slot: a query engine over a replica store, plus the
/// atomics its worker publishes and its supervisor reads.
pub(crate) struct Slot {
    pub(crate) id: usize,
    /// The serving engine. Swapped only on respawn, and only while no
    /// read pins it (see the module docs); readers clone the `Arc` out
    /// under a brief read lock.
    engine: RwLock<Arc<QueryEngine<LiveKg>>>,
    /// Mirror of the replica's applied watermark, stored `Release` by the
    /// worker after each applied batch — routing reads this, never the
    /// replica.
    pub(crate) watermark: AtomicU64,
    /// Sum of the generations of this slot's *previous* engines: added to
    /// the live engine's generation it keeps the slot (and fleet)
    /// generation monotone across respawns, so plan caches keyed on it
    /// can never revalidate against a reborn store.
    pub(crate) gen_floor: AtomicU64,
    state: AtomicU8,
    fault: AtomicU8,
    kill: AtomicBool,
    /// Reads currently pinned to this slot's engine.
    pub(crate) inflight: AtomicU64,
    /// Queries served (successfully) by this slot.
    pub(crate) served: AtomicU64,
    /// Query errors plus worker panics attributed to this slot.
    pub(crate) errors: AtomicU64,
    /// Times this slot has been respawned.
    pub(crate) respawns: AtomicU64,
    /// Bumped every worker loop iteration; a frozen heartbeat is the
    /// wedge signal.
    pub(crate) heartbeat: AtomicU64,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Slot {
    fn new(id: usize, engine: QueryEngine<LiveKg>, watermark: Lsn) -> Arc<Self> {
        Arc::new(Slot {
            id,
            engine: RwLock::new(Arc::new(engine)),
            watermark: AtomicU64::new(watermark.0),
            gen_floor: AtomicU64::new(0),
            state: AtomicU8::new(STATE_SERVING),
            fault: AtomicU8::new(FAULT_NONE),
            kill: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            heartbeat: AtomicU64::new(0),
            worker: Mutex::new(None),
        })
    }

    pub(crate) fn state(&self) -> ReplicaState {
        match self.state.load(Ordering::SeqCst) {
            STATE_SERVING => ReplicaState::Serving,
            STATE_DRAINING => ReplicaState::Draining,
            _ => ReplicaState::Down,
        }
    }

    pub(crate) fn is_serving(&self) -> bool {
        self.state.load(Ordering::SeqCst) == STATE_SERVING
    }

    /// Clone the serving engine out (brief read lock, no contention with
    /// the worker, which never touches the engine lock).
    pub(crate) fn engine(&self) -> Arc<QueryEngine<LiveKg>> {
        Arc::clone(&self.engine.read())
    }

    /// This slot's generation: the floor accumulated over dead engines
    /// plus the live engine's own counter.
    pub(crate) fn generation(&self) -> u64 {
        self.gen_floor.load(Ordering::Relaxed) + self.engine().graph().generation()
    }

    /// Exclude the slot from new reads and wait (bounded) for pinned
    /// reads to finish. `SeqCst` pairs with the router's pin re-check.
    fn drain(&self, timeout: Duration) {
        self.state.store(STATE_DRAINING, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + timeout;
        while self.inflight.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Tell the worker to exit and join it. Panicked workers were already
    /// recorded by their drop guard; the join result is irrelevant.
    fn stop_worker(&self) {
        self.kill.store(true, Ordering::SeqCst);
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
        self.state.store(STATE_DOWN, Ordering::SeqCst);
    }
}

/// Sets the slot `Down` when the worker exits for *any* reason — clean
/// kill or panic — so the controller sees every death the same way.
struct DownOnExit(Arc<Slot>);

impl Drop for DownOnExit {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.0.state.store(STATE_DOWN, Ordering::SeqCst);
    }
}

/// The fleet's slots plus the shared log and checkpoint directory they
/// bootstrap from. Construct with [`ReplicaPool::start`]; route through
/// [`FleetRouter`](crate::FleetRouter) — the pool itself exposes no
/// per-replica query surface.
pub struct ReplicaPool {
    cfg: FleetConfig,
    log: Arc<OperationLog>,
    ckpt_dir: PathBuf,
    slots: Vec<Arc<Slot>>,
    /// Reads not routed to some replica because it trailed the fleet
    /// median by more than the lag bound.
    pub(crate) lag_skips: AtomicU64,
    /// Reads not routed to some replica because it had not reached the
    /// session token's LSN.
    pub(crate) session_skips: AtomicU64,
    /// Rotates the tie-break among equally-loaded fresh replicas.
    pub(crate) rr: AtomicU64,
}

impl ReplicaPool {
    /// Boot `cfg.replicas` slots against `log`, each bootstrapping from
    /// the newest usable checkpoint in `ckpt_dir` (created if missing)
    /// and then tailing the log on its own worker thread.
    pub fn start(
        cfg: FleetConfig,
        log: Arc<OperationLog>,
        ckpt_dir: impl Into<PathBuf>,
    ) -> Result<Arc<Self>> {
        let cfg = cfg.validated();
        let ckpt_dir = ckpt_dir.into();
        std::fs::create_dir_all(&ckpt_dir)?;
        let mut slots = Vec::with_capacity(cfg.replicas);
        for id in 0..cfg.replicas {
            let replica = LiveReplica::bootstrap(cfg.shards, &ckpt_dir, Arc::clone(&log))?;
            let slot = Slot::new(
                id,
                QueryEngine::new(replica.live().clone()),
                replica.watermark(),
            );
            let offset = if cfg.stagger_polls {
                cfg.poll_interval * id as u32 / cfg.replicas as u32
            } else {
                Duration::ZERO
            };
            let handle = spawn_worker(Arc::clone(&slot), replica, cfg.clone(), offset);
            *slot.worker.lock() = Some(handle);
            slots.push(slot);
        }
        Ok(Arc::new(ReplicaPool {
            cfg,
            log,
            ckpt_dir,
            slots,
            lag_skips: AtomicU64::new(0),
            session_skips: AtomicU64::new(0),
            rr: AtomicU64::new(0),
        }))
    }

    /// Number of slots (fixed for the pool's lifetime).
    pub fn replicas(&self) -> usize {
        self.slots.len()
    }

    /// The fleet's tuning knobs.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The shared log every replica tails.
    pub fn log(&self) -> &Arc<OperationLog> {
        &self.log
    }

    /// Where respawns look for checkpoint artifacts.
    pub fn checkpoint_dir(&self) -> &Path {
        &self.ckpt_dir
    }

    pub(crate) fn slots(&self) -> &[Arc<Slot>] {
        &self.slots
    }

    fn slot(&self, id: usize) -> Result<&Arc<Slot>> {
        self.slots.get(id).ok_or_else(|| {
            SagaError::Storage(format!(
                "no replica {id} in a fleet of {}",
                self.slots.len()
            ))
        })
    }

    /// Inject a worker failure into replica `id` (fault drills).
    pub fn inject_fault(&self, id: usize, fault: ReplicaFault) -> Result<()> {
        let byte = match fault {
            ReplicaFault::Panic => FAULT_PANIC,
            ReplicaFault::Wedge => FAULT_WEDGE,
        };
        self.slot(id)?.fault.store(byte, Ordering::SeqCst);
        Ok(())
    }

    /// Clear an injected fault; a wedged (but not panicked) worker
    /// resumes replaying on its own.
    pub fn clear_fault(&self, id: usize) -> Result<()> {
        self.slot(id)?.fault.store(FAULT_NONE, Ordering::SeqCst);
        Ok(())
    }

    /// Hard-stop replica `id`: drain briefly, kill its worker, mark it
    /// `Down`. The slot serves nothing until [`respawn`](Self::respawn).
    pub fn kill(&self, id: usize) -> Result<()> {
        let slot = self.slot(id)?;
        slot.drain(self.cfg.drain_timeout);
        slot.stop_worker();
        Ok(())
    }

    /// Drain replica `id` (used by the controller before respawning a
    /// wedged worker, so pinned reads finish first).
    pub(crate) fn drain(&self, id: usize) -> Result<()> {
        self.slot(id)?.drain(self.cfg.drain_timeout);
        Ok(())
    }

    /// Rebuild replica `id` from the newest usable checkpoint plus the
    /// log tail, swap it into the slot and restart its worker. The dead
    /// engine's generation folds into the slot's floor first, so the
    /// slot-level generation stays monotone across the swap.
    pub fn respawn(&self, id: usize) -> Result<()> {
        let slot = self.slot(id)?;
        slot.stop_worker();
        let dead_gen = slot.engine().graph().generation();
        slot.gen_floor.fetch_add(dead_gen, Ordering::Relaxed);
        let replica =
            LiveReplica::bootstrap(self.cfg.shards, &self.ckpt_dir, Arc::clone(&self.log))?;
        slot.watermark
            .store(replica.watermark().0, Ordering::SeqCst);
        *slot.engine.write() = Arc::new(QueryEngine::new(replica.live().clone()));
        slot.fault.store(FAULT_NONE, Ordering::SeqCst);
        slot.kill.store(false, Ordering::SeqCst);
        slot.respawns.fetch_add(1, Ordering::Relaxed);
        // Serving from here on; the router's lag bound keeps routed reads
        // away until the fresh replica is within bound of the median.
        slot.state.store(STATE_SERVING, Ordering::SeqCst);
        let handle = spawn_worker(Arc::clone(slot), replica, self.cfg.clone(), Duration::ZERO);
        *slot.worker.lock() = Some(handle);
        Ok(())
    }

    /// Stop every worker. Also runs on drop; explicit shutdown just makes
    /// the join point visible.
    pub fn shutdown(&self) {
        for slot in &self.slots {
            slot.kill.store(true, Ordering::SeqCst);
        }
        for slot in &self.slots {
            slot.stop_worker();
        }
    }
}

impl Drop for ReplicaPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The replay worker: applies log batches to its replica, publishes the
/// watermark, heartbeats, sleeps one poll interval when caught up.
fn spawn_worker(
    slot: Arc<Slot>,
    mut replica: LiveReplica,
    cfg: FleetConfig,
    phase_offset: Duration,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("fleet-replica-{}", slot.id))
        .spawn(move || {
            let guard = DownOnExit(Arc::clone(&slot));
            if !phase_offset.is_zero() {
                std::thread::sleep(phase_offset);
            }
            loop {
                if slot.kill.load(Ordering::SeqCst) {
                    break;
                }
                match slot.fault.load(Ordering::SeqCst) {
                    FAULT_PANIC => panic!("injected fault: replica {} worker panic", slot.id),
                    FAULT_WEDGE => {
                        // Alive but not replaying and not heartbeating;
                        // short naps keep the kill flag responsive.
                        std::thread::sleep(Duration::from_micros(200));
                        continue;
                    }
                    _ => {}
                }
                // Failpoint drills: an injected error kills this worker
                // exactly like a replay failure (the controller respawns
                // it from a checkpoint), an injected panic exercises the
                // drop-guard death path, an injected delay wedges the
                // worker for the wedge detector to catch.
                if saga_core::fail::check_scoped(
                    saga_core::fail::sites::FLEET_WORKER_POLL,
                    &cfg.fail_scope,
                )
                .is_err()
                {
                    slot.errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                slot.heartbeat.fetch_add(1, Ordering::Relaxed);
                match replica.catch_up_batch(cfg.replay_batch) {
                    Ok(0) => std::thread::sleep(cfg.poll_interval),
                    Ok(_) => {
                        // Publish *after* the batch is applied: a router
                        // that observes watermark >= w is guaranteed the
                        // engine serves every op <= w.
                        slot.watermark
                            .store(replica.watermark().0, Ordering::SeqCst);
                    }
                    Err(_) => {
                        // Replay failure (e.g. the prefix was compacted
                        // away under us): this replica can no longer
                        // converge — die and let the controller respawn
                        // it from a checkpoint.
                        slot.errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            drop(guard);
        })
        .expect("spawn fleet replica worker")
}
