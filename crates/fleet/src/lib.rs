//! # saga-fleet
//!
//! The replicated serving fleet (§3.1 log shipping + §4.1 "the indexes are
//! sharded and can be replicated to support scale-out"): N log-shipped
//! [`LiveReplica`](saga_live::LiveReplica)s behind one lag-aware router,
//! supervised by a control plane that checkpoints the log and respawns
//! failed replicas from those checkpoints.
//!
//! * [`pool`] — the data plane: a [`ReplicaPool`] of serving slots, each
//!   owning a replica tailed by its own replay worker thread (bounded
//!   [`catch_up_batch`](saga_live::LiveReplica::catch_up_batch) polls with
//!   staggered phases, lock-free health publication).
//! * [`router`] — [`FleetRouter`]: the single external query surface. It
//!   routes each read to a *fresh* replica — never one trailing the fleet
//!   median watermark by more than [`FleetConfig::lag_bound`] — preferring
//!   the least-loaded among the fresh, and honors
//!   [`SessionToken`](saga_core::SessionToken)s so a client's reads are
//!   served only by replicas that have replayed the client's own commits
//!   (read-your-writes).
//! * [`controller`] — the control plane: [`FleetController`] observes
//!   per-slot heartbeats and watermarks, detects panicked and wedged
//!   workers, drains and respawns them via checkpoint bootstrap, and runs
//!   [`checkpoint_and_compact`](saga_graph::CheckpointWriter::checkpoint_and_compact)
//!   on a log-growth cadence so respawn stays `O(live data + tail)`.
//!
//! The fleet is deliberately single-process here (threads, not boxes), but
//! every boundary mirrors the paper's deployment shape: replicas see only
//! the shared [`OperationLog`](saga_graph::OperationLog) and checkpoint
//! artifacts, never the construction-side graph.

pub mod controller;
pub mod pool;
pub mod router;

use std::time::Duration;

pub use controller::{FleetController, FleetStats, ReplicaHealth, TickReport};
pub use pool::{ReplicaFault, ReplicaPool, ReplicaState};
pub use router::{FleetRouter, RoutedRead, SessionWaitConfig};

/// Tuning knobs for a serving fleet. `Default` is sized for tests and
/// single-machine serving; production fleets raise `replicas` and
/// `checkpoint_every`.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of serving replicas (slots). Clamped to at least 1.
    pub replicas: usize,
    /// Lock stripes per replica store (see [`saga_live::LiveKg`]).
    pub shards: usize,
    /// Max operations one replay poll applies before re-checking health
    /// and shutdown flags — bounds how long a worker holds the log lock.
    pub replay_batch: usize,
    /// How long a caught-up worker sleeps before polling the log again.
    /// This is the fleet's freshness floor: a commit becomes visible on
    /// some replica within one poll interval (divided by `replicas` when
    /// `stagger_polls` is on).
    pub poll_interval: Duration,
    /// Offset each worker's poll phase by `i/N` of the interval so the
    /// fleet's polls are spread evenly in time instead of stampeding
    /// together — the expected commit-to-visibility wait drops from
    /// `poll_interval / 2` to `poll_interval / 2N`.
    pub stagger_polls: bool,
    /// Max operations a replica may trail the fleet **median** watermark
    /// and still receive routed reads. The median (not the max) anchors
    /// the bound so one far-ahead replica cannot starve the rest.
    pub lag_bound: u64,
    /// How long a session read waits for some replica to reach the
    /// session's LSN before failing with a timeout error.
    pub session_timeout: Duration,
    /// A worker whose heartbeat and watermark both freeze for this long
    /// while the log is ahead of it is declared wedged and respawned.
    pub wedge_timeout: Duration,
    /// How long a drain waits for in-flight reads to finish before the
    /// slot is respawned anyway.
    pub drain_timeout: Duration,
    /// Checkpoint-and-compact once the log head has advanced this many
    /// operations past the last checkpoint watermark.
    pub checkpoint_every: u64,
    /// Failpoint scope for this fleet's workers: chaos drills running
    /// several fleets in one process arm `fleet::worker_poll` for one
    /// fleet by matching this label (see `saga_core::fail`). Empty —
    /// the default — matches only unscoped configurations.
    pub fail_scope: String,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas: 2,
            shards: 8,
            replay_batch: 1024,
            poll_interval: Duration::from_millis(2),
            stagger_polls: true,
            lag_bound: 512,
            session_timeout: Duration::from_secs(2),
            wedge_timeout: Duration::from_millis(250),
            drain_timeout: Duration::from_millis(100),
            checkpoint_every: 4096,
            fail_scope: String::new(),
        }
    }
}

impl FleetConfig {
    /// The default config with `replicas` slots.
    pub fn with_replicas(replicas: usize) -> Self {
        FleetConfig {
            replicas,
            ..FleetConfig::default()
        }
    }

    /// The fleet's default bounded-wait policy for session reads, derived
    /// from [`session_timeout`](Self::session_timeout). Callers that need a
    /// per-request deadline (e.g. a network server mapping the wait to a
    /// retryable wire response) build their own [`SessionWaitConfig`] and
    /// use [`FleetRouter::read_with_session_wait`](crate::FleetRouter::read_with_session_wait).
    pub fn session_wait(&self) -> SessionWaitConfig {
        SessionWaitConfig::with_timeout(self.session_timeout)
    }

    pub(crate) fn validated(mut self) -> Self {
        self.replicas = self.replicas.max(1);
        self.shards = self.shards.max(1);
        self.replay_batch = self.replay_batch.max(1);
        self
    }
}
