//! Lag-aware routing with read-your-writes sessions.
//!
//! [`FleetRouter`] is the fleet's only external query surface. Every read
//! picks a replica in three lock-free steps over the slots' published
//! watermarks:
//!
//! 1. **freshness** — compute the median watermark of the serving slots
//!    and drop any slot trailing it by more than
//!    [`FleetConfig::lag_bound`](crate::FleetConfig::lag_bound) (counted
//!    in [`FleetStats::lag_skips`](crate::FleetStats));
//! 2. **session** — with a [`SessionToken`], drop slots whose watermark
//!    is below the token's LSN (counted in `session_skips`), so a client
//!    never observes a store missing its own committed writes;
//! 3. **load** — among the survivors, pick the fewest in-flight reads,
//!    rotating the tie-break so equal loads spread round-robin.
//!
//! A session read with *no* eligible replica waits (bounded by
//! [`FleetConfig::session_timeout`](crate::FleetConfig::session_timeout))
//! for some replica's replay worker to reach the LSN — commits become
//! visible within about one poll interval, so the wait is short unless
//! the fleet is down or wedged.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use saga_core::{
    EntityId, EntityRecord, GraphRead, Lsn, PostingsCursor, ProbeKey, Result, SagaError,
    SessionToken,
};
use saga_live::{LiveKg, QueryEngine, QueryResult};

use crate::pool::{ReplicaPool, Slot};

/// How often a blocked session read re-checks the fleet's watermarks.
const WAIT_POLL: Duration = Duration::from_micros(100);

/// Bounded-wait policy for session-constrained reads: how long a read may
/// block waiting for some replica to reach the session's LSN, and how
/// often it re-checks the published watermarks while blocked. The fleet's
/// default comes from [`FleetConfig::session_timeout`](crate::FleetConfig);
/// per-request policies (a network server giving each wire request its own
/// deadline, a latency-sensitive caller preferring fail-fast) construct
/// their own and call the `*_wait` router entry points. A timeout
/// surfaces as the *typed*, retryable
/// [`SagaError::Unavailable`] — never a generic storage error — so
/// callers can distinguish "try again shortly" from "broken".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionWaitConfig {
    /// Maximum total wait for a replica to reach the session LSN.
    pub timeout: Duration,
    /// How often the blocked read re-checks the watermarks.
    pub poll: Duration,
}

impl Default for SessionWaitConfig {
    fn default() -> Self {
        SessionWaitConfig {
            timeout: Duration::from_secs(2),
            poll: WAIT_POLL,
        }
    }
}

impl SessionWaitConfig {
    /// The default poll cadence with a caller-chosen total timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        SessionWaitConfig {
            timeout,
            ..SessionWaitConfig::default()
        }
    }

    /// Fail immediately when no replica satisfies the session — the
    /// routing filters still run once, but nothing blocks.
    pub fn no_wait() -> Self {
        SessionWaitConfig::with_timeout(Duration::ZERO)
    }
}

/// The fleet's query front door. Cheap to clone (a handle over the shared
/// pool); all clones share routing counters.
#[derive(Clone)]
pub struct FleetRouter {
    pool: Arc<ReplicaPool>,
}

impl FleetRouter {
    /// A router over `pool`.
    pub fn new(pool: Arc<ReplicaPool>) -> Self {
        FleetRouter { pool }
    }

    /// The routed pool.
    pub fn pool(&self) -> &Arc<ReplicaPool> {
        &self.pool
    }

    /// Route one KGQ query to a fresh replica.
    pub fn query(&self, text: &str) -> Result<QueryResult> {
        self.read()?.query(text)
    }

    /// Route one KGQ query for a session: served only by a replica that
    /// has replayed at least the session's LSN (read-your-writes), with
    /// the fleet's default bounded wait.
    pub fn query_with_session(&self, text: &str, token: &SessionToken) -> Result<QueryResult> {
        self.read_with_session(token)?.query(text)
    }

    /// [`query_with_session`](Self::query_with_session) with an explicit
    /// per-request wait policy.
    pub fn query_with_session_wait(
        &self,
        text: &str,
        token: &SessionToken,
        wait: &SessionWaitConfig,
    ) -> Result<QueryResult> {
        self.read_with_session_wait(token, wait)?.query(text)
    }

    /// Pin a fresh replica for a sequence of reads (see [`RoutedRead`]).
    pub fn read(&self) -> Result<RoutedRead> {
        self.pick_pinned(None).ok_or_else(|| {
            SagaError::Unavailable("fleet has no serving replica within the lag bound".into())
        })
    }

    /// Pin a replica at or past the session's LSN, waiting up to the
    /// fleet's configured session timeout for one to catch up.
    pub fn read_with_session(&self, token: &SessionToken) -> Result<RoutedRead> {
        self.read_with_session_wait(token, &self.pool.config().session_wait())
    }

    /// Pin a replica at or past the session's LSN under an explicit
    /// [`SessionWaitConfig`]. Exhausting the wait yields the typed,
    /// retryable [`SagaError::Unavailable`] — the caller (or a network
    /// server translating it into a retryable wire response) knows the
    /// fleet is merely behind, not broken.
    pub fn read_with_session_wait(
        &self,
        token: &SessionToken,
        wait: &SessionWaitConfig,
    ) -> Result<RoutedRead> {
        let deadline = Instant::now() + wait.timeout;
        loop {
            if let Some(read) = self.pick_pinned(Some(token.lsn())) {
                return Ok(read);
            }
            if Instant::now() >= deadline {
                return Err(SagaError::Unavailable(format!(
                    "session read timed out: no replica reached lsn {} within {:?}",
                    token.lsn().0,
                    wait.timeout
                )));
            }
            std::thread::sleep(wait.poll.max(Duration::from_micros(1)));
        }
    }

    /// Block until some serving replica has replayed `lsn` (or time out).
    /// The freshness primitive under session reads, usable standalone for
    /// barrier-style "wait until the fleet has my write" coordination.
    pub fn wait_for_lsn(&self, lsn: Lsn, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            let reached = self
                .pool
                .slots()
                .iter()
                .any(|s| s.is_serving() && s.watermark.load(Ordering::SeqCst) >= lsn.0);
            if reached {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(SagaError::Unavailable(format!(
                    "no serving replica reached lsn {} within {timeout:?}",
                    lsn.0
                )));
            }
            std::thread::sleep(WAIT_POLL);
        }
    }

    /// One routing decision: filter by freshness (median − lag bound) and
    /// session LSN over the published watermarks, then pick the least
    /// loaded survivor and pin it. Returns `None` when no serving slot
    /// qualifies.
    fn pick_pinned(&self, min_lsn: Option<Lsn>) -> Option<RoutedRead> {
        'route: loop {
            let slots = self.pool.slots();
            let mut fresh: Vec<(&Arc<Slot>, u64)> = slots
                .iter()
                .filter(|s| s.is_serving())
                .map(|s| (s, s.watermark.load(Ordering::SeqCst)))
                .collect();
            if fresh.is_empty() {
                return None;
            }
            let mut marks: Vec<u64> = fresh.iter().map(|(_, w)| *w).collect();
            marks.sort_unstable();
            let median = marks[marks.len() / 2];
            let bound = self.pool.config().lag_bound;
            let before = fresh.len();
            fresh.retain(|(_, w)| median.saturating_sub(*w) <= bound);
            self.pool
                .lag_skips
                .fetch_add((before - fresh.len()) as u64, Ordering::Relaxed);
            if let Some(min) = min_lsn {
                let before = fresh.len();
                fresh.retain(|(_, w)| *w >= min.0);
                self.pool
                    .session_skips
                    .fetch_add((before - fresh.len()) as u64, Ordering::Relaxed);
            }
            if fresh.is_empty() {
                return None;
            }
            // Least-loaded, with a rotating start so ties round-robin.
            let rot = self.pool.rr.fetch_add(1, Ordering::Relaxed) as usize;
            let n = fresh.len();
            let mut best: Option<&Arc<Slot>> = None;
            let mut best_load = u64::MAX;
            for k in 0..n {
                let (slot, _) = fresh[(rot + k) % n];
                let load = slot.inflight.load(Ordering::Relaxed);
                if load < best_load {
                    best_load = load;
                    best = Some(slot);
                }
            }
            let slot = Arc::clone(best?);

            // Pin, then re-check: see the pool module docs. A slot that
            // was drained or respawned between the scan and the pin is
            // released and routing retries from scratch.
            slot.inflight.fetch_add(1, Ordering::SeqCst);
            let still_fresh = min_lsn
                .map(|min| slot.watermark.load(Ordering::SeqCst) >= min.0)
                .unwrap_or(true);
            if !slot.is_serving() || !still_fresh {
                slot.inflight.fetch_sub(1, Ordering::SeqCst);
                continue 'route;
            }
            let engine = slot.engine();
            return Some(RoutedRead { slot, engine });
        }
    }

    /// The engine routing would pick right now, with a best-effort
    /// fallback to the freshest slot regardless of state — `GraphRead`
    /// has no error channel, and a raw read against a draining store is
    /// merely conservative, never wrong.
    fn route_engine(&self) -> Arc<QueryEngine<LiveKg>> {
        if let Some(read) = self.pick_pinned(None) {
            return Arc::clone(&read.engine);
        }
        let slots = self.pool.slots();
        let freshest = slots
            .iter()
            .max_by_key(|s| s.watermark.load(Ordering::SeqCst))
            .expect("a fleet has at least one replica");
        freshest.engine()
    }
}

/// `GraphRead` over the fleet: each call routes like a query. The fleet
/// generation is the sum of the slot generations (each monotone across
/// respawns via its floor), so cached plans can never revalidate against
/// a store that was rebuilt under them.
impl GraphRead for FleetRouter {
    fn postings_cursor(&self, probe: &ProbeKey) -> PostingsCursor {
        self.route_engine().graph().postings_cursor(probe)
    }

    fn postings(&self, probe: &ProbeKey) -> Vec<EntityId> {
        self.route_engine().graph().postings(probe)
    }

    fn selectivity(&self, probe: &ProbeKey) -> usize {
        self.route_engine().graph().selectivity(probe)
    }

    fn probe_contains(&self, probe: &ProbeKey, id: EntityId) -> bool {
        self.route_engine().graph().probe_contains(probe, id)
    }

    fn probe_fingerprint(&self, probe: &ProbeKey) -> u64 {
        self.route_engine().graph().probe_fingerprint(probe)
    }

    fn probe_fingerprints(&self, probes: &[&ProbeKey]) -> Vec<u64> {
        self.route_engine().graph().probe_fingerprints(probes)
    }

    fn resolve_name(&self, name: &str) -> Vec<EntityId> {
        self.route_engine().graph().resolve_name(name)
    }

    fn record(&self, id: EntityId) -> Option<EntityRecord> {
        self.route_engine().graph().record(id)
    }

    fn contains(&self, id: EntityId) -> bool {
        self.route_engine().graph().contains(id)
    }

    fn generation(&self) -> u64 {
        self.pool.slots().iter().map(|s| s.generation()).sum()
    }

    fn probe_all(&self, probes: &[ProbeKey]) -> Vec<EntityId> {
        self.route_engine().graph().probe_all(probes)
    }
}

/// A read pinned to one replica: holds the slot's engine (so a respawn
/// can never swap the store mid-read) and an in-flight count (so drains
/// wait for it). Drop to release.
pub struct RoutedRead {
    slot: Arc<Slot>,
    engine: Arc<QueryEngine<LiveKg>>,
}

impl RoutedRead {
    /// Which replica this read landed on.
    pub fn replica(&self) -> usize {
        self.slot.id
    }

    /// The pinned replica's applied watermark at pin time or later.
    pub fn watermark(&self) -> Lsn {
        Lsn(self.slot.watermark.load(Ordering::SeqCst))
    }

    /// The pinned engine (plan cache included).
    pub fn engine(&self) -> &QueryEngine<LiveKg> {
        &self.engine
    }

    /// The pinned serving store.
    pub fn graph(&self) -> &LiveKg {
        self.engine.graph()
    }

    /// Run one KGQ query on the pinned replica, attributing the outcome
    /// to its served/error counters.
    pub fn query(&self, text: &str) -> Result<QueryResult> {
        let out = self.engine.query(text);
        match &out {
            Ok(_) => self.slot.served.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.slot.errors.fetch_add(1, Ordering::Relaxed),
        };
        out
    }
}

impl Drop for RoutedRead {
    fn drop(&mut self) {
        self.slot.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}
