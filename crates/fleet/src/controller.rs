//! The fleet's control plane: health, failure detection, respawn,
//! checkpoint cadence.
//!
//! [`FleetController::tick`] is one supervision pass — deliberately a
//! plain method, so tests and schedulers drive it deterministically:
//!
//! 1. **checkpoint cadence** — once the log head has advanced
//!    [`checkpoint_every`](crate::FleetConfig::checkpoint_every) ops past
//!    the last artifact,
//!    [`checkpoint_and_compact`](CheckpointWriter::checkpoint_and_compact)
//!    writes a new artifact and prunes the replayed prefix — keeping
//!    respawn `O(live data + tail)` and the log bounded;
//! 2. **death detection** — slots whose worker exited (panic, replay
//!    error, kill) are `Down` via their drop guard and are respawned from
//!    the newest checkpoint;
//! 3. **wedge detection** — a slot whose heartbeat *and* watermark have
//!    both been frozen for longer than
//!    [`wedge_timeout`](crate::FleetConfig::wedge_timeout) while the log
//!    is ahead of it is stuck, not idle: it is drained (in-flight reads
//!    finish) and respawned.
//!
//! [`FleetController::spawn_ticker`] runs the same pass on a fixed
//! interval for long-lived deployments.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use saga_core::{checkpoint, Lsn, Result};
use saga_graph::CheckpointWriter;

use crate::pool::{ReplicaPool, ReplicaState};

/// Last-observed progress of one slot, for wedge detection.
struct Observed {
    heartbeat: u64,
    watermark: u64,
    since: Instant,
}

/// The supervisor: owns failure detection and the checkpoint cadence for
/// one [`ReplicaPool`].
pub struct FleetController {
    pool: Arc<ReplicaPool>,
    ckpt: Option<CheckpointWriter>,
    /// Watermark of the newest checkpoint artifact (0 when none).
    last_ckpt: AtomicU64,
    /// Checkpoints taken by this controller.
    checkpoints: AtomicU64,
    observed: Mutex<Vec<Observed>>,
}

impl FleetController {
    /// A controller that supervises workers but never checkpoints (no
    /// producer-side writer available — e.g. a read-only serving tier).
    pub fn new(pool: Arc<ReplicaPool>) -> Self {
        let observed = pool
            .slots()
            .iter()
            .map(|s| Observed {
                heartbeat: s.heartbeat.load(Ordering::Relaxed),
                watermark: s.watermark.load(Ordering::SeqCst),
                since: Instant::now(),
            })
            .collect();
        FleetController {
            pool,
            ckpt: None,
            last_ckpt: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            observed: Mutex::new(observed),
        }
    }

    /// A controller that also owns the checkpoint cadence. `writer` must
    /// target the pool's checkpoint directory so respawns find the
    /// artifacts it writes. The cadence resumes from the newest existing
    /// artifact's watermark.
    pub fn with_checkpointer(pool: Arc<ReplicaPool>, writer: CheckpointWriter) -> Self {
        let mut controller = Self::new(pool);
        let newest = checkpoint::artifacts(controller.pool.checkpoint_dir())
            .ok()
            .and_then(|infos| infos.last().map(|i| i.watermark))
            .unwrap_or(Lsn::ZERO);
        controller.last_ckpt = AtomicU64::new(newest.0);
        controller.ckpt = Some(writer);
        controller
    }

    /// The supervised pool.
    pub fn pool(&self) -> &Arc<ReplicaPool> {
        &self.pool
    }

    /// One supervision pass; see the module docs for the three steps.
    pub fn tick(&self) -> Result<TickReport> {
        let mut report = TickReport::default();

        // 1. Checkpoint cadence — before respawns, so a respawn in the
        // same tick bootstraps from the freshest possible artifact.
        if let Some(writer) = &self.ckpt {
            let head = self.pool.log().head().0;
            if head.saturating_sub(self.last_ckpt.load(Ordering::Relaxed))
                >= self.pool.config().checkpoint_every
            {
                let receipt = writer.checkpoint_and_compact()?;
                self.last_ckpt.store(receipt.watermark.0, Ordering::Relaxed);
                self.checkpoints.fetch_add(1, Ordering::Relaxed);
                report.checkpointed = Some(receipt.watermark);
            }
        }

        // 2 + 3. Death and wedge detection.
        let head = self.pool.log().head().0;
        for (id, slot) in self.pool.slots().iter().enumerate() {
            match slot.state() {
                ReplicaState::Down => {
                    self.pool.respawn(id)?;
                    self.reset_observed(id);
                    report.respawned.push(id);
                }
                ReplicaState::Serving => {
                    let heartbeat = slot.heartbeat.load(Ordering::Relaxed);
                    let watermark = slot.watermark.load(Ordering::SeqCst);
                    let wedged = {
                        let mut observed = self.observed.lock();
                        let o = &mut observed[id];
                        if o.heartbeat != heartbeat || o.watermark != watermark {
                            *o = Observed {
                                heartbeat,
                                watermark,
                                since: Instant::now(),
                            };
                            false
                        } else {
                            o.since.elapsed() >= self.pool.config().wedge_timeout
                                && head > watermark
                        }
                    };
                    if wedged {
                        self.pool.drain(id)?;
                        self.pool.respawn(id)?;
                        self.reset_observed(id);
                        report.respawned.push(id);
                    }
                }
                ReplicaState::Draining => {}
            }
        }
        Ok(report)
    }

    fn reset_observed(&self, id: usize) {
        let mut observed = self.observed.lock();
        observed[id] = Observed {
            heartbeat: self.pool.slots()[id].heartbeat.load(Ordering::Relaxed),
            watermark: self.pool.slots()[id].watermark.load(Ordering::SeqCst),
            since: Instant::now(),
        };
    }

    /// A point-in-time health snapshot of the whole fleet.
    pub fn stats(&self) -> FleetStats {
        let head = self.pool.log().head();
        let replicas: Vec<ReplicaHealth> = self
            .pool
            .slots()
            .iter()
            .map(|s| {
                let watermark = Lsn(s.watermark.load(Ordering::SeqCst));
                ReplicaHealth {
                    replica: s.id,
                    state: s.state(),
                    watermark,
                    lag: head.0.saturating_sub(watermark.0),
                    inflight: s.inflight.load(Ordering::SeqCst),
                    served: s.served.load(Ordering::Relaxed),
                    errors: s.errors.load(Ordering::Relaxed),
                    respawns: s.respawns.load(Ordering::Relaxed),
                }
            })
            .collect();
        let mut serving: Vec<u64> = replicas
            .iter()
            .filter(|r| r.state == ReplicaState::Serving)
            .map(|r| r.watermark.0)
            .collect();
        serving.sort_unstable();
        FleetStats {
            head,
            median_watermark: serving.get(serving.len() / 2).copied().map(Lsn),
            lag_skips: self.pool.lag_skips.load(Ordering::Relaxed),
            session_skips: self.pool.session_skips.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            last_checkpoint: Lsn(self.last_ckpt.load(Ordering::Relaxed)),
            replicas,
        }
    }

    /// Run [`tick`](Self::tick) every `interval` on a supervisor thread
    /// until the returned handle is dropped. Tick errors are counted on
    /// the handle, not fatal — a transient checkpoint failure must not
    /// kill supervision.
    pub fn spawn_ticker(self: &Arc<Self>, interval: Duration) -> TickerHandle {
        let controller = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let errors = Arc::new(AtomicU64::new(0));
        let stop_flag = Arc::clone(&stop);
        let error_count = Arc::clone(&errors);
        let handle = std::thread::Builder::new()
            .name("fleet-controller".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::SeqCst) {
                    if controller.tick().is_err() {
                        error_count.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn fleet controller ticker");
        TickerHandle {
            stop,
            errors,
            handle: Some(handle),
        }
    }
}

/// What one [`FleetController::tick`] did.
#[derive(Debug, Default)]
pub struct TickReport {
    /// Slots respawned this pass (dead or wedged).
    pub respawned: Vec<usize>,
    /// Watermark of the checkpoint taken this pass, if any.
    pub checkpointed: Option<Lsn>,
}

/// Health of one serving slot.
#[derive(Clone, Debug)]
pub struct ReplicaHealth {
    /// Slot index.
    pub replica: usize,
    /// Lifecycle state.
    pub state: ReplicaState,
    /// Highest LSN fully applied and published.
    pub watermark: Lsn,
    /// Ops between the log head and this replica.
    pub lag: u64,
    /// Reads currently pinned here.
    pub inflight: u64,
    /// Queries served.
    pub served: u64,
    /// Query errors plus worker deaths.
    pub errors: u64,
    /// Times respawned.
    pub respawns: u64,
}

/// Point-in-time fleet health.
#[derive(Clone, Debug)]
pub struct FleetStats {
    /// The shared log's head.
    pub head: Lsn,
    /// Median watermark across serving replicas (the router's freshness
    /// anchor); `None` when nothing serves.
    pub median_watermark: Option<Lsn>,
    /// Routing decisions that skipped a replica for trailing the median
    /// beyond the lag bound.
    pub lag_skips: u64,
    /// Routing decisions that skipped a replica for trailing a session
    /// token.
    pub session_skips: u64,
    /// Checkpoints taken by this controller.
    pub checkpoints: u64,
    /// Watermark of the newest checkpoint artifact.
    pub last_checkpoint: Lsn,
    /// Per-slot health.
    pub replicas: Vec<ReplicaHealth>,
}

/// Stops and joins the supervisor thread on drop.
pub struct TickerHandle {
    stop: Arc<AtomicBool>,
    errors: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TickerHandle {
    /// Tick errors swallowed so far (supervision keeps running).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

impl Drop for TickerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
