//! Fleet fault drills: kill and wedge replicas under traffic and prove
//! the routing, session and respawn contracts hold.
//!
//! * session reads never observe pre-commit state, even while replicas
//!   lag or die (read-your-writes);
//! * a panicked replica is detected, respawned from the newest
//!   checkpoint and converges back to parity with a directly-built
//!   replica of the same log;
//! * a wedged replica is excluded from routing by the lag bound, then
//!   detected by the controller, drained and respawned;
//! * an all-stale fleet fails session reads with a timeout instead of a
//!   stale answer.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use saga_core::{EntityId, GraphRead, KnowledgeGraph, Lsn, SourceId, WriteBatch};
use saga_fleet::{
    FleetConfig, FleetController, FleetRouter, ReplicaFault, ReplicaPool, ReplicaState,
    SessionWaitConfig,
};
use saga_graph::{CheckpointWriter, LoggedCommit, LoggedWriter, OpKind, OperationLog};
use saga_live::LiveReplica;

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "saga-fleet-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn producer() -> LoggedWriter {
    LoggedWriter::new(
        Arc::new(RwLock::new(KnowledgeGraph::new())),
        Arc::new(OperationLog::in_memory()),
    )
}

fn commit_person(w: &LoggedWriter, i: u64) -> LoggedCommit {
    w.commit(
        OpKind::Upsert,
        WriteBatch::new().named_entity(
            EntityId(i),
            &format!("Fleet Person {i}"),
            "person",
            SourceId(1),
            0.9,
        ),
    )
    .unwrap()
}

/// A fast-polling test config: short enough that convergence waits are
/// milliseconds, long enough that nothing busy-spins.
fn fast_config(replicas: usize) -> FleetConfig {
    FleetConfig {
        replicas,
        shards: 2,
        poll_interval: Duration::from_micros(500),
        lag_bound: 4,
        session_timeout: Duration::from_secs(5),
        wedge_timeout: Duration::from_millis(50),
        drain_timeout: Duration::from_millis(50),
        ..FleetConfig::default()
    }
}

fn wait_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    check()
}

#[test]
fn session_reads_never_observe_pre_commit_state() {
    let w = producer();
    let dir = temp_dir("sessions");
    let pool = ReplicaPool::start(fast_config(3), Arc::clone(w.log()), &dir).unwrap();
    let router = FleetRouter::new(Arc::clone(&pool));

    // Commit → token → read, back to back: every read must see the
    // client's own write no matter which replica has caught up.
    for i in 1..=100u64 {
        let commit = commit_person(&w, i);
        let token = commit.session_token();
        let hits = router
            .query_with_session(
                &format!("FIND person WHERE name = \"Fleet Person {i}\""),
                &token,
            )
            .unwrap();
        assert_eq!(
            hits.entities(),
            vec![EntityId(i)],
            "session read {i} missed its own committed write"
        );
        // The pinned replica really was at-or-past the token.
        let read = router.read_with_session(&token).unwrap();
        assert!(read.watermark() >= token.lsn());
    }

    let controller = FleetController::new(Arc::clone(&pool));
    let stats = controller.stats();
    assert_eq!(stats.head, Lsn(100));
    let served: u64 = stats.replicas.iter().map(|r| r.served).sum();
    assert_eq!(served, 100, "every query was served by some replica");
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_replica_respawns_from_checkpoint_and_converges_to_parity() {
    let w = producer();
    let dir = temp_dir("respawn");
    // Reference replica: tails the same log from the very beginning.
    let mut reference = LiveReplica::new(2, Arc::clone(w.log()));
    for i in 1..=40u64 {
        commit_person(&w, i);
    }
    reference.catch_up().unwrap();

    // Checkpoint and compact: the log prefix is gone, so any respawn
    // from here on *must* go through the checkpoint artifact.
    let ckpt = CheckpointWriter::new(&w, &dir);
    ckpt.checkpoint_and_compact().unwrap();
    assert!(w.log().compacted_through() >= Lsn(40));

    let pool = ReplicaPool::start(fast_config(2), Arc::clone(w.log()), &dir).unwrap();
    let router = FleetRouter::new(Arc::clone(&pool));
    let controller = FleetController::new(Arc::clone(&pool));

    // Panic replica 0 mid-traffic.
    pool.inject_fault(0, ReplicaFault::Panic).unwrap();
    for i in 41..=60u64 {
        let commit = commit_person(&w, i);
        let hits = router
            .query_with_session(
                &format!("FIND person WHERE name = \"Fleet Person {i}\""),
                &commit.session_token(),
            )
            .unwrap();
        assert_eq!(
            hits.entities(),
            vec![EntityId(i)],
            "fleet served through the crash"
        );
    }
    assert!(
        wait_until(Duration::from_secs(5), || {
            controller.stats().replicas[0].state == ReplicaState::Down
        }),
        "panicked worker was never marked down"
    );

    // One controller pass respawns it from the checkpoint + log tail.
    let report = controller.tick().unwrap();
    assert_eq!(report.respawned, vec![0]);
    router
        .wait_for_lsn(w.log().head(), Duration::from_secs(5))
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || {
            controller
                .stats()
                .replicas
                .iter()
                .all(|r| r.state == ReplicaState::Serving && r.lag == 0)
        }),
        "respawned replica never converged"
    );

    // Parity with the directly-built replica of the same log. The pin is
    // scoped: a held RoutedRead counts as load and would (correctly)
    // steer the round-robin check below away from its replica.
    reference.catch_up().unwrap();
    {
        let read = router.read().unwrap();
        assert_eq!(read.graph().len(), reference.live().len());
    }
    for i in [1u64, 20, 40, 41, 60] {
        let hits = router
            .query(&format!("FIND person WHERE name = \"Fleet Person {i}\""))
            .unwrap();
        assert_eq!(
            hits.entities(),
            reference.resolve_name(&format!("Fleet Person {i}"))
        );
    }

    // The reborn replica rejoins routing: sequential queries round-robin
    // across equally-loaded fresh replicas, so both serve.
    let before: Vec<u64> = controller
        .stats()
        .replicas
        .iter()
        .map(|r| r.served)
        .collect();
    for _ in 0..10 {
        router
            .query("FIND person WHERE name = \"Fleet Person 1\"")
            .unwrap();
    }
    let after = controller.stats();
    for (replica, served_before) in before.iter().enumerate() {
        assert!(
            after.replicas[replica].served > *served_before,
            "replica {replica} took no traffic after the respawn"
        );
    }
    assert_eq!(after.replicas[0].respawns, 1);
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wedged_replica_is_skipped_then_detected_and_respawned() {
    let w = producer();
    let dir = temp_dir("wedge");
    let pool = ReplicaPool::start(fast_config(2), Arc::clone(w.log()), &dir).unwrap();
    let router = FleetRouter::new(Arc::clone(&pool));
    let controller = FleetController::new(Arc::clone(&pool));

    for i in 1..=10u64 {
        commit_person(&w, i);
    }
    router
        .wait_for_lsn(Lsn(10), Duration::from_secs(5))
        .unwrap();

    // Wedge replica 0, then advance the log well past the lag bound (4).
    pool.inject_fault(0, ReplicaFault::Wedge).unwrap();
    for i in 11..=30u64 {
        commit_person(&w, i);
    }
    // Wait until the healthy replica is visibly ahead of the wedged one.
    assert!(
        wait_until(Duration::from_secs(5), || {
            let stats = controller.stats();
            stats.replicas[1].lag == 0 && stats.replicas[0].lag > 4
        }),
        "healthy replica never pulled ahead"
    );

    // Routed reads must all land on the healthy replica now.
    let skips_before = controller.stats().lag_skips;
    for _ in 0..20 {
        let read = router.read().unwrap();
        assert_eq!(
            read.replica(),
            1,
            "router picked a replica beyond the lag bound"
        );
    }
    assert!(
        controller.stats().lag_skips > skips_before,
        "lag-bound skips were not counted"
    );

    // The controller notices the frozen heartbeat and respawns the slot.
    assert!(
        wait_until(Duration::from_secs(5), || {
            controller.tick().unwrap();
            controller.stats().replicas[0].respawns == 1
        }),
        "wedged replica was never respawned"
    );
    router
        .wait_for_lsn(Lsn(30), Duration::from_secs(5))
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || {
            controller.stats().replicas.iter().all(|r| r.lag == 0)
        }),
        "fleet never reconverged after the wedge respawn"
    );
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_stale_session_reads_time_out_rather_than_serve_stale() {
    let w = producer();
    let dir = temp_dir("stale");
    let mut cfg = fast_config(1);
    cfg.session_timeout = Duration::from_millis(50);
    let pool = ReplicaPool::start(cfg, Arc::clone(w.log()), &dir).unwrap();
    let router = FleetRouter::new(Arc::clone(&pool));

    commit_person(&w, 1);
    router.wait_for_lsn(Lsn(1), Duration::from_secs(5)).unwrap();

    // Wedge the only replica, then commit: nothing can reach the token.
    pool.inject_fault(0, ReplicaFault::Wedge).unwrap();
    std::thread::sleep(Duration::from_millis(5)); // let the worker park
    let commit = commit_person(&w, 2);
    let token = commit.session_token();
    let err = router
        .query_with_session("FIND person WHERE name = \"Fleet Person 2\"", &token)
        .unwrap_err();
    assert!(err.to_string().contains("timed out"), "{err}");
    assert!(
        err.is_retryable(),
        "session timeout must be the typed retryable error, got {err:?}"
    );

    // A per-request wait policy overrides the fleet default: no_wait
    // fails immediately (well under the configured 50 ms) and is equally
    // typed-retryable — this is what a network server maps to a
    // retryable wire response.
    let t0 = std::time::Instant::now();
    let err = router
        .query_with_session_wait(
            "FIND person WHERE name = \"Fleet Person 2\"",
            &token,
            &SessionWaitConfig::no_wait(),
        )
        .unwrap_err();
    assert!(err.is_retryable(), "{err}");
    assert!(
        t0.elapsed() < Duration::from_millis(40),
        "no_wait blocked for {:?}",
        t0.elapsed()
    );

    // Un-wedge: the worker resumes on its own and the read goes through.
    pool.clear_fault(0).unwrap();
    let hits = router
        .query_with_session("FIND person WHERE name = \"Fleet Person 2\"", &token)
        .unwrap();
    assert_eq!(hits.entities(), vec![EntityId(2)]);
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_generation_is_monotone_across_respawns() {
    let w = producer();
    let dir = temp_dir("gen");
    let pool = ReplicaPool::start(fast_config(2), Arc::clone(w.log()), &dir).unwrap();
    let router = FleetRouter::new(Arc::clone(&pool));

    for i in 1..=20u64 {
        commit_person(&w, i);
    }
    router
        .wait_for_lsn(Lsn(20), Duration::from_secs(5))
        .unwrap();
    let before = router.generation();

    // A respawn rebuilds the store from replay; without the generation
    // floor the reborn engine would restart its counter and cached plans
    // could revalidate against the wrong store.
    pool.kill(0).unwrap();
    pool.respawn(0).unwrap();
    router
        .wait_for_lsn(Lsn(20), Duration::from_secs(5))
        .unwrap();
    assert!(
        router.generation() >= before,
        "fleet generation went backwards across a respawn"
    );
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
