//! Read-your-writes session tokens.
//!
//! §3.1 uses LSNs "as a distributed synchronization primitive": a consumer
//! that just committed at LSN *w* must only read from stores whose replay
//! progress is at or past *w*, or it may observe the graph as it was before
//! its own write. A [`SessionToken`] is the client-side carrier of that
//! constraint — the LSN of the client's newest commit, handed back by the
//! write path and presented with every subsequent read. Routers compare it
//! against replica watermarks: a replica satisfies the session iff its
//! watermark is at or past the token.
//!
//! Tokens are deliberately tiny (one LSN) and totally ordered, so a client
//! juggling several commits keeps exactly one token and
//! [`observe`](SessionToken::observe)s each new commit into it — the
//! newest LSN subsumes the guarantee of every older one.

use crate::id::Lsn;

/// A client's causal read constraint: reads under this token must be
/// served at or past [`lsn`](Self::lsn). `SessionToken::default()` is the
/// unconstrained token (any replica satisfies it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionToken {
    lsn: Lsn,
}

impl SessionToken {
    /// A token pinned at `lsn` — typically the LSN of the commit whose
    /// effects the client must be able to read back.
    pub fn at(lsn: Lsn) -> Self {
        SessionToken { lsn }
    }

    /// The minimum watermark a replica needs to serve this session.
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    /// Fold a newer commit into the session. Monotone: observing an older
    /// LSN leaves the token unchanged, so a client can feed every commit
    /// receipt through without ordering them first.
    pub fn observe(&mut self, lsn: Lsn) {
        if lsn > self.lsn {
            self.lsn = lsn;
        }
    }

    /// True if a replica at `watermark` can serve this session's reads.
    pub fn satisfied_by(&self, watermark: Lsn) -> bool {
        watermark >= self.lsn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_order_and_observe_monotonically() {
        let mut token = SessionToken::default();
        assert_eq!(token.lsn(), Lsn::ZERO);
        assert!(token.satisfied_by(Lsn::ZERO), "unconstrained");

        token.observe(Lsn(5));
        token.observe(Lsn(3)); // older commit: ignored
        assert_eq!(token.lsn(), Lsn(5));
        assert!(!token.satisfied_by(Lsn(4)));
        assert!(token.satisfied_by(Lsn(5)));
        assert!(token.satisfied_by(Lsn(9)));

        assert!(SessionToken::at(Lsn(7)) > token, "newer token subsumes");
    }
}
