//! Compact identifiers used throughout the platform.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a canonical entity in the knowledge graph.
///
/// The paper renders these as `AKG:123`; we keep the numeric part. Ids are
/// assigned by the construction pipeline (via [`IdGenerator`]) when the
/// resolution step decides that a cluster of source entities corresponds to
/// a real-world entity that does not yet exist in the KG (§2.3, step 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EntityId(pub u64);

impl fmt::Debug for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AKG:{}", self.0)
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AKG:{}", self.0)
    }
}

impl EntityId {
    /// Parse the `AKG:<n>` textual form produced by [`Display`](fmt::Display).
    pub fn parse(text: &str) -> Option<EntityId> {
        text.strip_prefix("AKG:")?.parse().ok().map(EntityId)
    }
}

/// Identifier of an upstream data source (a provider feed).
///
/// Every fact in the KG carries an array of `SourceId`s for provenance
/// (§2.1); licensing views and on-demand deletion are keyed by it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

impl fmt::Debug for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// Identifier of a composite relationship node, scoped to its subject entity.
///
/// In Table 1 of the paper this is the `r_id` column (`r1`, `r2`, …): all
/// extended triples that share `(subject, predicate, r_id)` describe the same
/// relationship node (e.g. one `education` object with `school`, `degree`
/// and `year` facets).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Log sequence number of the Graph Engine's durable operation log (§3.1).
///
/// LSNs are the distributed synchronization primitive: orchestration agents
/// record the highest LSN they have replayed, which lets a consumer decide
/// whether a store is fresh enough for its SLA.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The LSN before any operation has been appended.
    pub const ZERO: Lsn = Lsn(0);

    /// The next LSN in sequence.
    #[must_use]
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Thread-safe monotonically increasing [`EntityId`] allocator.
///
/// The construction pipeline runs source pipelines in parallel (Fig. 5);
/// new-entity creation during resolution must therefore be race-free.
#[derive(Debug)]
pub struct IdGenerator {
    next: AtomicU64,
}

impl IdGenerator {
    /// Create a generator that will hand out ids starting at `first`.
    pub fn starting_at(first: u64) -> Self {
        IdGenerator {
            next: AtomicU64::new(first),
        }
    }

    /// Allocate a fresh, never-before-returned entity id.
    pub fn allocate(&self) -> EntityId {
        EntityId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// The id the next call to [`allocate`](Self::allocate) would return.
    pub fn peek(&self) -> EntityId {
        EntityId(self.next.load(Ordering::Relaxed))
    }

    /// Bump the generator so it never allocates an id `<= floor`.
    ///
    /// Used when loading an existing KG snapshot: the generator must stay
    /// ahead of every id already present.
    pub fn ensure_above(&self, floor: EntityId) {
        self.next.fetch_max(floor.0 + 1, Ordering::Relaxed);
    }
}

impl Default for IdGenerator {
    fn default() -> Self {
        IdGenerator::starting_at(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn entity_id_display_and_parse_roundtrip() {
        let id = EntityId(42);
        assert_eq!(id.to_string(), "AKG:42");
        assert_eq!(EntityId::parse("AKG:42"), Some(id));
        assert_eq!(EntityId::parse("42"), None);
        assert_eq!(EntityId::parse("AKG:x"), None);
    }

    #[test]
    fn lsn_next_is_monotone() {
        let l = Lsn::ZERO;
        assert!(l.next() > l);
        assert_eq!(l.next(), Lsn(1));
    }

    #[test]
    fn id_generator_is_monotone_and_unique_across_threads() {
        let gen = Arc::new(IdGenerator::starting_at(100));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&gen);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.allocate().0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000, "ids must be unique");
        assert_eq!(*all.first().unwrap(), 100);
    }

    #[test]
    fn id_generator_ensure_above_prevents_reuse() {
        let gen = IdGenerator::starting_at(1);
        gen.ensure_above(EntityId(500));
        assert_eq!(gen.allocate(), EntityId(501));
        // Lower floors are ignored.
        gen.ensure_above(EntityId(10));
        assert_eq!(gen.allocate(), EntityId(502));
    }
}
