//! Entity-centric groupings of extended triples.
//!
//! Two flavours exist, mirroring the construction pipeline's phases:
//!
//! * [`EntityPayload`] — one *source* entity (subject still in the source
//!   namespace) as produced by ingestion's export stage (§2.2). These flow
//!   through blocking / matching / linking.
//! * [`EntityRecord`] — one *canonical KG* entity after fusion, owning all
//!   its extended triples keyed by its [`EntityId`].

use std::sync::Arc;

use crate::well_known;
use crate::{intern, EntityId, ExtendedTriple, RelId, SourceId, SubjectRef, Symbol, Value};

/// One source entity's payload: all extended triples sharing a subject in a
/// source namespace.
#[derive(Clone, Debug, PartialEq)]
pub struct EntityPayload {
    /// The subject — always [`SubjectRef::Source`] at ingestion time; the
    /// linker rewrites it to [`SubjectRef::Kg`] once resolved.
    pub subject: SubjectRef,
    /// The ontology type of the entity (e.g. `music_artist`), as assigned by
    /// ontology alignment. Linking groups payloads by this type.
    pub entity_type: Symbol,
    /// All facts about the entity.
    pub triples: Vec<ExtendedTriple>,
}

impl EntityPayload {
    /// Create an empty payload for a source entity.
    pub fn new(source: SourceId, local_id: impl AsRef<str>, entity_type: Symbol) -> Self {
        EntityPayload {
            subject: SubjectRef::source(source, local_id),
            entity_type,
            triples: Vec::new(),
        }
    }

    /// The source-local id, if the payload is still unlinked.
    pub fn local_id(&self) -> Option<&str> {
        match &self.subject {
            SubjectRef::Source(_, local) => Some(local),
            SubjectRef::Kg(_) => None,
        }
    }

    /// The source, if the payload is still unlinked.
    pub fn source(&self) -> Option<SourceId> {
        match &self.subject {
            SubjectRef::Source(s, _) => Some(*s),
            SubjectRef::Kg(_) => None,
        }
    }

    /// Append a simple fact; the stored subject is forced to this payload's.
    pub fn push_simple(&mut self, predicate: Symbol, object: Value, meta: crate::FactMeta) {
        self.triples.push(ExtendedTriple::simple(
            self.subject.clone(),
            predicate,
            object,
            meta,
        ));
    }

    /// Append a composite-relationship facet.
    pub fn push_composite(
        &mut self,
        predicate: Symbol,
        rel_id: RelId,
        rel_predicate: Symbol,
        object: Value,
        meta: crate::FactMeta,
    ) {
        self.triples.push(ExtendedTriple::composite(
            self.subject.clone(),
            predicate,
            rel_id,
            rel_predicate,
            object,
            meta,
        ));
    }

    /// First string value of `predicate`, if any.
    pub fn first_str(&self, predicate: Symbol) -> Option<&str> {
        self.triples
            .iter()
            .filter(|t| t.predicate == predicate && t.rel.is_none())
            .find_map(|t| t.object.as_str())
    }

    /// The entity's primary name (`name` predicate).
    pub fn name(&self) -> Option<&str> {
        self.first_str(intern(well_known::NAME))
    }

    /// All alias strings (`alias` predicate).
    pub fn aliases(&self) -> Vec<&str> {
        let alias = intern(well_known::ALIAS);
        self.triples
            .iter()
            .filter(|t| t.predicate == alias)
            .filter_map(|t| t.object.as_str())
            .collect()
    }

    /// All values of a predicate (simple facts only).
    pub fn values(&self, predicate: Symbol) -> Vec<&Value> {
        self.triples
            .iter()
            .filter(|t| t.predicate == predicate && t.rel.is_none())
            .map(|t| &t.object)
            .collect()
    }

    /// Rewrite the payload's subject (used by the linker after resolution).
    pub fn relink(&mut self, kg_id: EntityId) {
        let new_subject = SubjectRef::Kg(kg_id);
        for t in &mut self.triples {
            t.subject = new_subject.clone();
        }
        self.subject = new_subject;
    }
}

/// A canonical KG entity: its id and every extended triple about it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EntityRecord {
    /// Canonical id.
    pub id: EntityId,
    /// All facts; subjects are always `SubjectRef::Kg(self.id)`.
    pub triples: Vec<ExtendedTriple>,
}

impl EntityRecord {
    /// An empty record for `id`.
    pub fn new(id: EntityId) -> Self {
        EntityRecord {
            id,
            triples: Vec::new(),
        }
    }

    /// Number of facts.
    pub fn fact_count(&self) -> usize {
        self.triples.len()
    }

    /// First string value of a predicate.
    pub fn first_str(&self, predicate: Symbol) -> Option<&str> {
        self.triples
            .iter()
            .filter(|t| t.predicate == predicate && t.rel.is_none())
            .find_map(|t| t.object.as_str())
    }

    /// Primary name.
    pub fn name(&self) -> Option<&str> {
        self.first_str(intern(well_known::NAME))
    }

    /// All alias strings.
    pub fn aliases(&self) -> Vec<&str> {
        let alias = intern(well_known::ALIAS);
        self.triples
            .iter()
            .filter(|t| t.predicate == alias)
            .filter_map(|t| t.object.as_str())
            .collect()
    }

    /// All ontology types asserted for this entity.
    pub fn types(&self) -> Vec<Symbol> {
        let ty = intern(well_known::TYPE);
        self.triples
            .iter()
            .filter(|t| t.predicate == ty)
            .filter_map(|t| t.object.as_str().map(intern))
            .collect()
    }

    /// All values of a predicate (simple facts only).
    pub fn values(&self, predicate: Symbol) -> Vec<&Value> {
        self.triples
            .iter()
            .filter(|t| t.predicate == predicate && t.rel.is_none())
            .map(|t| &t.object)
            .collect()
    }

    /// All outgoing entity references (resolved objects), with predicates.
    pub fn out_edges(&self) -> impl Iterator<Item = (Symbol, EntityId)> + '_ {
        self.triples
            .iter()
            .filter_map(|t| t.object.as_entity().map(|e| (t.predicate, e)))
    }

    /// Distinct relationship-node ids under `predicate`.
    pub fn rel_ids(&self, predicate: Symbol) -> Vec<RelId> {
        let mut ids: Vec<RelId> = self
            .triples
            .iter()
            .filter(|t| t.predicate == predicate)
            .filter_map(|t| t.rel.map(|r| r.rel_id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The facets of one relationship node, as `(facet predicate, value)`.
    pub fn rel_facets(&self, predicate: Symbol, rel_id: RelId) -> Vec<(Symbol, &Value)> {
        self.triples
            .iter()
            .filter(|t| t.predicate == predicate && t.rel.map(|r| r.rel_id) == Some(rel_id))
            .map(|t| (t.rel.unwrap().rel_predicate, &t.object))
            .collect()
    }

    /// The largest relationship-node id in use for `predicate`, so fusion can
    /// mint fresh ones when adding new relationship nodes.
    pub fn max_rel_id(&self, predicate: Symbol) -> Option<RelId> {
        self.triples
            .iter()
            .filter(|t| t.predicate == predicate)
            .filter_map(|t| t.rel.map(|r| r.rel_id))
            .max()
    }

    /// Number of distinct sources contributing any fact (the "identities"
    /// importance signal, §3.3).
    pub fn identity_count(&self) -> usize {
        let mut sources: Vec<SourceId> =
            self.triples.iter().flat_map(|t| t.meta.sources()).collect();
        sources.sort_unstable();
        sources.dedup();
        sources.len()
    }

    /// Convert into an [`EntityPayload`] view (used when combining the KG
    /// view with source payloads for record linking, §2.3 step 2).
    pub fn to_payload(&self, entity_type: Symbol) -> EntityPayload {
        EntityPayload {
            subject: SubjectRef::Kg(self.id),
            entity_type,
            triples: self.triples.clone(),
        }
    }

    /// Free-text description, if any.
    pub fn description(&self) -> Option<&str> {
        self.first_str(intern(well_known::DESCRIPTION))
    }

    /// Non-destructive record-level upsert (fusion's outer-join semantics,
    /// §2.3): a fact with the same key *and the same object* absorbs the
    /// new provenance; otherwise the triple is appended as new knowledge.
    /// Returns `true` if appended.
    ///
    /// This is the one merge rule shared by the stable KG's commit path
    /// and the live store's record-level commits — a detached record is
    /// not indexed, so mutating one is always safe.
    pub fn upsert(&mut self, triple: ExtendedTriple) -> bool {
        for existing in &mut self.triples {
            if existing.predicate == triple.predicate
                && existing.rel == triple.rel
                && existing.object == triple.object
            {
                existing.meta.merge(&triple.meta);
                return false;
            }
        }
        self.triples.push(triple);
        true
    }

    /// Remove `source` from the provenance of every matching fact; facts
    /// left without any provenance are removed and returned. With a
    /// predicate `filter`, only facts whose predicate is in the set are
    /// considered (the volatile-partition rule, §2.4).
    pub fn retract_source_facts(
        &mut self,
        source: SourceId,
        filter: Option<&crate::FxHashSet<Symbol>>,
    ) -> Vec<ExtendedTriple> {
        let mut dropped = Vec::new();
        self.triples.retain_mut(|t| {
            if filter.is_some_and(|preds| !preds.contains(&t.predicate)) {
                return true;
            }
            if t.meta.has_source(source) && t.meta.retract_source(source) {
                dropped.push(t.clone());
                return false;
            }
            true
        });
        dropped
    }

    /// Name plus aliases as owned strings (used by index builders).
    pub fn all_names(&self) -> Vec<Arc<str>> {
        let name = intern(well_known::NAME);
        let alias = intern(well_known::ALIAS);
        self.triples
            .iter()
            .filter(|t| t.predicate == name || t.predicate == alias)
            .filter_map(|t| match &t.object {
                Value::Str(s) => Some(Arc::clone(s)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FactMeta;

    fn meta(src: u32) -> FactMeta {
        FactMeta::from_source(SourceId(src), 0.9)
    }

    fn sample_record() -> EntityRecord {
        let mut r = EntityRecord::new(EntityId(1));
        let id = EntityId(1);
        r.triples.push(ExtendedTriple::simple(
            id,
            intern("name"),
            Value::str("J. Smith"),
            meta(1),
        ));
        r.triples.push(ExtendedTriple::simple(
            id,
            intern("alias"),
            Value::str("John Smith"),
            meta(2),
        ));
        r.triples.push(ExtendedTriple::simple(
            id,
            intern("type"),
            Value::str("person"),
            meta(1),
        ));
        r.triples.push(ExtendedTriple::composite(
            id,
            intern("educated_at"),
            RelId(1),
            intern("school"),
            Value::str("UW"),
            meta(2),
        ));
        r.triples.push(ExtendedTriple::composite(
            id,
            intern("educated_at"),
            RelId(1),
            intern("degree"),
            Value::str("PhD"),
            meta(2),
        ));
        r.triples.push(ExtendedTriple::composite(
            id,
            intern("educated_at"),
            RelId(2),
            intern("school"),
            Value::str("MIT"),
            meta(3),
        ));
        r.triples.push(ExtendedTriple::simple(
            id,
            intern("spouse"),
            Value::Entity(EntityId(2)),
            meta(1),
        ));
        r
    }

    #[test]
    fn record_accessors() {
        let r = sample_record();
        assert_eq!(r.name(), Some("J. Smith"));
        assert_eq!(r.aliases(), vec!["John Smith"]);
        assert_eq!(r.types(), vec![intern("person")]);
        assert_eq!(r.fact_count(), 7);
        assert_eq!(r.identity_count(), 3);
        let edges: Vec<_> = r.out_edges().collect();
        assert_eq!(edges, vec![(intern("spouse"), EntityId(2))]);
    }

    #[test]
    fn relationship_nodes_are_grouped_by_rel_id() {
        let r = sample_record();
        let edu = intern("educated_at");
        assert_eq!(r.rel_ids(edu), vec![RelId(1), RelId(2)]);
        let facets = r.rel_facets(edu, RelId(1));
        assert_eq!(facets.len(), 2);
        assert!(facets
            .iter()
            .any(|(p, v)| *p == intern("school") && v.as_str() == Some("UW")));
        assert!(facets
            .iter()
            .any(|(p, v)| *p == intern("degree") && v.as_str() == Some("PhD")));
        assert_eq!(r.max_rel_id(edu), Some(RelId(2)));
        assert_eq!(r.max_rel_id(intern("name")), None);
    }

    #[test]
    fn payload_relink_rewrites_all_subjects() {
        let mut p = EntityPayload::new(SourceId(4), "a17", intern("music_artist"));
        p.push_simple(intern("name"), Value::str("Billie Eilish"), meta(4));
        p.push_composite(
            intern("member_of"),
            RelId(1),
            intern("band"),
            Value::source_ref("b3"),
            meta(4),
        );
        assert_eq!(p.local_id(), Some("a17"));
        assert_eq!(p.source(), Some(SourceId(4)));

        p.relink(EntityId(99));
        assert_eq!(p.subject, SubjectRef::Kg(EntityId(99)));
        assert!(p
            .triples
            .iter()
            .all(|t| t.subject == SubjectRef::Kg(EntityId(99))));
        assert_eq!(p.local_id(), None);
        assert_eq!(p.source(), None);
    }

    #[test]
    fn payload_accessors() {
        let mut p = EntityPayload::new(SourceId(1), "x", intern("person"));
        p.push_simple(intern("name"), Value::str("Ada"), meta(1));
        p.push_simple(intern("alias"), Value::str("A. Lovelace"), meta(1));
        p.push_simple(intern("born"), Value::Int(1815), meta(1));
        assert_eq!(p.name(), Some("Ada"));
        assert_eq!(p.aliases(), vec!["A. Lovelace"]);
        assert_eq!(p.values(intern("born")), vec![&Value::Int(1815)]);
        assert_eq!(p.first_str(intern("missing")), None);
    }

    #[test]
    fn all_names_includes_name_and_aliases() {
        let r = sample_record();
        let names = r.all_names();
        let texts: Vec<&str> = names.iter().map(|s| &**s).collect();
        assert_eq!(texts, vec!["J. Smith", "John Smith"]);
    }
}
