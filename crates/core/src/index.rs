//! The unified interned triple index — the single source of truth that the
//! paper's Graph Engine stores derive from.
//!
//! §3.1 of the paper describes a federation of stores — the analytics
//! warehouse, the entity/text indexes, the live serving index — all derived
//! from one canonical KG and kept consistent through the shared operation
//! log. This module is the in-process analogue: one columnar, fully
//! interned index over the extended triples that
//!
//! * the canonical [`KnowledgeGraph`](crate::KnowledgeGraph) maintains
//!   incrementally on every upsert / retraction / volatile overwrite,
//! * the Graph Engine's analytics store and View Manager consume through
//!   the [`Delta`] change feed (incremental view maintenance in the style
//!   of Kara et al., *CQs with Free Access Patterns under Updates*),
//! * the Live Graph shards under lock striping for low-latency serving,
//!   with KGQ probes lowered directly to [`ProbeKey`] posting lookups.
//!
//! # Representation
//!
//! Everything is interned: predicates, ontology types and name tokens are
//! [`Symbol`]s; object values are mapped to dense [`ObjId`]s through a
//! per-index dictionary. A fact is therefore a few machine words, and the
//! three access paths of a triple store are:
//!
//! * **SPO** — per-subject sorted columns of `(predicate, object)` pairs
//!   ([`TripleIndex::facts_of`]), the row view used for delta diffing;
//! * **POS** — `(predicate, object) → sorted posting list of subjects`
//!   ([`TripleIndex::postings`]), the probe path shared by stable and live
//!   serving;
//! * **OSP** — `object entity → sorted posting list of referencing
//!   subjects` ([`TripleIndex::referencing`]), the reverse-edge path used
//!   by graph analytics.
//!
//! Posting lists are hybrid block-compressed [`BlockPostings`] (dense
//! 4096-bit bitmap blocks, sparse delta+varint runs, per-list block
//! directory — see [`crate::postings`]); conjunctive probes intersect them
//! **in the compressed domain** (bitmap `AND` for dense×dense blocks,
//! directory galloping for sparse), cf. the compressed adjacency-matrix
//! evaluation of Arroyuelo et al. Probe reads hand out borrowed
//! [`PostingsView`]s — nothing is decompressed until a caller materializes
//! ids. Composite facets are flattened to `predicate.facet` symbols — the
//! same extended-triple trick (§2.1) the analytics store uses, so both
//! share one schema.

use std::sync::Arc;

use crate::postings::{intersect_views, BlockPostings, PostingsView};
use crate::well_known;
use crate::{intern, EntityId, EntityRecord, ExtendedTriple, FxHashMap, Symbol, Value};

/// Dense id of an object value in a [`TripleIndex`]'s dictionary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ObjId(pub(crate) u32);

/// Posting-storage tier breakdown (see [`TripleIndex::postings_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PostingsStats {
    /// Total posting lists (POS + OSP + tokens).
    pub lists: usize,
    /// Total posting entries across all lists.
    pub entries: usize,
    /// Lists in the tiny (single varint run) tier.
    pub tiny_lists: usize,
    /// Entries held by tiny lists.
    pub tiny_entries: usize,
    /// Heap bytes held by tiny lists.
    pub tiny_bytes: usize,
    /// Lists in the blocked tier.
    pub blocked_lists: usize,
    /// Entries held by blocked lists.
    pub blocked_entries: usize,
    /// Heap bytes held by blocked lists (directories + containers).
    pub blocked_bytes: usize,
    /// Blocks across all blocked lists.
    pub blocks: usize,
    /// Blocks currently in dense (bitmap) form.
    pub dense_blocks: usize,
}

/// One flattened fact of a [`Delta`]: the (possibly `pred.facet`-flattened)
/// predicate and the object value.
#[derive(Clone, PartialEq, Debug)]
pub struct DeltaFact {
    /// Flattened predicate symbol.
    pub predicate: Symbol,
    /// Object value.
    pub object: Value,
}

/// One entity's index change: the unit of the change feed.
///
/// Replaying every delta (in order) onto an empty index reproduces the full
/// index; consumers like the analytics store apply them to keep derived
/// rows in sync without rescanning the KG.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Delta {
    /// The entity whose facts changed.
    pub entity: EntityId,
    /// Facts now asserted that were not before (with multiplicity).
    pub added: Vec<DeltaFact>,
    /// Facts retracted (with multiplicity).
    pub removed: Vec<DeltaFact>,
}

impl Delta {
    /// True if the delta carries no changes.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// A lowered index probe — the one probe vocabulary shared by the stable
/// KG, the Graph Engine and live serving.
#[derive(Clone, PartialEq, Debug)]
pub enum ProbeKey {
    /// Lowercased name/alias token or full phrase.
    Name(String),
    /// Exact literal fact `(predicate, value)`.
    Literal(Symbol, Value),
    /// Edge `(predicate, target entity)`.
    Edge(Symbol, EntityId),
    /// Ontology type.
    Type(Symbol),
}

/// The unified interned triple index. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct TripleIndex {
    /// Object-value dictionary: interning side.
    pub(crate) obj_ids: FxHashMap<Value, ObjId>,
    /// Object-value dictionary: resolution side. Freed slots hold
    /// `Value::Null` placeholders until reused.
    pub(crate) obj_values: Vec<Value>,
    /// Per-slot reference counts: total fact occurrences (across all
    /// subjects) whose object resolves to this slot. A slot whose count
    /// returns to zero is evicted from `obj_ids` and recycled through
    /// `obj_free`, so high-churn volatile values stop accumulating dead
    /// dictionary entries.
    pub(crate) obj_refs: Vec<u32>,
    /// Recycled dictionary slots awaiting reuse.
    pub(crate) obj_free: Vec<u32>,
    /// SPO: per-subject sorted `(predicate, object)` columns (multiset).
    pub(crate) spo: FxHashMap<EntityId, Vec<(Symbol, ObjId)>>,
    /// POS: `(predicate, object)` block-compressed posting lists.
    pub(crate) pos: FxHashMap<(Symbol, ObjId), BlockPostings>,
    /// OSP: reverse-edge block-compressed posting lists.
    pub(crate) osp: FxHashMap<EntityId, BlockPostings>,
    /// Derived name-token postings (lowercased tokens and full phrases).
    pub(crate) tokens: FxHashMap<Arc<str>, BlockPostings>,
    /// Total indexed facts (with multiplicity).
    pub(crate) facts: usize,
    /// Monotone mutation stamp: every posting list carries the stamp of
    /// the last delta that changed it, giving plan caches a per-probe
    /// fingerprint ([`probe_fingerprint`](Self::probe_fingerprint))
    /// instead of one global generation.
    pub(crate) stamp: u64,
}

/// Flatten one extended triple to its indexed `(predicate, value)` form:
/// composite facets become `predicate.facet`, `Null` and unresolved
/// source-namespace objects are not indexed.
pub fn flatten(triple: &ExtendedTriple) -> Option<(Symbol, Value)> {
    match &triple.object {
        Value::Null | Value::SourceRef(_) => None,
        obj => {
            let pred = match triple.rel {
                None => triple.predicate,
                Some(rel) => intern(&format!("{}.{}", triple.predicate, rel.rel_predicate)),
            };
            Some((pred, obj.clone()))
        }
    }
}

/// Lowercased name tokens (plus the full phrase) of a name/alias string —
/// the tokenization rule shared by every serving index.
pub fn name_tokens(name: &str) -> Vec<String> {
    let mut out: Vec<String> = name
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .collect();
    out.push(name.to_lowercase());
    out.sort_unstable();
    out.dedup();
    out
}

impl TripleIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed facts (with multiplicity).
    pub fn fact_count(&self) -> usize {
        self.facts
    }

    /// Number of subjects with at least one indexed fact.
    pub fn entity_count(&self) -> usize {
        self.spo.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.facts == 0
    }

    fn obj_id(&mut self, value: &Value) -> ObjId {
        intern_obj(
            &mut self.obj_ids,
            &mut self.obj_values,
            &mut self.obj_refs,
            &mut self.obj_free,
            value,
        )
    }

    /// Number of *live* object-dictionary entries (values currently
    /// referenced by at least one indexed fact).
    pub fn obj_dict_len(&self) -> usize {
        self.obj_values.len() - self.obj_free.len()
    }

    /// Total dictionary slots ever allocated (live + recycled). Bounded by
    /// the peak number of distinct concurrently-indexed values, not by
    /// churn — the invariant the volatile-overwrite churn tests assert.
    pub fn obj_dict_slots(&self) -> usize {
        self.obj_values.len()
    }

    fn lookup_obj(&self, value: &Value) -> Option<ObjId> {
        self.obj_ids.get(value).copied()
    }

    /// Diff `record` against the indexed state of its subject and apply the
    /// difference, returning the [`Delta`] for downstream consumers.
    pub fn update_entity(&mut self, record: &EntityRecord) -> Delta {
        let new_facts: Vec<(Symbol, ObjId)> = {
            let mut v: Vec<(Symbol, ObjId)> = record
                .triples
                .iter()
                .filter_map(flatten)
                .map(|(p, o)| (p, self.obj_id(&o)))
                .collect();
            v.sort_unstable();
            v
        };
        let old_facts = self.spo.get(&record.id).cloned().unwrap_or_default();
        let delta = self.diff_to_delta(record.id, &old_facts, &new_facts);
        self.apply(&delta);
        delta
    }

    /// Drop every fact of `entity`, returning the retraction [`Delta`].
    pub fn remove_entity(&mut self, entity: EntityId) -> Delta {
        let old = self.spo.get(&entity).cloned().unwrap_or_default();
        let delta = self.diff_to_delta(entity, &old, &[]);
        self.apply(&delta);
        delta
    }

    /// Index a batch of new facts for `entity` without a full diff — the
    /// fast path for append-only upserts. The facts must not already be
    /// asserted (the canonical KG's upsert guarantees this).
    pub fn add_facts<'a>(
        &mut self,
        entity: EntityId,
        triples: impl IntoIterator<Item = &'a ExtendedTriple>,
    ) -> Delta {
        let added: Vec<DeltaFact> = triples
            .into_iter()
            .filter_map(flatten)
            .map(|(predicate, object)| DeltaFact { predicate, object })
            .collect();
        let delta = Delta {
            entity,
            added,
            removed: Vec::new(),
        };
        self.apply(&delta);
        delta
    }

    /// Retract a batch of facts for `entity` without a full diff.
    pub fn remove_facts<'a>(
        &mut self,
        entity: EntityId,
        triples: impl IntoIterator<Item = &'a ExtendedTriple>,
    ) -> Delta {
        let removed: Vec<DeltaFact> = triples
            .into_iter()
            .filter_map(flatten)
            .map(|(predicate, object)| DeltaFact { predicate, object })
            .collect();
        let delta = Delta {
            entity,
            removed,
            added: Vec::new(),
        };
        self.apply(&delta);
        delta
    }

    fn diff_to_delta(
        &self,
        entity: EntityId,
        old: &[(Symbol, ObjId)],
        new: &[(Symbol, ObjId)],
    ) -> Delta {
        let (added, removed) = sorted_multiset_diff(old, new);
        Delta {
            entity,
            added: added.into_iter().map(|f| self.fact_of(f)).collect(),
            removed: removed.into_iter().map(|f| self.fact_of(f)).collect(),
        }
    }

    fn fact_of(&self, (predicate, obj): (Symbol, ObjId)) -> DeltaFact {
        DeltaFact {
            predicate,
            object: self.obj_values[obj.0 as usize].clone(),
        }
    }

    /// Apply a [`Delta`] — the replay path. Applying every delta a KG ever
    /// emitted onto an empty index reproduces that KG's index exactly.
    pub fn apply(&mut self, delta: &Delta) {
        if delta.is_empty() {
            return;
        }
        // One stamp per delta: every posting list this delta touches is
        // re-fingerprinted with it (monotone across deltas).
        self.stamp += 1;
        let stamp = self.stamp;
        let entity = delta.entity;
        let tokens_before = self.token_set(entity);

        let subject_facts = self.spo.entry(entity).or_default();
        // Multiset row maintenance first…
        let mut touched: Vec<(Symbol, ObjId)> = Vec::new();
        // Slots whose refcount hit zero — candidates for recycling once the
        // posting fixups below are done reading their values.
        let mut drained: Vec<ObjId> = Vec::new();
        for fact in &delta.removed {
            let Some(&obj) = self.obj_ids.get(&fact.object) else {
                continue;
            };
            let key = (fact.predicate, obj);
            if let Ok(at) = subject_facts.binary_search(&key) {
                subject_facts.remove(at);
                self.facts -= 1;
                touched.push(key);
                let refs = &mut self.obj_refs[obj.0 as usize];
                *refs -= 1;
                if *refs == 0 {
                    drained.push(obj);
                }
            }
        }
        for fact in &delta.added {
            let obj = intern_obj(
                &mut self.obj_ids,
                &mut self.obj_values,
                &mut self.obj_refs,
                &mut self.obj_free,
                &fact.object,
            );
            let key = (fact.predicate, obj);
            let at = subject_facts.binary_search(&key).unwrap_or_else(|e| e);
            subject_facts.insert(at, key);
            self.facts += 1;
            self.obj_refs[obj.0 as usize] += 1;
            touched.push(key);
        }
        // …then set-level posting membership for every touched key.
        touched.sort_unstable();
        touched.dedup();
        let still_present: Vec<bool> = touched
            .iter()
            .map(|key| subject_facts.binary_search(key).is_ok())
            .collect();
        if self.spo.get(&entity).is_some_and(Vec::is_empty) {
            self.spo.remove(&entity);
        }
        for (key, present) in touched.into_iter().zip(still_present) {
            let (_, obj) = key;
            if present {
                let list = self.pos.entry(key).or_default();
                if list.insert(entity) {
                    list.set_stamp(stamp);
                }
                if let Value::Entity(target) = &self.obj_values[obj.0 as usize] {
                    let list = self.osp.entry(*target).or_default();
                    if list.insert(entity) {
                        list.set_stamp(stamp);
                    }
                }
            } else {
                if let Some(list) = self.pos.get_mut(&key) {
                    if list.remove(entity) {
                        list.set_stamp(stamp);
                    }
                    if list.is_empty() {
                        self.pos.remove(&key);
                    }
                }
                if let Value::Entity(target) = self.obj_values[obj.0 as usize].clone() {
                    // The same target may be referenced under another
                    // predicate; only drop OSP membership when none remain.
                    let any_left = self
                        .spo
                        .get(&entity)
                        .map(|facts| {
                            facts.iter().any(|&(_, o)| {
                                self.obj_values[o.0 as usize] == Value::Entity(target)
                            })
                        })
                        .unwrap_or(false);
                    if !any_left {
                        if let Some(list) = self.osp.get_mut(&target) {
                            if list.remove(entity) {
                                list.set_stamp(stamp);
                            }
                            if list.is_empty() {
                                self.osp.remove(&target);
                            }
                        }
                    }
                }
            }
        }
        // Token postings re-derive from the subject's current name facts.
        let tokens_after = self.token_set(entity);
        for gone in tokens_before.iter().filter(|t| !tokens_after.contains(*t)) {
            if let Some(list) = self.tokens.get_mut(gone) {
                if list.remove(entity) {
                    list.set_stamp(stamp);
                }
                if list.is_empty() {
                    self.tokens.remove(gone);
                }
            }
        }
        for fresh in tokens_after.iter().filter(|t| !tokens_before.contains(*t)) {
            let list = self.tokens.entry(Arc::clone(fresh)).or_default();
            if list.insert(entity) {
                list.set_stamp(stamp);
            }
        }
        // Recycle dictionary slots whose last reference was retracted (and
        // was not re-added by this same delta). Runs last: the posting and
        // token fixups above still read the retracted values.
        for obj in drained {
            if self.obj_refs[obj.0 as usize] == 0 {
                let value = std::mem::replace(&mut self.obj_values[obj.0 as usize], Value::Null);
                self.obj_ids.remove(&value);
                self.obj_free.push(obj.0);
            }
        }
    }

    fn token_set(&self, entity: EntityId) -> Vec<Arc<str>> {
        let name_sym = intern(well_known::NAME);
        let alias_sym = intern(well_known::ALIAS);
        let mut out: Vec<Arc<str>> = Vec::new();
        if let Some(facts) = self.spo.get(&entity) {
            for &(pred, obj) in facts {
                if pred != name_sym && pred != alias_sym {
                    continue;
                }
                if let Value::Str(s) = &self.obj_values[obj.0 as usize] {
                    for tok in name_tokens(s) {
                        out.push(Arc::from(tok.as_str()));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    // ------------------------------------------------------------------
    // Probe paths (POS / derived postings)
    // ------------------------------------------------------------------

    /// Subjects asserting the literal fact `(predicate, value)`.
    pub fn by_literal(&self, predicate: Symbol, value: &Value) -> PostingsView<'_> {
        self.lookup_obj(value)
            .and_then(|obj| self.pos.get(&(predicate, obj)))
            .map(BlockPostings::as_view)
            .unwrap_or_default()
    }

    /// Subjects with an edge `(predicate) → target`.
    pub fn by_edge(&self, predicate: Symbol, target: EntityId) -> PostingsView<'_> {
        self.by_literal(predicate, &Value::Entity(target))
    }

    /// Subjects of ontology type `ty` (a literal probe on the `type`
    /// predicate — types need no separate store).
    pub fn by_type(&self, ty: Symbol) -> PostingsView<'_> {
        self.by_literal(intern(well_known::TYPE), &Value::Str(ty.text()))
    }

    /// Subjects whose name/alias contains token (or equals phrase)
    /// `needle`, lowercased by the caller.
    pub fn by_name(&self, needle: &str) -> PostingsView<'_> {
        self.tokens
            .get(needle)
            .map(BlockPostings::as_view)
            .unwrap_or_default()
    }

    /// Subjects referencing `target` through any predicate (OSP).
    pub fn referencing(&self, target: EntityId) -> PostingsView<'_> {
        self.osp
            .get(&target)
            .map(BlockPostings::as_view)
            .unwrap_or_default()
    }

    /// Posting list of one lowered probe — a zero-copy view over the
    /// compressed blocks.
    pub fn postings(&self, probe: &ProbeKey) -> PostingsView<'_> {
        match probe {
            ProbeKey::Name(n) => self.by_name(n),
            ProbeKey::Literal(p, v) => self.by_literal(*p, v),
            ProbeKey::Edge(p, t) => self.by_edge(*p, *t),
            ProbeKey::Type(t) => self.by_type(*t),
        }
    }

    /// Posting-list length of a probe (plan ordering / selectivity).
    pub fn selectivity(&self, probe: &ProbeKey) -> usize {
        self.postings(probe).len()
    }

    /// Mutation stamp of a probe's posting list (0 when the probe misses
    /// the index) — the per-probe plan-cache fingerprint: it changes iff
    /// the posting's membership changed since it was last observed.
    pub fn probe_fingerprint(&self, probe: &ProbeKey) -> u64 {
        self.postings(probe).fingerprint()
    }

    /// Conjunction of several probes via compressed-domain intersection
    /// (bitmap `AND` on dense blocks, directory galloping on sparse ones).
    pub fn probe_all(&self, probes: &[ProbeKey]) -> Vec<EntityId> {
        let views: Vec<PostingsView> = probes.iter().map(|p| self.postings(p)).collect();
        intersect_views(&views)
    }

    /// Approximate heap bytes of all posting lists (POS + OSP + token) in
    /// their compressed block form — the postings memory gauge.
    pub fn index_bytes(&self) -> usize {
        self.pos
            .values()
            .map(BlockPostings::heap_bytes)
            .sum::<usize>()
            + self
                .osp
                .values()
                .map(BlockPostings::heap_bytes)
                .sum::<usize>()
            + self
                .tokens
                .values()
                .map(BlockPostings::heap_bytes)
                .sum::<usize>()
    }

    /// What the same postings would occupy as plain sorted
    /// `Vec<EntityId>`s — the before/after denominator of the gauge.
    pub fn plain_postings_bytes(&self) -> usize {
        let id = std::mem::size_of::<EntityId>();
        (self.pos.values().map(BlockPostings::len).sum::<usize>()
            + self.osp.values().map(BlockPostings::len).sum::<usize>()
            + self.tokens.values().map(BlockPostings::len).sum::<usize>())
            * id
    }

    /// Tier breakdown of the posting storage (observability for the
    /// memory gauge and capacity planning).
    pub fn postings_stats(&self) -> PostingsStats {
        let mut stats = PostingsStats::default();
        for list in self
            .pos
            .values()
            .chain(self.osp.values())
            .chain(self.tokens.values())
        {
            stats.lists += 1;
            stats.entries += list.len();
            if list.is_tiny() {
                stats.tiny_lists += 1;
                stats.tiny_entries += list.len();
                stats.tiny_bytes += list.heap_bytes();
            } else {
                stats.blocked_lists += 1;
                stats.blocked_entries += list.len();
                stats.blocked_bytes += list.heap_bytes();
                stats.blocks += list.block_count();
                stats.dense_blocks += list.dense_block_count();
            }
        }
        stats
    }

    // ------------------------------------------------------------------
    // Row path (SPO)
    // ------------------------------------------------------------------

    /// The flattened `(predicate, value)` facts of one subject, in sorted
    /// column order (with multiplicity).
    pub fn facts_of(&self, entity: EntityId) -> impl Iterator<Item = (Symbol, &Value)> + '_ {
        self.spo
            .get(&entity)
            .into_iter()
            .flatten()
            .map(|&(pred, obj)| (pred, &self.obj_values[obj.0 as usize]))
    }

    /// True if the subject has any indexed fact.
    pub fn contains(&self, entity: EntityId) -> bool {
        self.spo.contains_key(&entity)
    }

    /// All indexed subjects, in arbitrary order.
    pub fn subjects(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.spo.keys().copied()
    }

    /// Split one index into `n` shard indexes by `subject % n` — the
    /// restore path from a checkpoint (one decoded image fans out to the
    /// live store's lock stripes). Posting lists are partitioned in a
    /// single decode pass and re-encoded per shard with the bulk
    /// [`BlockPostings::from_sorted`] path; each shard re-interns only the
    /// object values its subjects actually reference. `partition(1)` is
    /// the identity.
    pub fn partition(self, n: usize) -> Vec<TripleIndex> {
        assert!(n > 0, "at least one shard");
        if n == 1 {
            return vec![self];
        }
        let mut shards: Vec<TripleIndex> = (0..n).map(|_| TripleIndex::new()).collect();
        // Per-shard memo: source dictionary slot → shard-local ObjId
        // (u32::MAX = not yet interned there).
        let mut memo: Vec<Vec<u32>> = vec![vec![u32::MAX; self.obj_values.len()]; n];
        let TripleIndex {
            obj_values,
            spo,
            pos,
            osp,
            tokens,
            ..
        } = self;
        fn map_obj(
            shard: &mut TripleIndex,
            memo: &mut [u32],
            obj_values: &[Value],
            obj: ObjId,
        ) -> ObjId {
            let slot = obj.0 as usize;
            if memo[slot] != u32::MAX {
                return ObjId(memo[slot]);
            }
            let local = intern_obj(
                &mut shard.obj_ids,
                &mut shard.obj_values,
                &mut shard.obj_refs,
                &mut shard.obj_free,
                &obj_values[slot],
            );
            memo[slot] = local.0;
            local
        }
        for (entity, facts) in spo {
            let s = (entity.0 as usize) % n;
            let shard = &mut shards[s];
            let mut column: Vec<(Symbol, ObjId)> = facts
                .into_iter()
                .map(|(pred, obj)| {
                    let local = map_obj(shard, &mut memo[s], &obj_values, obj);
                    shard.obj_refs[local.0 as usize] += 1;
                    (pred, local)
                })
                .collect();
            // Shard-local ObjIds order differently than the source's.
            column.sort_unstable();
            shard.facts += column.len();
            shard.spo.insert(entity, column);
        }
        let mut parts: Vec<Vec<EntityId>> = vec![Vec::new(); n];
        let split = |list: &BlockPostings, parts: &mut Vec<Vec<EntityId>>| {
            for p in parts.iter_mut() {
                p.clear();
            }
            for id in list.iter() {
                parts[(id.0 as usize) % n].push(id);
            }
        };
        for ((pred, obj), list) in pos {
            split(&list, &mut parts);
            for (s, ids) in parts.iter().enumerate() {
                if ids.is_empty() {
                    continue;
                }
                let shard = &mut shards[s];
                let local = map_obj(shard, &mut memo[s], &obj_values, obj);
                shard
                    .pos
                    .insert((pred, local), BlockPostings::from_sorted(ids));
            }
        }
        for (target, list) in osp {
            split(&list, &mut parts);
            for (s, ids) in parts.iter().enumerate() {
                if !ids.is_empty() {
                    shards[s]
                        .osp
                        .insert(target, BlockPostings::from_sorted(ids));
                }
            }
        }
        for (token, list) in tokens {
            split(&list, &mut parts);
            for (s, ids) in parts.iter().enumerate() {
                if !ids.is_empty() {
                    shards[s]
                        .tokens
                        .insert(Arc::clone(&token), BlockPostings::from_sorted(ids));
                }
            }
        }
        shards
    }
}

/// Free-list-aware dictionary interning: reuse a recycled slot before
/// growing. Takes the dictionary fields directly so [`TripleIndex::apply`]
/// can intern while holding a mutable borrow of the SPO column.
fn intern_obj(
    obj_ids: &mut FxHashMap<Value, ObjId>,
    obj_values: &mut Vec<Value>,
    obj_refs: &mut Vec<u32>,
    obj_free: &mut Vec<u32>,
    value: &Value,
) -> ObjId {
    if let Some(&id) = obj_ids.get(value) {
        return id;
    }
    let id = match obj_free.pop() {
        Some(slot) => {
            obj_values[slot as usize] = value.clone();
            obj_refs[slot as usize] = 0;
            ObjId(slot)
        }
        None => {
            let id = ObjId(u32::try_from(obj_values.len()).expect("object dictionary overflow"));
            obj_values.push(value.clone());
            obj_refs.push(0);
            id
        }
    };
    obj_ids.insert(value.clone(), id);
    id
}

/// Multiset difference of two sorted fact lists by a two-cursor merge
/// walk: returns `(added, removed)` — the elements only in `new` and only
/// in `old`, with multiplicity. Shared by the index's per-entity diff and
/// the analytics store's changed-id update so the two can never diverge.
pub fn sorted_multiset_diff<T: Clone + Ord>(old: &[T], new: &[T]) -> (Vec<T>, Vec<T>) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        let take_old = match (old.get(i), new.get(j)) {
            (Some(o), Some(n)) => {
                if o == n {
                    i += 1;
                    j += 1;
                    continue;
                }
                o < n
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_old {
            removed.push(old[i].clone());
            i += 1;
        } else {
            added.push(new[j].clone());
            j += 1;
        }
    }
    (added, removed)
}

/// Intersect sorted, deduplicated posting lists with galloping
/// (exponential) search: iterate the smallest list, gallop in the rest.
/// Complexity `O(|smallest| · Σ log |other|)` — the classic fast path for
/// skewed posting sizes.
pub fn intersect_sorted(lists: &[&[EntityId]]) -> Vec<EntityId> {
    let Some(smallest_idx) = (0..lists.len()).min_by_key(|&i| lists[i].len()) else {
        return Vec::new();
    };
    let smallest = lists[smallest_idx];
    if smallest.is_empty() {
        return Vec::new();
    }
    let others: Vec<&[EntityId]> = lists
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != smallest_idx)
        .map(|(_, l)| *l)
        .collect();
    let mut cursors = vec![0usize; others.len()];
    let mut out = Vec::with_capacity(smallest.len());
    'candidates: for &id in smallest {
        for (list, cursor) in others.iter().zip(cursors.iter_mut()) {
            match gallop_to(list, *cursor, id) {
                Some(found_at) => *cursor = found_at + 1,
                None => {
                    // Advance the cursor past smaller ids for the next probe.
                    *cursor = lower_bound(list, *cursor, id);
                    if *cursor >= list.len() {
                        break 'candidates;
                    }
                    continue 'candidates;
                }
            }
        }
        out.push(id);
    }
    out
}

/// Galloping search for `id` in `list[from..]`; `Some(position)` on a hit.
fn gallop_to(list: &[EntityId], from: usize, id: EntityId) -> Option<usize> {
    let at = lower_bound(list, from, id);
    (at < list.len() && list[at] == id).then_some(at)
}

/// First position in `list[from..]` whose value is `>= id`, found by
/// doubling steps then binary search within the bracketed window.
fn lower_bound(list: &[EntityId], from: usize, id: EntityId) -> usize {
    if from >= list.len() || list[from] >= id {
        return from;
    }
    let mut step = 1;
    let mut lo = from;
    let mut hi = from + 1;
    while hi < list.len() && list[hi] < id {
        lo = hi;
        step *= 2;
        hi = (hi + step).min(list.len());
        if hi == list.len() {
            break;
        }
    }
    // Invariant: list[lo] < id and the answer lies in (lo, hi].
    lo + list[lo..hi].partition_point(|&x| x < id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FactMeta, KnowledgeGraph, RelId, SourceId};

    fn meta() -> FactMeta {
        FactMeta::from_source(SourceId(1), 0.9)
    }

    fn record(id: u64, facts: &[(&str, Value)]) -> EntityRecord {
        let mut r = EntityRecord::new(EntityId(id));
        for (pred, value) in facts {
            r.triples.push(ExtendedTriple::simple(
                EntityId(id),
                intern(pred),
                value.clone(),
                meta(),
            ));
        }
        r
    }

    #[test]
    fn update_entity_builds_all_three_access_paths() {
        let mut idx = TripleIndex::new();
        idx.update_entity(&record(
            1,
            &[
                ("name", Value::str("Golden State Warriors")),
                ("type", Value::str("sports_team")),
                ("arena", Value::Entity(EntityId(9))),
                ("founded", Value::Int(1946)),
            ],
        ));
        // POS probes.
        assert_eq!(
            idx.by_literal(intern("founded"), &Value::Int(1946)),
            &[EntityId(1)]
        );
        assert_eq!(idx.by_edge(intern("arena"), EntityId(9)), &[EntityId(1)]);
        assert_eq!(idx.by_type(intern("sports_team")), &[EntityId(1)]);
        assert_eq!(idx.by_name("warriors"), &[EntityId(1)]);
        assert_eq!(idx.by_name("golden state warriors"), &[EntityId(1)]);
        // OSP.
        assert_eq!(idx.referencing(EntityId(9)), &[EntityId(1)]);
        // SPO.
        assert_eq!(idx.facts_of(EntityId(1)).count(), 4);
        assert_eq!(idx.fact_count(), 4);
    }

    #[test]
    fn update_entity_diffs_and_cleans_up() {
        let mut idx = TripleIndex::new();
        idx.update_entity(&record(
            1,
            &[("name", Value::str("Old Name")), ("x", Value::Int(1))],
        ));
        let delta = idx.update_entity(&record(
            1,
            &[("name", Value::str("New Name")), ("x", Value::Int(1))],
        ));
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.removed.len(), 1);
        assert!(idx.by_name("old").is_empty());
        assert_eq!(idx.by_name("new"), &[EntityId(1)]);
        assert_eq!(
            idx.by_literal(intern("x"), &Value::Int(1)),
            &[EntityId(1)],
            "unchanged kept"
        );
        assert_eq!(idx.fact_count(), 2);
    }

    #[test]
    fn remove_entity_empties_every_posting() {
        let mut idx = TripleIndex::new();
        idx.update_entity(&record(
            1,
            &[
                ("name", Value::str("X")),
                ("friend", Value::Entity(EntityId(2))),
            ],
        ));
        let delta = idx.remove_entity(EntityId(1));
        assert_eq!(delta.removed.len(), 2);
        assert!(idx.is_empty());
        assert!(idx.by_name("x").is_empty());
        assert!(idx.referencing(EntityId(2)).is_empty());
        assert!(!idx.contains(EntityId(1)));
    }

    #[test]
    fn deltas_replay_onto_an_empty_index() {
        let mut source = TripleIndex::new();
        let mut replayed = TripleIndex::new();
        let feed = vec![
            source.update_entity(&record(
                1,
                &[
                    ("name", Value::str("Alpha")),
                    ("knows", Value::Entity(EntityId(2))),
                ],
            )),
            source.update_entity(&record(2, &[("name", Value::str("Beta"))])),
            source.update_entity(&record(
                1,
                &[
                    ("name", Value::str("Alpha Prime")),
                    ("knows", Value::Entity(EntityId(2))),
                ],
            )),
            source.remove_entity(EntityId(2)),
        ];
        for delta in &feed {
            replayed.apply(delta);
        }
        assert_eq!(replayed.fact_count(), source.fact_count());
        for id in [1u64, 2] {
            let a: Vec<(Symbol, Value)> = source
                .facts_of(EntityId(id))
                .map(|(p, v)| (p, v.clone()))
                .collect();
            let b: Vec<(Symbol, Value)> = replayed
                .facts_of(EntityId(id))
                .map(|(p, v)| (p, v.clone()))
                .collect();
            assert_eq!(a, b, "SPO agrees for entity {id}");
        }
        assert_eq!(replayed.by_name("alpha"), source.by_name("alpha"));
        assert_eq!(
            replayed.referencing(EntityId(2)),
            source.referencing(EntityId(2))
        );
    }

    #[test]
    fn composite_facets_flatten_to_dotted_predicates() {
        let mut idx = TripleIndex::new();
        let mut r = EntityRecord::new(EntityId(1));
        r.triples.push(ExtendedTriple::composite(
            EntityId(1),
            intern("educated_at"),
            RelId(1),
            intern("school"),
            Value::str("UW"),
            meta(),
        ));
        idx.update_entity(&r);
        assert_eq!(
            idx.by_literal(intern("educated_at.school"), &Value::str("UW")),
            &[EntityId(1)]
        );
    }

    #[test]
    fn duplicate_flattened_facts_keep_multiplicity() {
        let mut idx = TripleIndex::new();
        let mut r = EntityRecord::new(EntityId(1));
        for rel in [RelId(1), RelId(2)] {
            r.triples.push(ExtendedTriple::composite(
                EntityId(1),
                intern("educated_at"),
                rel,
                intern("degree"),
                Value::str("PhD"),
                meta(),
            ));
        }
        idx.update_entity(&r);
        assert_eq!(idx.fact_count(), 2);
        // Dropping one occurrence keeps the posting alive…
        r.triples.pop();
        idx.update_entity(&r);
        assert_eq!(idx.fact_count(), 1);
        assert_eq!(
            idx.by_literal(intern("educated_at.degree"), &Value::str("PhD")),
            &[EntityId(1)]
        );
        // …dropping the last removes it.
        r.triples.pop();
        idx.update_entity(&r);
        assert!(idx
            .by_literal(intern("educated_at.degree"), &Value::str("PhD"))
            .is_empty());
    }

    #[test]
    fn probe_all_intersects_conjunctively() {
        let mut idx = TripleIndex::new();
        for i in 1..=100u64 {
            let mut facts = vec![("type", Value::str("song"))];
            if i % 2 == 0 {
                facts.push(("artist", Value::Entity(EntityId(1000))));
            }
            if i % 3 == 0 {
                facts.push(("explicit", Value::Bool(true)));
            }
            idx.update_entity(&record(i, &facts));
        }
        let hits = idx.probe_all(&[
            ProbeKey::Type(intern("song")),
            ProbeKey::Edge(intern("artist"), EntityId(1000)),
            ProbeKey::Literal(intern("explicit"), Value::Bool(true)),
        ]);
        let expected: Vec<EntityId> = (1..=100u64).filter(|i| i % 6 == 0).map(EntityId).collect();
        assert_eq!(hits, expected);
        assert!(idx
            .probe_all(&[
                ProbeKey::Name("nope".into()),
                ProbeKey::Type(intern("song"))
            ])
            .is_empty());
    }

    #[test]
    fn galloping_intersection_matches_naive() {
        let a: Vec<EntityId> = (0..1000).step_by(3).map(EntityId).collect();
        let b: Vec<EntityId> = (0..1000).step_by(5).map(EntityId).collect();
        let c: Vec<EntityId> = (0..1000).map(EntityId).collect();
        let got = intersect_sorted(&[&a, &b, &c]);
        let expected: Vec<EntityId> = (0..1000u64).filter(|i| i % 15 == 0).map(EntityId).collect();
        assert_eq!(got, expected);
        assert!(intersect_sorted(&[&a, &[]]).is_empty());
        assert!(intersect_sorted(&[]).is_empty());
        assert_eq!(intersect_sorted(&[&a]), a);
    }

    #[test]
    fn volatile_churn_does_not_grow_the_object_dictionary() {
        let mut idx = TripleIndex::new();
        idx.update_entity(&record(
            1,
            &[
                ("name", Value::str("Song A")),
                ("popularity", Value::Int(0)),
            ],
        ));
        let baseline = idx.obj_dict_slots();
        for i in 1..=1_000i64 {
            // Every cycle retracts the old popularity int and asserts a new
            // one — the §2.4 volatile-overwrite shape that used to leak a
            // dictionary entry per cycle.
            idx.update_entity(&record(
                1,
                &[
                    ("name", Value::str("Song A")),
                    ("popularity", Value::Int(i)),
                ],
            ));
            assert_eq!(idx.obj_dict_len(), 2, "cycle {i}: name + current int");
        }
        // One transient slot: the fresh int is interned before the old one
        // is recycled, after which the freed slot is reused forever.
        assert!(
            idx.obj_dict_slots() <= baseline + 1,
            "dictionary grew with churn: {} slots vs baseline {baseline}",
            idx.obj_dict_slots()
        );
        // Retraction returns every slot to the free list.
        idx.remove_entity(EntityId(1));
        assert_eq!(idx.obj_dict_len(), 0);
    }

    #[test]
    fn shared_values_survive_partial_retraction() {
        let mut idx = TripleIndex::new();
        // Two subjects assert the same value; retracting one keeps it.
        idx.update_entity(&record(1, &[("genre", Value::str("jazz"))]));
        idx.update_entity(&record(2, &[("genre", Value::str("jazz"))]));
        assert_eq!(idx.obj_dict_len(), 1);
        idx.remove_entity(EntityId(1));
        assert_eq!(idx.obj_dict_len(), 1);
        assert_eq!(
            idx.by_literal(intern("genre"), &Value::str("jazz")),
            &[EntityId(2)]
        );
        idx.remove_entity(EntityId(2));
        assert_eq!(idx.obj_dict_len(), 0);
        assert!(idx
            .by_literal(intern("genre"), &Value::str("jazz"))
            .is_empty());
    }

    #[test]
    fn recycled_slots_are_reused_for_new_values() {
        let mut idx = TripleIndex::new();
        idx.update_entity(&record(1, &[("x", Value::Int(1)), ("y", Value::Int(2))]));
        let slots = idx.obj_dict_slots();
        idx.remove_entity(EntityId(1));
        assert_eq!(idx.obj_dict_len(), 0);
        // Two new values fit entirely in the recycled slots.
        idx.update_entity(&record(2, &[("x", Value::Int(3)), ("y", Value::Int(4))]));
        assert_eq!(idx.obj_dict_slots(), slots, "free list reused");
        assert_eq!(idx.by_literal(intern("x"), &Value::Int(3)), &[EntityId(2)]);
        assert!(idx.by_literal(intern("x"), &Value::Int(1)).is_empty());
    }

    #[test]
    fn kg_integration_keeps_index_live() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(
            EntityId(1),
            "Billie Eilish",
            "music_artist",
            SourceId(1),
            0.9,
        );
        assert_eq!(kg.index().by_name("billie"), &[EntityId(1)]);
        assert_eq!(kg.index().by_type(intern("music_artist")), &[EntityId(1)]);
    }
}
