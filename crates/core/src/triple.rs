//! The extended-triples representation (§2.1, Table 1).
//!
//! A plain RDF triple is `<subject, predicate, object>`. Saga extends it in
//! two ways:
//!
//! 1. **Composite relationships**: a one-hop relationship node (e.g. the
//!    `education` object linking a person to `school`/`degree`/`year`) is
//!    flattened into the subject's own records via the `(r_id, r_predicate)`
//!    columns, so frequently-used one-hop data is retrievable without a
//!    self-join or graph traversal.
//! 2. **Metadata**: provenance (`sources`), `locale` and `trust`, carried in
//!    [`FactMeta`].

use std::fmt;
use std::sync::Arc;

use crate::{EntityId, FactMeta, RelId, SourceId, Symbol, Value};

/// The subject of a triple: either a canonical KG entity or an entity still
/// in an upstream source's namespace (pre-linking).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum SubjectRef {
    /// A canonical KG entity.
    Kg(EntityId),
    /// A source entity, identified by `(source, local id)`. The local id is
    /// the mandatory unique ID predicate enforced by the data transformer
    /// (§2.2) — it is what makes incremental construction possible.
    Source(SourceId, Arc<str>),
}

impl SubjectRef {
    /// Shorthand for a source-namespace subject.
    pub fn source(source: SourceId, local: impl AsRef<str>) -> SubjectRef {
        SubjectRef::Source(source, Arc::from(local.as_ref()))
    }

    /// The KG entity id, if already linked.
    pub fn as_kg(&self) -> Option<EntityId> {
        match self {
            SubjectRef::Kg(id) => Some(*id),
            SubjectRef::Source(..) => None,
        }
    }

    /// True if this subject still lives in a source namespace.
    pub fn is_source(&self) -> bool {
        matches!(self, SubjectRef::Source(..))
    }
}

impl fmt::Display for SubjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubjectRef::Kg(id) => write!(f, "{id}"),
            SubjectRef::Source(s, l) => write!(f, "{s}:{l}"),
        }
    }
}

impl From<EntityId> for SubjectRef {
    fn from(id: EntityId) -> SubjectRef {
        SubjectRef::Kg(id)
    }
}

/// The relationship-node part of an extended triple: which composite node
/// (`r_id`) the fact belongs to and which facet (`r_predicate`) it fills.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RelPart {
    /// Relationship node id, scoped to `(subject, predicate)`.
    pub rel_id: RelId,
    /// Facet predicate inside the relationship node (e.g. `school`).
    pub rel_predicate: Symbol,
}

/// One row of the extended-triples table (Table 1 of the paper).
#[derive(Clone, PartialEq, Debug)]
pub struct ExtendedTriple {
    /// The entity the fact is about.
    pub subject: SubjectRef,
    /// Top-level predicate (e.g. `name`, `educated_at`).
    pub predicate: Symbol,
    /// Present iff the fact is a facet of a composite relationship node.
    pub rel: Option<RelPart>,
    /// Literal value or entity reference.
    pub object: Value,
    /// Provenance / locale / trust metadata.
    pub meta: FactMeta,
}

impl ExtendedTriple {
    /// A simple (non-composite) fact.
    pub fn simple(
        subject: impl Into<SubjectRef>,
        predicate: Symbol,
        object: Value,
        meta: FactMeta,
    ) -> ExtendedTriple {
        ExtendedTriple {
            subject: subject.into(),
            predicate,
            rel: None,
            object,
            meta,
        }
    }

    /// A facet of a composite relationship node.
    pub fn composite(
        subject: impl Into<SubjectRef>,
        predicate: Symbol,
        rel_id: RelId,
        rel_predicate: Symbol,
        object: Value,
        meta: FactMeta,
    ) -> ExtendedTriple {
        ExtendedTriple {
            subject: subject.into(),
            predicate,
            rel: Some(RelPart {
                rel_id,
                rel_predicate,
            }),
            object,
            meta,
        }
    }

    /// The logical identity of the fact, excluding object and metadata.
    ///
    /// Fusion's outer join matches KG facts and source facts on this key
    /// plus the object value.
    pub fn key(&self) -> TripleKey {
        TripleKey {
            subject: self.subject.clone(),
            predicate: self.predicate,
            rel: self.rel,
        }
    }

    /// True if the fact is a facet of a composite relationship.
    pub fn is_composite(&self) -> bool {
        self.rel.is_some()
    }

    /// Render as a Table 1-style row: `subj | predicate | r_id | r_pred | obj`.
    pub fn render_row(&self) -> String {
        let (rid, rpred) = match self.rel {
            Some(RelPart {
                rel_id,
                rel_predicate,
            }) => (rel_id.to_string(), rel_predicate.to_string()),
            None => (String::new(), String::new()),
        };
        let locale = self.meta.locale.map(|l| l.to_string()).unwrap_or_default();
        let sources: Vec<String> = self.meta.sources().map(|s| s.to_string()).collect();
        let trust: Vec<String> = self
            .meta
            .provenance
            .iter()
            .map(|st| format!("{:.1}", st.trust))
            .collect();
        format!(
            "{} | {} | {} | {} | {} | {} | [{}] | [{}]",
            self.subject,
            self.predicate,
            rid,
            rpred,
            self.object.render(),
            locale,
            sources.join(", "),
            trust.join(", ")
        )
    }
}

/// Logical fact identity used by fusion and delta computation: subject,
/// predicate and (for composite facts) the relationship facet.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TripleKey {
    /// Subject of the fact.
    pub subject: SubjectRef,
    /// Top-level predicate.
    pub predicate: Symbol,
    /// Relationship facet, if composite.
    pub rel: Option<RelPart>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern;

    fn meta() -> FactMeta {
        FactMeta::localized(SourceId(2), 0.8, "en")
    }

    /// Reproduces the exact example of Table 1 / Figure 2 of the paper.
    #[test]
    fn table1_example_renders_as_in_the_paper() {
        let e1 = EntityId(1);
        let name = ExtendedTriple::simple(
            e1,
            intern("name"),
            Value::str("J. Smith"),
            FactMeta {
                provenance: vec![
                    crate::SourceTrust {
                        source: SourceId(1),
                        trust: 0.9,
                    },
                    crate::SourceTrust {
                        source: SourceId(2),
                        trust: 0.8,
                    },
                ],
                locale: Some(intern("en")),
            },
        );
        let school = ExtendedTriple::composite(
            e1,
            intern("educated_at"),
            RelId(1),
            intern("school"),
            Value::str("UW"),
            meta(),
        );
        let degree = ExtendedTriple::composite(
            e1,
            intern("educated_at"),
            RelId(1),
            intern("degree"),
            Value::str("PhD"),
            meta(),
        );
        let year = ExtendedTriple::composite(
            e1,
            intern("educated_at"),
            RelId(1),
            intern("year"),
            Value::Int(2005),
            meta(),
        );

        assert_eq!(
            name.render_row(),
            "AKG:1 | name |  |  | J. Smith | en | [src1, src2] | [0.9, 0.8]"
        );
        assert_eq!(
            school.render_row(),
            "AKG:1 | educated_at | r1 | school | UW | en | [src2] | [0.8]"
        );
        assert_eq!(
            degree.render_row(),
            "AKG:1 | educated_at | r1 | degree | PhD | en | [src2] | [0.8]"
        );
        assert_eq!(
            year.render_row(),
            "AKG:1 | educated_at | r1 | year | 2005 | en | [src2] | [0.8]"
        );
        // All three facets share one relationship node.
        assert_eq!(school.rel.unwrap().rel_id, degree.rel.unwrap().rel_id);
        assert_eq!(degree.rel.unwrap().rel_id, year.rel.unwrap().rel_id);
    }

    #[test]
    fn key_ignores_object_and_meta() {
        let e1 = EntityId(1);
        let a = ExtendedTriple::simple(e1, intern("name"), Value::str("A"), meta());
        let b = ExtendedTriple::simple(e1, intern("name"), Value::str("B"), FactMeta::default());
        assert_eq!(a.key(), b.key());
        let c = ExtendedTriple::simple(e1, intern("alias"), Value::str("A"), meta());
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn composite_and_simple_have_distinct_keys() {
        let e1 = EntityId(1);
        let simple = ExtendedTriple::simple(e1, intern("p"), Value::Int(1), meta());
        let comp = ExtendedTriple::composite(
            e1,
            intern("p"),
            RelId(1),
            intern("facet"),
            Value::Int(1),
            meta(),
        );
        assert_ne!(simple.key(), comp.key());
        assert!(comp.is_composite());
        assert!(!simple.is_composite());
    }

    #[test]
    fn subject_ref_accessors() {
        let kg = SubjectRef::Kg(EntityId(5));
        assert_eq!(kg.as_kg(), Some(EntityId(5)));
        assert!(!kg.is_source());
        let src = SubjectRef::source(SourceId(1), "m42");
        assert_eq!(src.as_kg(), None);
        assert!(src.is_source());
        assert_eq!(src.to_string(), "src1:m42");
    }
}
