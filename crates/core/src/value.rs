//! The object side of a triple.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::EntityId;

/// A literal value or entity reference stored in a triple's `object` field.
///
/// §2.1: "object can either be a literal value or a reference to another
/// entity". Before subject linking / object resolution, references coming
/// from a source are still in the *source namespace* and are represented by
/// [`Value::SourceRef`]; knowledge construction rewrites them into
/// [`Value::Entity`] (or mints new entities).
///
/// `Value` implements `Eq`/`Hash`/`Ord` with a total order (floats compare
/// by their bit pattern through [`f64::total_cmp`]) so it can key hash maps
/// and sort columns in the analytics store.
#[derive(Clone, Debug)]
pub enum Value {
    /// Absent / explicit null (source schemas may carry empty predicates).
    Null,
    /// A boolean literal.
    Bool(bool),
    /// A 64-bit integer literal.
    Int(i64),
    /// A 64-bit float literal.
    Float(f64),
    /// A string literal (shared; strings are cloned constantly on ingest paths).
    Str(Arc<str>),
    /// A resolved reference to a KG entity.
    Entity(EntityId),
    /// An unresolved reference in an upstream source's own namespace.
    SourceRef(Arc<str>),
}

impl Value {
    /// Shorthand for a string literal value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Shorthand for an unresolved source-namespace reference.
    pub fn source_ref(s: impl AsRef<str>) -> Value {
        Value::SourceRef(Arc::from(s.as_ref()))
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string payload, if this is a string literal.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload; integers are widened for convenience.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean literal.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The KG entity reference, if resolved.
    pub fn as_entity(&self) -> Option<EntityId> {
        match self {
            Value::Entity(e) => Some(*e),
            _ => None,
        }
    }

    /// The source-namespace reference, if unresolved.
    pub fn as_source_ref(&self) -> Option<&str> {
        match self {
            Value::SourceRef(s) => Some(s),
            _ => None,
        }
    }

    /// A small integer identifying the variant, used for cross-variant
    /// ordering and by the columnar store's type dispatch.
    pub fn kind_tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Entity(_) => 5,
            Value::SourceRef(_) => 6,
        }
    }

    /// Render the value the way the paper's Table 1 renders objects.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "∅".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Str(s) => s.to_string(),
            Value::Entity(e) => e.to_string(),
            Value::SourceRef(s) => format!("ref:{s}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Entity(a), Entity(b)) => a.cmp(b),
            (SourceRef(a), SourceRef(b)) => a.cmp(b),
            _ => self.kind_tag().cmp(&other.kind_tag()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.kind_tag());
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Entity(e) => e.hash(state),
            Value::SourceRef(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<EntityId> for Value {
    fn from(v: EntityId) -> Value {
        Value::Entity(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_and_hash_agree_for_floats() {
        let a = Value::Float(1.5);
        let b = Value::Float(1.5);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        // NaN equals itself under total ordering, so it can key maps.
        let n1 = Value::Float(f64::NAN);
        let n2 = Value::Float(f64::NAN);
        assert_eq!(n1, n2);
        assert_eq!(hash_of(&n1), hash_of(&n2));
    }

    #[test]
    fn cross_variant_ordering_is_total_and_consistent() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(3),
            Value::Float(2.0),
            Value::str("abc"),
            Value::Entity(EntityId(7)),
            Value::source_ref("m1"),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "kind order must follow tag order");
            }
        }
    }

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Int(4).as_float(), Some(4.0));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Entity(EntityId(1)).as_entity(), Some(EntityId(1)));
        assert_eq!(Value::source_ref("a").as_source_ref(), Some("a"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn from_impls_produce_the_right_variants() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(EntityId(9)), Value::Entity(EntityId(9)));
    }

    #[test]
    fn render_matches_table1_style() {
        assert_eq!(Value::str("J. Smith").render(), "J. Smith");
        assert_eq!(Value::Entity(EntityId(12)).render(), "AKG:12");
        assert_eq!(Value::Null.render(), "∅");
    }
}
