//! Deterministic failpoints: named fault-injection sites for chaos drills.
//!
//! Production code marks the places where the platform touches something
//! that can fail in the real world — an fsync, a checkpoint publish, a
//! replica's replay poll, a server's socket loop — with a *failpoint*: a
//! named site that is a no-op branch on one relaxed atomic load until a
//! test arms it. An armed site can inject an error, a delay (a wedge), or
//! a panic, on a precise hit schedule (`after` skips, `times` firings), so
//! "the third fsync fails" or "replica 2's poll loop wedges for 200 ms"
//! becomes a deterministic, repeatable test instead of ad-hoc scaffolding.
//!
//! # Usage
//!
//! Sites are declared with the [`failpoint!`](crate::failpoint) macro (in
//! code whose enclosing function returns [`Result`]) or a direct
//! [`check`]/[`check_scoped`] call (in loops that handle the error
//! themselves). Site names are **never** inline string literals at the
//! call site: every site is a constant in the [`sites`] catalog, which a
//! CI grep guard enforces — the catalog is the single place to see what
//! can be made to fail.
//!
//! ```
//! use saga_core::fail::{self, sites, FailAction};
//!
//! // Arm: the second hit (and only the second) of the fsync site errors.
//! fail::configure(sites::OPLOG_APPEND_FSYNC, FailAction::error().after(1).times(1));
//! assert!(fail::check(sites::OPLOG_APPEND_FSYNC).is_ok()); // hit 1: skipped
//! assert!(fail::check(sites::OPLOG_APPEND_FSYNC).is_err()); // hit 2: fires
//! assert!(fail::check(sites::OPLOG_APPEND_FSYNC).is_ok()); // hit 3: exhausted
//! fail::clear_all();
//! ```
//!
//! # Scopes
//!
//! Several instances of one component may run in a single process (three
//! in-process `saga-server`s in a failover drill, N fleet workers). A
//! *scope* string — typically a server or fleet label — lets a drill arm
//! a site for one instance only: [`configure_scoped`] registers under
//! `(site, scope)`, and a [`check_scoped`] call matches its own scope
//! first, then the unscoped configuration. Unscoped [`configure`] arms
//! the site for every scope.
//!
//! # Determinism
//!
//! The registry itself has no randomness: a site fires on exactly the
//! configured hits, in the order the instrumented code reaches them.
//! Randomized chaos drills get their nondeterminism from a *seeded*
//! schedule generator on the test side, so any failing schedule replays
//! from its seed. Delays sleep in short slices and re-check the registry
//! epoch, so [`clear_all`] promptly releases wedged threads.
//!
//! # Cost when disarmed
//!
//! The `failpoint!` macro compiles to one relaxed atomic load and a
//! never-taken branch while nothing is configured (the registry lock is
//! not touched). The `failover_resilience` bench holds this below 1% of
//! the oplog append hot path. Hit counters ([`hits`]) tick only while at
//! least one site is armed, for the same reason.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::{Result, SagaError};

/// The catalog of failpoint sites threaded through the platform. Every
/// `failpoint!`/[`check`] call names one of these constants — never an
/// inline literal (CI-guarded) — so this list is the complete fault
/// surface a chaos drill can drive.
pub mod sites {
    /// Oplog: serializing + writing one appended operation line.
    pub const OPLOG_APPEND_WRITE: &str = "oplog::append_write";
    /// Oplog: the per-append fsync under `FlushPolicy::Fsync`-style
    /// durability (fires for explicit `sync()` batch fsyncs too).
    pub const OPLOG_APPEND_FSYNC: &str = "oplog::append_fsync";
    /// Oplog: the atomic rewrite inside log compaction.
    pub const OPLOG_COMPACT: &str = "oplog::compact";
    /// Checkpoint: the temp-write/fsync/rename publish of one artifact.
    pub const CHECKPOINT_PUBLISH: &str = "checkpoint::publish";
    /// Fleet: top of a replica worker's replay poll loop (scoped by
    /// `FleetConfig::fail_scope`). An error kills the worker the way a
    /// replay failure would; a panic exercises the drop-guard death
    /// path; a delay wedges it.
    pub const FLEET_WORKER_POLL: &str = "fleet::worker_poll";
    /// Net server: the per-connection read loop, checked after each
    /// decoded frame and before admission (scoped by
    /// `ServerConfig::fail_scope`). An error drops the connection with
    /// the request unexecuted — the kill -9 a remote client observes; a
    /// delay wedges the reader.
    pub const NET_SERVER_READ: &str = "net::server_read";
    /// Net server: the response write path (scoped by
    /// `ServerConfig::fail_scope`). An error drops the response after
    /// the request executed — the ack-lost half-failure that makes a
    /// commit's outcome ambiguous to its client.
    pub const NET_SERVER_WRITE: &str = "net::server_write";
}

/// What an armed site does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailKind {
    /// Return a typed error (`SagaError::Storage`) from the site.
    Error,
    /// Sleep for the given duration, then proceed normally. Sleeps in
    /// short slices and aborts early if the registry changes, so
    /// [`clear_all`] un-wedges parked threads promptly.
    Delay(Duration),
    /// Panic at the site (exercises drop-guard / supervisor paths).
    Panic,
}

/// One site's armed behaviour: the action plus its hit schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailAction {
    /// What happens on a firing hit.
    pub kind: FailKind,
    /// Hits to pass through unharmed before the first firing.
    pub after: u64,
    /// Firings before the site exhausts (`u64::MAX` = unlimited).
    pub times: u64,
}

impl FailAction {
    /// An error action firing on every hit until cleared.
    pub fn error() -> Self {
        FailAction {
            kind: FailKind::Error,
            after: 0,
            times: u64::MAX,
        }
    }

    /// A delay (wedge) action firing on every hit until cleared.
    pub fn delay(d: Duration) -> Self {
        FailAction {
            kind: FailKind::Delay(d),
            after: 0,
            times: u64::MAX,
        }
    }

    /// A panic action firing on every hit until cleared.
    pub fn panic() -> Self {
        FailAction {
            kind: FailKind::Panic,
            after: 0,
            times: u64::MAX,
        }
    }

    /// Pass `n` hits through unharmed before the first firing.
    pub fn after(mut self, n: u64) -> Self {
        self.after = n;
        self
    }

    /// Fire at most `n` times, then let hits pass again.
    pub fn times(mut self, n: u64) -> Self {
        self.times = n;
        self
    }
}

/// Live state of one armed `(site, scope)` entry.
struct SiteState {
    action: FailAction,
    /// Hits still to skip before firing.
    skip: u64,
    /// Firings left (`u64::MAX` = unlimited).
    left: u64,
}

struct Registry {
    /// Armed entries keyed by `(site, scope)`; the unscoped entry uses
    /// an empty scope and matches every scoped check.
    entries: HashMap<(String, String), SiteState>,
    /// Hits per site (any scope), counted while the registry is armed.
    hits: HashMap<String, u64>,
}

/// Number of armed entries; the disarmed fast path is one relaxed load.
static ARMED: AtomicUsize = AtomicUsize::new(0);
/// Bumped on every configure/clear; delay slices watch it to abort early.
static EPOCH: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            entries: HashMap::new(),
            hits: HashMap::new(),
        })
    })
}

/// True while at least one site is armed. The `failpoint!` macro checks
/// this before touching anything else; instrumented hot paths pay one
/// relaxed atomic load when the registry is empty.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed) != 0
}

/// Arm `site` for every scope.
pub fn configure(site: &str, action: FailAction) {
    configure_scoped(site, "", action);
}

/// Arm `site` for checks carrying exactly `scope` (an empty scope arms
/// it for every scope). Re-configuring a live entry replaces it and
/// resets its hit schedule.
pub fn configure_scoped(site: &str, scope: &str, action: FailAction) {
    let mut reg = registry().lock();
    let state = SiteState {
        skip: action.after,
        left: action.times,
        action,
    };
    if reg
        .entries
        .insert((site.to_string(), scope.to_string()), state)
        .is_none()
    {
        ARMED.fetch_add(1, Ordering::Relaxed);
    }
    EPOCH.fetch_add(1, Ordering::Relaxed);
}

/// Disarm `site` (every scope).
pub fn clear(site: &str) {
    let mut reg = registry().lock();
    let before = reg.entries.len();
    reg.entries.retain(|(s, _), _| s != site);
    let removed = before - reg.entries.len();
    if removed > 0 {
        ARMED.fetch_sub(removed, Ordering::Relaxed);
    }
    EPOCH.fetch_add(1, Ordering::Relaxed);
}

/// Disarm everything and reset hit counters. Wedged delays notice the
/// epoch change and return within one sleep slice.
pub fn clear_all() {
    let mut reg = registry().lock();
    let removed = reg.entries.len();
    reg.entries.clear();
    reg.hits.clear();
    if removed > 0 {
        ARMED.fetch_sub(removed, Ordering::Relaxed);
    }
    EPOCH.fetch_add(1, Ordering::Relaxed);
}

/// Times `site` has been checked (any scope) since the registry was last
/// cleared. Counted only while armed — the disarmed fast path does not
/// touch the registry.
pub fn hits(site: &str) -> u64 {
    registry().lock().hits.get(site).copied().unwrap_or(0)
}

/// Check an unscoped site. Equivalent to [`check_scoped`] with `""`.
pub fn check(site: &str) -> Result<()> {
    check_scoped(site, "")
}

/// Check a scoped site: fires if the site is armed for this scope, or
/// armed unscoped. Returns the injected error on an `Error` firing,
/// sleeps through a `Delay`, panics on a `Panic`; otherwise `Ok(())`.
pub fn check_scoped(site: &str, scope: &str) -> Result<()> {
    if !armed() {
        return Ok(());
    }
    let fired = {
        let mut reg = registry().lock();
        *reg.hits.entry(site.to_string()).or_insert(0) += 1;
        let state = match lookup(&mut reg, site, scope) {
            Some(state) => state,
            None => return Ok(()),
        };
        if state.skip > 0 {
            state.skip -= 1;
            return Ok(());
        }
        if state.left == 0 {
            return Ok(());
        }
        if state.left != u64::MAX {
            state.left -= 1;
        }
        state.action.kind.clone()
        // Lock drops here: delays must never sleep under the registry
        // lock, or clear_all() could not un-wedge them.
    };
    match fired {
        FailKind::Error => Err(SagaError::Storage(format!(
            "failpoint {site}: injected error"
        ))),
        FailKind::Delay(total) => {
            sliced_sleep(total);
            Ok(())
        }
        FailKind::Panic => panic!("failpoint {site}: injected panic"),
    }
}

fn lookup<'a>(reg: &'a mut Registry, site: &str, scope: &str) -> Option<&'a mut SiteState> {
    // Borrow-checker friendly two-phase lookup: decide the key, then
    // take the single mutable borrow.
    let scoped = (site.to_string(), scope.to_string());
    let key = if reg.entries.contains_key(&scoped) {
        scoped
    } else {
        (site.to_string(), String::new())
    };
    reg.entries.get_mut(&key)
}

/// Sleep `total` in short slices, returning early if the registry is
/// reconfigured (so a cleared wedge releases its thread promptly).
fn sliced_sleep(total: Duration) {
    const SLICE: Duration = Duration::from_millis(5);
    let epoch = EPOCH.load(Ordering::Relaxed);
    let mut remaining = total;
    while !remaining.is_zero() {
        let nap = remaining.min(SLICE);
        std::thread::sleep(nap);
        remaining = remaining.saturating_sub(nap);
        if EPOCH.load(Ordering::Relaxed) != epoch {
            return;
        }
    }
}

/// Declare a failpoint site in code whose enclosing function returns
/// [`Result`](crate::Result): a no-op branch on one relaxed atomic load
/// until the site is armed, then whatever the armed action injects.
///
/// Takes a site constant from [`fail::sites`](sites) — inline string
/// literals at call sites are rejected by a CI guard — and optionally a
/// scope expression:
///
/// ```ignore
/// saga_core::failpoint!(fail::sites::OPLOG_APPEND_FSYNC);
/// saga_core::failpoint!(fail::sites::NET_SERVER_READ, &self.scope);
/// ```
///
/// Loops that handle injected errors themselves call
/// [`fail::check`](check) / [`fail::check_scoped`](check_scoped)
/// directly instead.
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        if $crate::fail::armed() {
            $crate::fail::check($site)?;
        }
    };
    ($site:expr, $scope:expr) => {
        if $crate::fail::armed() {
            $crate::fail::check_scoped($site, $scope)?;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// The registry is process-global; tests in this module serialize on
    /// one lock so their schedules cannot interleave.
    fn serial() -> parking_lot::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = GATE.get_or_init(|| Mutex::new(())).lock();
        clear_all();
        guard
    }

    const SITE: &str = sites::OPLOG_APPEND_FSYNC;

    #[test]
    fn disarmed_sites_are_free_and_ok() {
        let _g = serial();
        assert!(!armed());
        assert!(check(SITE).is_ok());
        assert_eq!(hits(SITE), 0, "disarmed checks do not count hits");
    }

    #[test]
    fn error_fires_on_the_exact_schedule() {
        let _g = serial();
        configure(SITE, FailAction::error().after(2).times(2));
        assert!(check(SITE).is_ok());
        assert!(check(SITE).is_ok());
        assert!(check(SITE).is_err());
        let err = check(SITE).unwrap_err();
        assert!(err.to_string().contains(SITE), "{err}");
        assert!(!err.is_retryable(), "injected storage errors are hard");
        assert!(check(SITE).is_ok(), "exhausted after `times` firings");
        assert_eq!(hits(SITE), 5);
        clear_all();
        assert!(!armed());
    }

    #[test]
    fn scoped_config_hits_only_its_scope_and_unscoped_hits_all() {
        let _g = serial();
        configure_scoped(SITE, "s1", FailAction::error());
        assert!(check_scoped(SITE, "s0").is_ok());
        assert!(check_scoped(SITE, "s1").is_err());
        assert!(check(SITE).is_ok(), "unscoped check misses scoped config");
        configure(SITE, FailAction::error());
        assert!(check_scoped(SITE, "s0").is_err(), "unscoped arms all");
        // The scoped entry wins for its own scope (still armed).
        assert!(check_scoped(SITE, "s1").is_err());
        clear(SITE);
        assert!(check_scoped(SITE, "s1").is_ok());
        assert!(!armed());
        clear_all();
    }

    #[test]
    fn delay_sleeps_and_clear_all_unwedges_early() {
        let _g = serial();
        configure(SITE, FailAction::delay(Duration::from_millis(40)).times(1));
        let start = Instant::now();
        assert!(check(SITE).is_ok());
        assert!(
            start.elapsed() >= Duration::from_millis(35),
            "delay should sleep close to its budget: {:?}",
            start.elapsed()
        );
        // A long wedge released mid-sleep by clear_all from another thread.
        configure(SITE, FailAction::delay(Duration::from_secs(30)));
        let start = Instant::now();
        let waker = std::thread::spawn(|| {
            std::thread::sleep(Duration::from_millis(30));
            clear_all();
        });
        assert!(check(SITE).is_ok());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "clear_all must release the wedge early, took {:?}",
            start.elapsed()
        );
        waker.join().unwrap();
    }

    #[test]
    fn panic_action_panics_with_the_site_name() {
        let _g = serial();
        configure(SITE, FailAction::panic().times(1));
        let caught = std::panic::catch_unwind(|| {
            let _ = check(SITE);
        })
        .unwrap_err();
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(SITE), "panic names the site: {msg}");
        clear_all();
    }

    #[test]
    fn reconfigure_resets_the_schedule() {
        let _g = serial();
        configure(SITE, FailAction::error().times(1));
        assert!(check(SITE).is_err());
        assert!(check(SITE).is_ok());
        configure(SITE, FailAction::error().times(1));
        assert!(check(SITE).is_err(), "re-arm resets the times budget");
        clear_all();
    }
}
