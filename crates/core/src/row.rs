//! A minimal row/dataset abstraction shared by ingestion and the analytics
//! engine.
//!
//! Importers normalize heterogeneous upstream artifacts (CSV, JSON, …) into
//! this "standard row-based dataset format" (§2.2); the analytics store's
//! legacy baseline also interprets rows directly.

use std::sync::Arc;

use crate::{FxHashMap, Value};

/// A named-column schema shared by all rows of a [`Dataset`].
///
/// Shared via `Arc` so a million rows carry one schema allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    schema: Arc<[String]>,
    cells: Vec<Value>,
}

impl Row {
    /// Build a row from a shared schema and its cells.
    ///
    /// # Panics
    /// Panics if `cells.len() != schema.len()` — rows are always rectangular.
    pub fn new(schema: Arc<[String]>, cells: Vec<Value>) -> Row {
        assert_eq!(schema.len(), cells.len(), "row width must match schema");
        Row { schema, cells }
    }

    /// The column names.
    pub fn schema(&self) -> &[String] {
        &self.schema
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cells.len()
    }

    /// Cell by column name.
    pub fn get(&self, column: &str) -> Option<&Value> {
        let idx = self.schema.iter().position(|c| c == column)?;
        Some(&self.cells[idx])
    }

    /// Cell by position.
    pub fn at(&self, idx: usize) -> &Value {
        &self.cells[idx]
    }

    /// All cells.
    pub fn cells(&self) -> &[Value] {
        &self.cells
    }

    /// Mutable cell by column name.
    pub fn get_mut(&mut self, column: &str) -> Option<&mut Value> {
        let idx = self.schema.iter().position(|c| c == column)?;
        Some(&mut self.cells[idx])
    }
}

/// A rectangular, row-oriented dataset: the uniform representation importers
/// produce and transformers consume.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    schema: Arc<[String]>,
    rows: Vec<Row>,
}

impl Dataset {
    /// An empty dataset with the given column names.
    pub fn with_schema(columns: &[&str]) -> Dataset {
        let schema: Arc<[String]> = columns.iter().map(|c| c.to_string()).collect();
        Dataset {
            schema,
            rows: Vec::new(),
        }
    }

    /// The column names.
    pub fn schema(&self) -> &[String] {
        &self.schema
    }

    /// Append a row of cells (must match the schema width).
    pub fn push(&mut self, cells: Vec<Value>) {
        self.rows.push(Row::new(Arc::clone(&self.schema), cells));
    }

    /// Append an already-built row.
    ///
    /// # Panics
    /// Panics if the row's schema is not identical to the dataset's.
    pub fn push_row(&mut self, row: Row) {
        assert_eq!(row.schema(), self.schema(), "row schema mismatch");
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate rows.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Row by index.
    pub fn row(&self, idx: usize) -> &Row {
        &self.rows[idx]
    }

    /// Join this dataset with `other` on equality of `self_col` / `other_col`
    /// (inner hash join), producing a dataset whose schema is the
    /// concatenation (other's join column dropped).
    ///
    /// The data transformer uses this to combine multiple upstream artifacts
    /// into complete entities (e.g. raw artist info ⋈ artist popularity).
    pub fn hash_join(&self, other: &Dataset, self_col: &str, other_col: &str) -> Dataset {
        let other_key = other
            .schema
            .iter()
            .position(|c| c == other_col)
            .unwrap_or_else(|| panic!("join column {other_col} missing"));
        let self_key = self
            .schema
            .iter()
            .position(|c| c == self_col)
            .unwrap_or_else(|| panic!("join column {self_col} missing"));

        let mut index: FxHashMap<&Value, Vec<usize>> = FxHashMap::default();
        for (i, row) in other.rows.iter().enumerate() {
            index.entry(row.at(other_key)).or_default().push(i);
        }

        let out_cols: Vec<&str> = self
            .schema
            .iter()
            .map(String::as_str)
            .chain(
                other
                    .schema
                    .iter()
                    .filter(|c| *c != other_col)
                    .map(String::as_str),
            )
            .collect();
        let mut out = Dataset::with_schema(&out_cols);
        for row in &self.rows {
            if let Some(matches) = index.get(row.at(self_key)) {
                for &m in matches {
                    let mut cells = row.cells.to_vec();
                    let orow = &other.rows[m];
                    for (ci, cell) in orow.cells.iter().enumerate() {
                        if ci != other_key {
                            cells.push(cell.clone());
                        }
                    }
                    out.push(cells);
                }
            }
        }
        out
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artists() -> Dataset {
        let mut d = Dataset::with_schema(&["id", "name"]);
        d.push(vec![Value::str("a1"), Value::str("Billie Eilish")]);
        d.push(vec![Value::str("a2"), Value::str("Jay-Z")]);
        d
    }

    fn popularity() -> Dataset {
        let mut d = Dataset::with_schema(&["artist_id", "plays"]);
        d.push(vec![Value::str("a1"), Value::Int(1000)]);
        d.push(vec![Value::str("a2"), Value::Int(2000)]);
        d.push(vec![Value::str("a3"), Value::Int(5)]);
        d
    }

    #[test]
    fn row_access_by_name_and_index() {
        let d = artists();
        let r = d.row(0);
        assert_eq!(
            r.get("name").and_then(|v| v.as_str()),
            Some("Billie Eilish")
        );
        assert_eq!(r.at(0).as_str(), Some("a1"));
        assert_eq!(r.get("nope"), None);
        assert_eq!(r.width(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_are_rejected() {
        let mut d = Dataset::with_schema(&["a", "b"]);
        d.push(vec![Value::Int(1)]);
    }

    #[test]
    fn hash_join_combines_artifacts() {
        let joined = artists().hash_join(&popularity(), "id", "artist_id");
        assert_eq!(joined.schema(), &["id", "name", "plays"]);
        assert_eq!(joined.len(), 2, "a3 has no artist row, inner join drops it");
        let r = joined
            .iter()
            .find(|r| r.get("id").unwrap().as_str() == Some("a1"))
            .unwrap();
        assert_eq!(r.get("plays").unwrap().as_int(), Some(1000));
    }

    #[test]
    fn hash_join_handles_duplicate_keys() {
        let mut left = Dataset::with_schema(&["id", "x"]);
        left.push(vec![Value::str("k"), Value::Int(1)]);
        let mut right = Dataset::with_schema(&["id", "y"]);
        right.push(vec![Value::str("k"), Value::Int(10)]);
        right.push(vec![Value::str("k"), Value::Int(20)]);
        let j = left.hash_join(&right, "id", "id");
        assert_eq!(j.len(), 2, "one-to-many join fans out");
    }

    #[test]
    fn get_mut_allows_in_place_normalization() {
        let mut d = artists();
        let row0 = d.rows.get_mut(0).unwrap();
        *row0.get_mut("name").unwrap() = Value::str("billie eilish");
        assert_eq!(
            d.row(0).get("name").unwrap().as_str(),
            Some("billie eilish")
        );
    }
}
