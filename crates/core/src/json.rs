//! Minimal JSON value model, parser and writer.
//!
//! The platform's serialization needs are narrow — JSON-lines ingest
//! ([§2.2] importers), alignment-config files, and the Graph Engine's
//! durable operation log — and the build environment has no access to
//! crates.io, so this module replaces `serde`/`serde_json` with a small
//! hand-rolled implementation. Object keys are stored in a `BTreeMap`, so
//! key iteration is alphabetical (matching the behaviour the importers and
//! tests were written against).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys iterate alphabetically.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Shorthand string constructor.
    pub fn str(s: impl AsRef<str>) -> Json {
        Json::Str(s.as_ref().to_string())
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload; floats with integral value are not coerced.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member access (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (two-space indent).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Keep a fractional marker so the value re-parses as a
                    // float — for *every* whole float, else magnitudes with
                    // no fractional digits (≥ 2^53-ish) would come back as
                    // ints and break wire round-trips.
                    if f.fract() == 0.0 {
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&f.to_string());
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Object(map) => {
                let entries: Vec<(&String, &Json)> = map.iter().collect();
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// Parse one JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        // self.pos is on the 'u'.
        let hex4 = |p: &Self, at: usize| -> Result<u32, JsonError> {
            let slice = p
                .bytes
                .get(at..at + 4)
                .ok_or_else(|| p.err("truncated \\u escape"))?;
            let s = std::str::from_utf8(slice).map_err(|_| p.err("bad \\u escape"))?;
            u32::from_str_radix(s, 16).map_err(|_| p.err("bad \\u escape"))
        };
        let hi = hex4(self, self.pos + 1)?;
        self.pos += 5;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect \uXXXX low surrogate.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                let lo = hex4(self, self.pos + 2)?;
                self.pos += 6;
                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            message: "bad number".into(),
            offset: start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, expected) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-7", Json::Int(-7)),
            ("2.5", Json::Float(2.5)),
            ("1e3", Json::Float(1000.0)),
            (r#""hi there""#, Json::str("hi there")),
        ] {
            let parsed = parse(text).unwrap();
            assert_eq!(parsed, expected, "{text}");
            assert_eq!(parse(&parsed.to_string_compact()).unwrap(), expected);
        }
    }

    #[test]
    fn big_u64_sized_ints_survive() {
        // LSNs and entity ids are u64; i64 covers every id the platform
        // mints, and values beyond i64 fall back to float.
        let v = parse("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v.as_i64(), Some(9007199254740993));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"b":[1,2,{"x":null}],"a":"z","c":{"k":-1.5}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_str), Some("z"));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        let round = parse(&v.to_string_compact()).unwrap();
        assert_eq!(round, v);
        let pretty = parse(&v.to_string_pretty()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn object_keys_iterate_alphabetically() {
        let v = parse(r#"{"zeta":1,"alpha":2,"mid":3}"#).unwrap();
        let keys: Vec<&String> = v.as_object().unwrap().keys().collect();
        assert_eq!(keys, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote\" slash\\ newline\n tab\t unicode:\u{1F600}é";
        let json = Json::str(original).to_string_compact();
        assert_eq!(parse(&json).unwrap().as_str(), Some(original));
        // Explicit escape parsing, incl. a surrogate pair.
        let v = parse(r#""aéb😀c\n""#).unwrap();
        assert_eq!(v.as_str(), Some("aéb\u{1F600}c\n"));
    }

    #[test]
    fn errors_carry_position_and_reject_garbage() {
        assert!(parse("{nope").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("").is_err());
        let err = parse("[1, oops]").unwrap_err();
        assert!(err.offset >= 4, "error offset points into the input: {err}");
    }

    #[test]
    fn floats_reserialize_as_floats() {
        let v = Json::Float(3.0);
        assert_eq!(v.to_string_compact(), "3.0");
        assert_eq!(parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
        // Whole floats too large for fractional digits keep their marker:
        // the type must survive a round-trip, not just the magnitude.
        for f in [1e15, 1e16, 9.007_199_254_740_992e15, -1e18] {
            let round = parse(&Json::Float(f).to_string_compact()).unwrap();
            assert_eq!(round, Json::Float(f), "{f}");
        }
    }
}
