//! Property-based tests for the core data model invariants.

use crate::{intern, EntityId, ExtendedTriple, FactMeta, KnowledgeGraph, SourceId, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,24}".prop_map(|s| Value::str(&s)),
        (0u64..1000).prop_map(|i| Value::Entity(EntityId(i))),
        "[a-z0-9_]{1,12}".prop_map(|s| Value::source_ref(&s)),
    ]
}

proptest! {
    /// `Value`'s ordering is a total order: reflexive-equal, antisymmetric,
    /// transitive — required for it to key maps and sort columns.
    #[test]
    fn value_ordering_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Equal values hash equal (the map-key contract), including floats.
    #[test]
    fn value_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// Noisy-OR confidence stays in [0,1] and never decreases as sources merge.
    #[test]
    fn confidence_is_bounded_and_monotone(
        trusts in proptest::collection::vec(0.0f32..=1.0, 1..8)
    ) {
        let mut meta = FactMeta::from_source(SourceId(0), trusts[0]);
        let mut last = meta.confidence();
        prop_assert!((0.0..=1.0).contains(&last));
        for (i, t) in trusts.iter().enumerate().skip(1) {
            meta.merge_source(SourceId(i as u32), *t);
            let c = meta.confidence();
            prop_assert!((0.0..=1.0 + 1e-6).contains(&c));
            prop_assert!(c >= last - 1e-6, "merging a source never reduces confidence");
            last = c;
        }
    }

    /// Upserting the same facts twice never grows the KG (fusion idempotence),
    /// and provenance survives merging.
    #[test]
    fn kg_upsert_is_idempotent(
        facts in proptest::collection::vec(
            ((0u64..20), "[a-z]{1,6}", arb_value()),
            1..40,
        )
    ) {
        let mut kg = KnowledgeGraph::new();
        let mk = |(s, p, v): &(u64, String, Value)| {
            ExtendedTriple::simple(
                EntityId(*s),
                intern(p),
                v.clone(),
                FactMeta::from_source(SourceId(1), 0.9),
            )
        };
        for f in &facts {
            kg.upsert_fact(mk(f));
        }
        let entities = kg.entity_count();
        let count = kg.fact_count();
        for f in &facts {
            kg.upsert_fact(mk(f));
        }
        prop_assert_eq!(kg.fact_count(), count);
        prop_assert_eq!(kg.entity_count(), entities);
    }

    /// Retracting a source removes every trace of it, and retracting an
    /// unknown source is a no-op.
    #[test]
    fn retract_source_is_complete(
        facts in proptest::collection::vec(
            ((0u64..10), "[a-z]{1,4}", 0u32..3),
            1..30,
        )
    ) {
        let mut kg = KnowledgeGraph::new();
        for (s, p, src) in &facts {
            kg.upsert_fact(ExtendedTriple::simple(
                EntityId(*s),
                intern(p),
                Value::Int(*s as i64),
                FactMeta::from_source(SourceId(*src), 0.8),
            ));
        }
        let before = kg.stats();
        kg.retract_source(SourceId(99));
        prop_assert_eq!(kg.stats(), before, "unknown source retraction is a no-op");

        kg.retract_source(SourceId(0));
        for t in kg.triples() {
            prop_assert!(!t.meta.has_source(SourceId(0)), "no fact may still cite src0");
        }
    }
}
