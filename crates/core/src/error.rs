//! Unified error type for the platform.

use std::fmt;

/// Result alias used across all Saga crates.
pub type Result<T> = std::result::Result<T, SagaError>;

/// Errors surfaced by the Saga platform.
#[derive(Debug)]
pub enum SagaError {
    /// A source payload violated a data-transformer integrity check (§2.2).
    Integrity(String),
    /// Ontology alignment referenced an unknown type or predicate.
    Ontology(String),
    /// An importer could not parse upstream data.
    Import(String),
    /// A KGQ query failed to parse or compile.
    Query(String),
    /// A view definition or the view manager failed.
    View(String),
    /// The operation log or an orchestration agent failed.
    Storage(String),
    /// The serving tier could not satisfy the request *right now* —
    /// freshness wait timed out, no replica within the lag bound, a dead
    /// or silent endpoint, or a read/connect timeout. Unlike
    /// [`Storage`](Self::Storage) this is a *retryable* condition: the
    /// caller (or a network server mapping errors to wire responses) may
    /// safely retry after a backoff.
    Unavailable(String),
    /// Admission control shed the request *before executing it* (job
    /// queue full or the in-flight cap reached). Retryable like
    /// [`Unavailable`](Self::Unavailable) — and because the server
    /// guarantees nothing ran, even non-idempotent requests may be
    /// re-sent. Carries the shedding side's backoff hint (see
    /// [`backoff_hint_ms`](Self::backoff_hint_ms)).
    Overloaded {
        /// Which limit tripped, human-readable.
        message: String,
        /// Suggested minimum backoff before retrying, in milliseconds.
        backoff_hint_ms: u64,
    },
    /// A non-idempotent request (a commit) was sent but its outcome is
    /// unknown: the acknowledgement was lost after the request may have
    /// executed. **Not** retryable — a blind re-send could apply the
    /// batch twice. The caller must reconcile (read back the intended
    /// write, or re-issue only ops that are semantically idempotent).
    MaybeCommitted(String),
    /// An ML component was misconfigured or fed invalid shapes.
    Model(String),
    /// Underlying IO error.
    Io(std::io::Error),
}

impl fmt::Display for SagaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SagaError::Integrity(m) => write!(f, "integrity violation: {m}"),
            SagaError::Ontology(m) => write!(f, "ontology error: {m}"),
            SagaError::Import(m) => write!(f, "import error: {m}"),
            SagaError::Query(m) => write!(f, "query error: {m}"),
            SagaError::View(m) => write!(f, "view error: {m}"),
            SagaError::Storage(m) => write!(f, "storage error: {m}"),
            SagaError::Unavailable(m) => write!(f, "unavailable: {m}"),
            SagaError::Overloaded {
                message,
                backoff_hint_ms,
            } => write!(
                f,
                "overloaded: {message} (retry after {backoff_hint_ms} ms)"
            ),
            SagaError::MaybeCommitted(m) => write!(f, "commit outcome unknown: {m}"),
            SagaError::Model(m) => write!(f, "model error: {m}"),
            SagaError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl SagaError {
    /// True for transient serving-tier conditions a caller may retry
    /// (after a backoff) without changing the request.
    /// [`MaybeCommitted`](Self::MaybeCommitted) is deliberately *not*
    /// retryable: the request may already have executed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SagaError::Unavailable(_) | SagaError::Overloaded { .. }
        )
    }

    /// The server-suggested minimum backoff before a retry, when the
    /// error carries one ([`Overloaded`](Self::Overloaded) does — the
    /// shedding side knows how congested it is better than the caller's
    /// exponential schedule).
    pub fn backoff_hint_ms(&self) -> Option<u64> {
        match self {
            SagaError::Overloaded {
                backoff_hint_ms, ..
            } => Some(*backoff_hint_ms),
            _ => None,
        }
    }
}

impl std::error::Error for SagaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SagaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SagaError {
    fn from(e: std::io::Error) -> Self {
        SagaError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = SagaError::Integrity("duplicate entity id".into());
        assert_eq!(e.to_string(), "integrity violation: duplicate entity id");
        let q = SagaError::Query("unexpected token".into());
        assert!(q.to_string().starts_with("query error"));
    }

    #[test]
    fn only_transient_serving_conditions_are_retryable() {
        assert!(SagaError::Unavailable("fleet catching up".into()).is_retryable());
        assert!(SagaError::Overloaded {
            message: "queue full".into(),
            backoff_hint_ms: 25,
        }
        .is_retryable());
        assert!(!SagaError::Storage("log corrupt".into()).is_retryable());
        assert!(!SagaError::Query("parse".into()).is_retryable());
        assert!(
            !SagaError::MaybeCommitted("ack lost".into()).is_retryable(),
            "a blind commit retry could double-apply"
        );
        assert!(SagaError::Unavailable("x".into())
            .to_string()
            .starts_with("unavailable"));
    }

    #[test]
    fn overloaded_carries_its_backoff_hint() {
        let e = SagaError::Overloaded {
            message: "in-flight cap".into(),
            backoff_hint_ms: 40,
        };
        assert_eq!(e.backoff_hint_ms(), Some(40));
        assert!(e.to_string().contains("40 ms"), "{e}");
        assert_eq!(
            SagaError::Unavailable("x".into()).backoff_hint_ms(),
            None,
            "only the shedding side hints"
        );
        let m = SagaError::MaybeCommitted("recv failed after send".into());
        assert!(m.to_string().starts_with("commit outcome unknown"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SagaError = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
