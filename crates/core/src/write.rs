//! `GraphWrite` — the transactional, log-first write API.
//!
//! The paper's platform has **one** write pipeline feeding many derived
//! serving stores (§3.1); the read side already funnels every backend
//! through [`GraphRead`](crate::GraphRead). This module is the mirror
//! image for writes: producers *stage* mutations in a [`WriteBatch`] (or
//! interactively in a [`KgTransaction`]) and then `commit()` them
//! atomically, receiving one [`CommitReceipt`] that carries everything the
//! fan-out needs — the exact [`Delta`] payloads in wire-ready form, the
//! store's new generation, and per-op outcomes. The raw `KnowledgeGraph`
//! mutators (`upsert_fact`, `retract_source*`, `overwrite_volatile_partition`,
//! `mutate_entity`) are crate-internal; the receipt is the only delta
//! channel — there is no in-process changelog to drain, appending the
//! receipt's deltas to the oplog is the whole fan-out.
//!
//! # Staging vs applying
//!
//! A commit against the stable [`KnowledgeGraph`] runs in two phases:
//!
//! 1. **Stage** ([`KgTransaction`]) — ops are applied to a copy-on-write
//!    *shadow* of only the touched entity records and `same_as` links,
//!    against an immutable borrow of the graph. Staging computes the exact
//!    per-op [`Delta`]s and [`OpOutcome`]s, and later ops read earlier
//!    ops' staged effects (a link recorded in the batch is visible to a
//!    retraction staged after it).
//! 2. **Apply** ([`KnowledgeGraph::apply_staged`]) — the staged deltas are
//!    replayed onto the live index (the same [`TripleIndex::apply`]
//!    path log replicas use), the shadow records and links are swapped in,
//!    and the generation is bumped per non-empty delta exactly as the
//!    direct mutators do.
//!
//! The split is what makes **write-ahead logging** possible: the Graph
//! Engine's `LoggedWriter` appends the staged deltas to the durable
//! `OperationLog` *before* applying them, so the log — not the store — is
//! the source of truth. A producer that crashes between append and apply
//! loses nothing: the logged deltas replay into any follower.
//!
//! [`TripleIndex::apply`]: crate::TripleIndex::apply

use std::fmt;
use std::sync::Arc;

use crate::index::flatten;
use crate::{
    Delta, DeltaFact, EntityId, EntityRecord, ExtendedTriple, FxHashMap, FxHashSet, KnowledgeGraph,
    SourceId, Symbol,
};

/// One staged write operation — the op vocabulary mirrors the §2.3/§2.4
/// integration primitives plus the `same_as` link table and direct record
/// curation.
pub enum WriteOp {
    /// Non-destructive fact upsert (outer-join fusion semantics). The
    /// subject must be a linked KG entity.
    Upsert(ExtendedTriple),
    /// Record a `same_as` link from a source entity to a KG entity.
    Link {
        /// The source namespace.
        source: SourceId,
        /// Source-local entity id.
        local_id: String,
        /// The KG entity it resolves to.
        entity: EntityId,
    },
    /// Remove every attribution of a source (license revocation, §1).
    RetractSource(SourceId),
    /// Drop one source entity's contribution (`Deleted` partition, §2.4).
    RetractSourceEntity {
        /// The source namespace.
        source: SourceId,
        /// Source-local entity id (resolved through the link table).
        local_id: String,
    },
    /// Replace a source's volatile partition in one pass (§2.4).
    OverwriteVolatile {
        /// The source whose volatile facts are replaced.
        source: SourceId,
        /// The ontology's volatile predicate set.
        volatile: FxHashSet<Symbol>,
        /// The replacement facts (subjects must be linked KG entities;
        /// facts about unknown entities are skipped).
        fresh: Vec<ExtendedTriple>,
    },
    /// Mutate one entity record in place (curation hot-fixes). The delta
    /// is derived by diffing the record before/after the closure, so the
    /// edit is visible to log followers like any other op.
    Mutate {
        /// The entity to edit.
        entity: EntityId,
        /// The edit; not called if the entity is unknown.
        edit: Box<dyn FnOnce(&mut EntityRecord) + Send>,
    },
}

impl fmt::Debug for WriteOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteOp::Upsert(t) => f.debug_tuple("Upsert").field(t).finish(),
            WriteOp::Link {
                source,
                local_id,
                entity,
            } => f
                .debug_struct("Link")
                .field("source", source)
                .field("local_id", local_id)
                .field("entity", entity)
                .finish(),
            WriteOp::RetractSource(s) => f.debug_tuple("RetractSource").field(s).finish(),
            WriteOp::RetractSourceEntity { source, local_id } => f
                .debug_struct("RetractSourceEntity")
                .field("source", source)
                .field("local_id", local_id)
                .finish(),
            WriteOp::OverwriteVolatile { source, fresh, .. } => f
                .debug_struct("OverwriteVolatile")
                .field("source", source)
                .field("fresh", &fresh.len())
                .finish(),
            WriteOp::Mutate { entity, .. } => {
                f.debug_struct("Mutate").field("entity", entity).finish()
            }
        }
    }
}

/// An ordered batch of staged writes. Build one with the consuming
/// combinators (or [`push`](Self::push) in loops), then hand it to
/// [`GraphWrite::commit`] — nothing touches the store until commit.
#[derive(Debug, Default)]
pub struct WriteBatch {
    ops: Vec<WriteOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage a fact upsert.
    pub fn upsert(mut self, triple: ExtendedTriple) -> Self {
        self.ops.push(WriteOp::Upsert(triple));
        self
    }

    /// Stage a `same_as` link.
    pub fn link(mut self, source: SourceId, local_id: impl Into<String>, entity: EntityId) -> Self {
        self.ops.push(WriteOp::Link {
            source,
            local_id: local_id.into(),
            entity,
        });
        self
    }

    /// Stage a whole-source retraction.
    pub fn retract_source(mut self, source: SourceId) -> Self {
        self.ops.push(WriteOp::RetractSource(source));
        self
    }

    /// Stage a single source-entity retraction.
    pub fn retract_source_entity(mut self, source: SourceId, local_id: impl Into<String>) -> Self {
        self.ops.push(WriteOp::RetractSourceEntity {
            source,
            local_id: local_id.into(),
        });
        self
    }

    /// Stage a volatile-partition overwrite.
    pub fn overwrite_volatile(
        mut self,
        source: SourceId,
        volatile: FxHashSet<Symbol>,
        fresh: Vec<ExtendedTriple>,
    ) -> Self {
        self.ops.push(WriteOp::OverwriteVolatile {
            source,
            volatile,
            fresh,
        });
        self
    }

    /// Stage an in-place record edit.
    pub fn mutate(
        mut self,
        entity: EntityId,
        edit: impl FnOnce(&mut EntityRecord) + Send + 'static,
    ) -> Self {
        self.ops.push(WriteOp::Mutate {
            entity,
            edit: Box::new(edit),
        });
        self
    }

    /// Stage a named, typed entity (the test/workload convenience that
    /// mirrors `KnowledgeGraph::add_named_entity`).
    pub fn named_entity(
        self,
        id: EntityId,
        name: &str,
        entity_type: &str,
        source: SourceId,
        trust: f32,
    ) -> Self {
        use crate::{intern, well_known, FactMeta, Value};
        self.upsert(ExtendedTriple::simple(
            id,
            intern(well_known::NAME),
            Value::str(name),
            FactMeta::from_source(source, trust),
        ))
        .upsert(ExtendedTriple::simple(
            id,
            intern(well_known::TYPE),
            Value::str(entity_type),
            FactMeta::from_source(source, trust),
        ))
    }

    /// Append one op (loop-friendly form of the combinators).
    pub fn push(&mut self, op: WriteOp) {
        self.ops.push(op);
    }

    /// Number of staged ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The staged ops, in order (consumed by `commit`).
    pub fn into_ops(self) -> Vec<WriteOp> {
        self.ops
    }

    /// Commit this batch against any [`GraphWrite`] backend.
    pub fn commit<W: GraphWrite + ?Sized>(self, target: &mut W) -> CommitReceipt {
        target.commit(self)
    }
}

/// What one staged op did, in batch order — the per-op feedback fusion and
/// curation counters are built from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// An upsert landed; `fresh` is true if a brand-new fact was added
    /// (false: provenance merged into an identical existing fact).
    Upserted {
        /// True if the fact was new knowledge.
        fresh: bool,
    },
    /// A `same_as` link was recorded.
    Linked,
    /// A whole source was retracted.
    RetractedSource {
        /// Facts dropped (left without any provenance).
        facts: usize,
        /// Entities dropped (left without any facts).
        entities: usize,
    },
    /// One source entity's contribution was retracted.
    RetractedEntity {
        /// Facts dropped.
        facts: usize,
    },
    /// A volatile partition was overwritten.
    VolatileOverwritten {
        /// Old volatile facts dropped before the fresh ones were fused.
        dropped: usize,
    },
    /// A record edit ran (or missed).
    Mutated {
        /// True if the entity existed and the closure ran.
        found: bool,
        /// Index facts the edit added.
        added: usize,
        /// Index facts the edit removed.
        removed: usize,
    },
}

/// The result of one atomic commit: the change payload and everything a
/// fan-out consumer (oplog append, overlay pruning, metrics) needs.
///
/// `deltas` are in the same self-contained vocabulary the
/// [`wire`](crate::wire) module serializes — hand them to
/// `OperationLog::append_op` untouched.
#[derive(Debug, Default)]
pub struct CommitReceipt {
    /// Per-op deltas, in staging order (ops that changed nothing emit no
    /// delta; multi-entity ops emit one delta per touched entity).
    pub deltas: Vec<Delta>,
    /// Per-op outcomes, aligned with the batch (one entry per staged op).
    pub outcomes: Vec<OpOutcome>,
    /// The store's generation after the commit — the plan-cache signal
    /// readers compare against.
    pub generation: u64,
    /// Index facts added across the batch.
    pub facts_added: usize,
    /// Index facts removed across the batch.
    pub facts_removed: usize,
    /// Entities whose derived state must refresh (sorted, deduplicated).
    pub entities_changed: Vec<EntityId>,
    /// Entities dropped entirely by this commit (sorted) — the signal
    /// overlay serving uses to prune shadowed tombstones.
    pub entities_removed: Vec<EntityId>,
}

impl CommitReceipt {
    /// True if the commit changed nothing observable.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Count of upsert ops that added brand-new facts.
    pub fn fresh_upserts(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, OpOutcome::Upserted { fresh: true }))
            .count()
    }
}

/// Staged writes, transactional: the transport between
/// [`KgTransaction::into_staged`] and [`KnowledgeGraph::apply_staged`].
///
/// A `StagedCommit` is only meaningful against the graph state it was
/// staged from — apply it to that same graph (under the same exclusive
/// access) or drop it.
#[derive(Debug, Default)]
pub struct StagedCommit {
    pub(crate) deltas: Vec<Delta>,
    pub(crate) outcomes: Vec<OpOutcome>,
    /// Final staged state of every touched record (`None` = deleted).
    pub(crate) records: FxHashMap<EntityId, Option<EntityRecord>>,
    /// Final staged state of every touched link (`None` = removed).
    pub(crate) links: FxHashMap<(SourceId, Arc<str>), Option<EntityId>>,
}

impl StagedCommit {
    /// The exact per-op deltas this commit will emit — what a write-ahead
    /// logger appends *before* applying.
    pub fn deltas(&self) -> &[Delta] {
        &self.deltas
    }

    /// True if applying would change nothing observable.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }
}

/// An interactive staging transaction over an immutable
/// [`KnowledgeGraph`] borrow.
///
/// Writes apply to a copy-on-write shadow of the touched records/links;
/// reads ([`record`](Self::record), [`lookup_link`](Self::lookup_link),
/// [`contains`](Self::contains)) observe staged state, so multi-step
/// producers (fusion's relationship-node matching, the pipeline's
/// link-then-retract update path) behave exactly as they did against the
/// live graph. Finish with [`into_staged`](Self::into_staged) and apply
/// via [`KnowledgeGraph::apply_staged`].
pub struct KgTransaction<'a> {
    kg: &'a KnowledgeGraph,
    staged: StagedCommit,
}

/// Flatten a record into its indexed fact multiset.
fn record_facts(record: &EntityRecord) -> Vec<DeltaFact> {
    record
        .triples
        .iter()
        .filter_map(flatten)
        .map(|(predicate, object)| DeltaFact { predicate, object })
        .collect()
}

/// The exact index [`Delta`] between two states of one entity's record
/// (multiset semantics, matching [`TripleIndex`](crate::TripleIndex) row
/// maintenance). Shared by the stable staging path and the live store's
/// record-level commits.
pub fn record_delta(
    entity: EntityId,
    old: Option<&EntityRecord>,
    new: Option<&EntityRecord>,
) -> Delta {
    let old_facts = old.map(record_facts).unwrap_or_default();
    let new_facts = new.map(record_facts).unwrap_or_default();
    multiset_delta(entity, old_facts, &new_facts)
}

fn multiset_delta(entity: EntityId, old: Vec<DeltaFact>, new: &[DeltaFact]) -> Delta {
    let mut removed = old;
    let mut added = Vec::new();
    for fact in new {
        match removed.iter().position(|f| f == fact) {
            Some(at) => {
                removed.swap_remove(at);
            }
            None => added.push(fact.clone()),
        }
    }
    Delta {
        entity,
        added,
        removed,
    }
}

impl<'a> KgTransaction<'a> {
    /// Begin staging against `kg`.
    pub fn new(kg: &'a KnowledgeGraph) -> Self {
        KgTransaction {
            kg,
            staged: StagedCommit::default(),
        }
    }

    // ---- staged reads -------------------------------------------------

    /// The staged view of one entity record.
    pub fn record(&self, id: EntityId) -> Option<&EntityRecord> {
        match self.staged.records.get(&id) {
            Some(staged) => staged.as_ref(),
            None => self.kg.entities.get(&id),
        }
    }

    /// True if the entity exists in the staged view.
    pub fn contains(&self, id: EntityId) -> bool {
        self.record(id).is_some()
    }

    /// The staged view of the `same_as` link table.
    pub fn lookup_link(&self, source: SourceId, local_id: &str) -> Option<EntityId> {
        match self.staged.links.get(&(source, Arc::from(local_id))) {
            Some(staged) => *staged,
            None => self.kg.lookup_link(source, local_id),
        }
    }

    /// Every entity id visible in the staged view, sorted — retraction
    /// scans iterate this so multi-entity deltas are emitted in a
    /// deterministic order.
    fn staged_entity_ids(&self) -> Vec<EntityId> {
        let mut ids: Vec<EntityId> = self
            .kg
            .entities
            .keys()
            .copied()
            .filter(|id| !matches!(self.staged.records.get(id), Some(None)))
            .chain(
                self.staged
                    .records
                    .iter()
                    .filter_map(|(id, r)| r.as_ref().map(|_| *id)),
            )
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Copy-on-write handle to one record's staged state.
    fn staged_record(&mut self, id: EntityId) -> &mut Option<EntityRecord> {
        let base = self.kg.entities.get(&id);
        self.staged
            .records
            .entry(id)
            .or_insert_with(|| base.cloned())
    }

    fn emit(&mut self, delta: Delta) {
        if !delta.is_empty() {
            self.staged.deltas.push(delta);
        }
    }

    // ---- staged writes ------------------------------------------------

    /// Stage a non-destructive fact upsert; returns `true` if the fact is
    /// brand-new (otherwise its provenance merged into an identical one).
    ///
    /// # Panics
    /// Panics if the triple's subject is not a KG entity — only linked
    /// payloads may be fused.
    pub fn upsert(&mut self, triple: ExtendedTriple) -> bool {
        let id = triple
            .subject
            .as_kg()
            .expect("only linked (KG-subject) facts can be fused into the graph");
        let flat = flatten(&triple);
        let slot = self.staged_record(id);
        let record = slot.get_or_insert_with(|| EntityRecord::new(id));
        let fresh = record.upsert(triple);
        if fresh {
            let delta = Delta {
                entity: id,
                added: flat
                    .map(|(predicate, object)| DeltaFact { predicate, object })
                    .into_iter()
                    .collect(),
                removed: Vec::new(),
            };
            self.emit(delta);
        }
        self.staged.outcomes.push(OpOutcome::Upserted { fresh });
        fresh
    }

    /// Stage a `same_as` link.
    pub fn link(&mut self, source: SourceId, local_id: &str, entity: EntityId) {
        self.staged
            .links
            .insert((source, Arc::from(local_id)), Some(entity));
        self.staged.outcomes.push(OpOutcome::Linked);
    }

    /// Stage a whole-source retraction; returns `(facts, entities)`
    /// dropped, mirroring the direct mutator.
    pub fn retract_source(&mut self, source: SourceId) -> (usize, usize) {
        let mut facts_dropped = 0;
        let mut entities_dropped = 0;
        for id in self.staged_entity_ids() {
            // Read-only probe first: only records that actually cite the
            // source (or are empty, which this op garbage-collects like
            // the direct mutator) take the copy-on-write handle —
            // untouched records must not be cloned into the shadow.
            let touched = self.record(id).is_some_and(|r| {
                r.triples.is_empty() || r.triples.iter().any(|t| t.meta.has_source(source))
            });
            if !touched {
                continue;
            }
            let slot = self.staged_record(id);
            let Some(record) = slot.as_mut() else {
                continue;
            };
            let dropped = record.retract_source_facts(source, None);
            facts_dropped += dropped.len();
            let empty = record.triples.is_empty();
            if empty {
                *slot = None;
                entities_dropped += 1;
            }
            if !dropped.is_empty() {
                let removed: Vec<DeltaFact> = dropped
                    .iter()
                    .filter_map(flatten)
                    .map(|(predicate, object)| DeltaFact { predicate, object })
                    .collect();
                self.emit(Delta {
                    entity: id,
                    added: Vec::new(),
                    removed,
                });
            }
        }
        // Drop every link the source contributed (staged links included).
        let mut keys: Vec<(SourceId, Arc<str>)> = self
            .kg
            .links
            .keys()
            .filter(|(s, _)| *s == source)
            .cloned()
            .chain(
                self.staged
                    .links
                    .iter()
                    .filter(|((s, _), v)| *s == source && v.is_some())
                    .map(|(k, _)| k.clone()),
            )
            .collect();
        keys.sort_unstable_by(|a, b| a.1.cmp(&b.1));
        keys.dedup();
        for key in keys {
            self.staged.links.insert(key, None);
        }
        self.staged.outcomes.push(OpOutcome::RetractedSource {
            facts: facts_dropped,
            entities: entities_dropped,
        });
        (facts_dropped, entities_dropped)
    }

    /// Stage one source entity's retraction; returns facts dropped.
    pub fn retract_source_entity(&mut self, source: SourceId, local_id: &str) -> usize {
        let Some(kg_id) = self.lookup_link(source, local_id) else {
            self.staged
                .outcomes
                .push(OpOutcome::RetractedEntity { facts: 0 });
            return 0;
        };
        let mut dropped = Vec::new();
        let slot = self.staged_record(kg_id);
        if let Some(record) = slot.as_mut() {
            dropped = record.retract_source_facts(source, None);
            if record.triples.is_empty() {
                *slot = None;
            }
        }
        if !dropped.is_empty() {
            let removed: Vec<DeltaFact> = dropped
                .iter()
                .filter_map(flatten)
                .map(|(predicate, object)| DeltaFact { predicate, object })
                .collect();
            self.emit(Delta {
                entity: kg_id,
                added: Vec::new(),
                removed,
            });
        }
        self.staged
            .links
            .insert((source, Arc::from(local_id)), None);
        self.staged.outcomes.push(OpOutcome::RetractedEntity {
            facts: dropped.len(),
        });
        dropped.len()
    }

    /// Stage a volatile-partition overwrite; returns old facts dropped.
    ///
    /// Fresh facts about entities unknown to the staged view are skipped,
    /// and fresh facts whose subject is still a source reference are
    /// skipped too — resolve them through
    /// [`lookup_link`](Self::lookup_link) first (the construction pipeline
    /// does), exactly like the direct mutator required.
    pub fn overwrite_volatile(
        &mut self,
        source: SourceId,
        volatile: &FxHashSet<Symbol>,
        fresh: Vec<ExtendedTriple>,
    ) -> usize {
        let mut dropped_total = 0;
        for id in self.staged_entity_ids() {
            // Read-only probe first (see `retract_source`): only records
            // holding a volatile fact from this source are shadow-cloned.
            let touched = self.record(id).is_some_and(|r| {
                r.triples
                    .iter()
                    .any(|t| volatile.contains(&t.predicate) && t.meta.has_source(source))
            });
            if !touched {
                continue;
            }
            let slot = self.staged_record(id);
            let Some(record) = slot.as_mut() else {
                continue;
            };
            let gone = record.retract_source_facts(source, Some(volatile));
            if gone.is_empty() {
                continue;
            }
            dropped_total += gone.len();
            // Records left empty are kept, matching the direct mutator:
            // the entity stays visible for the fresh facts below.
            let removed: Vec<DeltaFact> = gone
                .iter()
                .filter_map(flatten)
                .map(|(predicate, object)| DeltaFact { predicate, object })
                .collect();
            self.emit(Delta {
                entity: id,
                added: Vec::new(),
                removed,
            });
        }
        for t in fresh {
            if let Some(id) = t.subject.as_kg() {
                if self.contains(id) {
                    // Same path as a staged upsert, but without a per-fact
                    // outcome entry — the overwrite is one op.
                    let flat = flatten(&t);
                    let slot = self.staged_record(id);
                    let record = slot.get_or_insert_with(|| EntityRecord::new(id));
                    if record.upsert(t) {
                        let delta = Delta {
                            entity: id,
                            added: flat
                                .map(|(predicate, object)| DeltaFact { predicate, object })
                                .into_iter()
                                .collect(),
                            removed: Vec::new(),
                        };
                        self.emit(delta);
                    }
                }
            }
        }
        self.staged.outcomes.push(OpOutcome::VolatileOverwritten {
            dropped: dropped_total,
        });
        dropped_total
    }

    /// Stage an in-place record edit; returns `false` if the entity is
    /// unknown (the closure does not run). A record left without facts is
    /// dropped, matching the retraction paths.
    pub fn mutate(&mut self, id: EntityId, edit: impl FnOnce(&mut EntityRecord)) -> bool {
        let slot = self.staged_record(id);
        let Some(record) = slot.as_mut() else {
            self.staged.outcomes.push(OpOutcome::Mutated {
                found: false,
                added: 0,
                removed: 0,
            });
            return false;
        };
        let before = record_facts(record);
        edit(record);
        let after = record_facts(record);
        if record.triples.is_empty() {
            *slot = None;
        }
        let delta = multiset_delta(id, before, &after);
        let (added, removed) = (delta.added.len(), delta.removed.len());
        self.emit(delta);
        self.staged.outcomes.push(OpOutcome::Mutated {
            found: true,
            added,
            removed,
        });
        true
    }

    /// Dispatch one batch op to its typed staging method.
    pub fn apply_op(&mut self, op: WriteOp) {
        match op {
            WriteOp::Upsert(t) => {
                self.upsert(t);
            }
            WriteOp::Link {
                source,
                local_id,
                entity,
            } => self.link(source, &local_id, entity),
            WriteOp::RetractSource(s) => {
                self.retract_source(s);
            }
            WriteOp::RetractSourceEntity { source, local_id } => {
                self.retract_source_entity(source, &local_id);
            }
            WriteOp::OverwriteVolatile {
                source,
                volatile,
                fresh,
            } => {
                self.overwrite_volatile(source, &volatile, fresh);
            }
            WriteOp::Mutate { entity, edit } => {
                self.mutate(entity, edit);
            }
        }
    }

    /// Ops staged so far.
    pub fn ops_staged(&self) -> usize {
        self.staged.outcomes.len()
    }

    /// Finish staging.
    pub fn into_staged(self) -> StagedCommit {
        self.staged
    }
}

impl KnowledgeGraph {
    /// Apply a [`StagedCommit`] produced by a [`KgTransaction`] over this
    /// graph — the single commit point every producer funnels through.
    ///
    /// The staged deltas are replayed onto the live index (bumping the
    /// generation per non-empty delta, exactly like the direct mutators)
    /// and the staged records and links are swapped in. The deltas leave
    /// only through the returned receipt — producers append them to the
    /// oplog; nothing is retained in-process.
    pub fn apply_staged(&mut self, staged: StagedCommit) -> CommitReceipt {
        let StagedCommit {
            deltas,
            outcomes,
            records,
            links,
        } = staged;
        let mut entities_removed = Vec::new();
        for delta in &deltas {
            self.index_mut().apply(delta);
        }
        for (id, record) in records {
            match record {
                Some(record) => {
                    self.entities.insert(id, record);
                }
                None => {
                    if self.entities.remove(&id).is_some() {
                        entities_removed.push(id);
                    }
                }
            }
        }
        for (key, link) in links {
            match link {
                Some(entity) => {
                    self.links.insert(key, entity);
                }
                None => {
                    self.links.remove(&key);
                }
            }
        }
        entities_removed.sort_unstable();
        let mut facts_added = 0;
        let mut facts_removed = 0;
        let mut entities_changed: Vec<EntityId> = Vec::new();
        for delta in &deltas {
            facts_added += delta.added.len();
            facts_removed += delta.removed.len();
            entities_changed.push(delta.entity);
        }
        entities_changed.sort_unstable();
        entities_changed.dedup();
        for delta in &deltas {
            self.note_delta(delta);
        }
        CommitReceipt {
            deltas,
            outcomes,
            generation: self.generation(),
            facts_added,
            facts_removed,
            entities_changed,
            entities_removed,
        }
    }
}

/// Uniform transactional write access to a knowledge store — the mirror of
/// [`GraphRead`](crate::GraphRead). Stage ops in a [`WriteBatch`], commit
/// atomically, fan the [`CommitReceipt`] out.
pub trait GraphWrite {
    /// Atomically apply a staged batch.
    fn commit(&mut self, batch: WriteBatch) -> CommitReceipt;
}

impl GraphWrite for KnowledgeGraph {
    fn commit(&mut self, batch: WriteBatch) -> CommitReceipt {
        let staged = {
            let mut txn = KgTransaction::new(self);
            for op in batch.into_ops() {
                txn.apply_op(op);
            }
            txn.into_staged()
        };
        self.apply_staged(staged)
    }
}

impl<W: GraphWrite + ?Sized> GraphWrite for &mut W {
    fn commit(&mut self, batch: WriteBatch) -> CommitReceipt {
        (**self).commit(batch)
    }
}

/// Single-op commit conveniences for tests, examples and workload
/// generators — every one still funnels through the commit point and
/// returns the full receipt.
pub trait GraphWriteExt: GraphWrite {
    /// Commit one upsert.
    fn commit_upsert(&mut self, triple: ExtendedTriple) -> CommitReceipt {
        WriteBatch::new().upsert(triple).commit(self)
    }

    /// Commit one whole-source retraction.
    fn commit_retract_source(&mut self, source: SourceId) -> CommitReceipt {
        WriteBatch::new().retract_source(source).commit(self)
    }

    /// Commit one source-entity retraction.
    fn commit_retract_source_entity(&mut self, source: SourceId, local_id: &str) -> CommitReceipt {
        WriteBatch::new()
            .retract_source_entity(source, local_id)
            .commit(self)
    }

    /// Commit one volatile-partition overwrite.
    fn commit_overwrite_volatile(
        &mut self,
        source: SourceId,
        volatile: FxHashSet<Symbol>,
        fresh: Vec<ExtendedTriple>,
    ) -> CommitReceipt {
        WriteBatch::new()
            .overwrite_volatile(source, volatile, fresh)
            .commit(self)
    }

    /// Commit one record edit.
    fn commit_mutate(
        &mut self,
        entity: EntityId,
        edit: impl FnOnce(&mut EntityRecord) + Send + 'static,
    ) -> CommitReceipt {
        WriteBatch::new().mutate(entity, edit).commit(self)
    }
}

impl<W: GraphWrite + ?Sized> GraphWriteExt for W {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{intern, FactMeta, GraphRead, Value};

    fn meta(src: u32) -> FactMeta {
        FactMeta::from_source(SourceId(src), 0.9)
    }

    fn fact(e: u64, p: &str, v: Value, src: u32) -> ExtendedTriple {
        ExtendedTriple::simple(EntityId(e), intern(p), v, meta(src))
    }

    #[test]
    fn batch_commit_stages_then_applies_atomically() {
        let mut kg = KnowledgeGraph::new();
        let receipt = WriteBatch::new()
            .named_entity(
                EntityId(1),
                "Billie Eilish",
                "music_artist",
                SourceId(1),
                0.9,
            )
            .upsert(fact(1, "born", Value::Int(2001), 1))
            .link(SourceId(1), "a1", EntityId(1))
            .commit(&mut kg);

        assert_eq!(receipt.outcomes.len(), 4);
        assert_eq!(receipt.fresh_upserts(), 3);
        assert_eq!(receipt.facts_added, 3);
        assert_eq!(receipt.facts_removed, 0);
        assert_eq!(receipt.entities_changed, vec![EntityId(1)]);
        assert!(receipt.entities_removed.is_empty());
        assert_eq!(receipt.generation, kg.generation());
        assert_eq!(kg.entity(EntityId(1)).unwrap().fact_count(), 3);
        assert_eq!(kg.lookup_link(SourceId(1), "a1"), Some(EntityId(1)));
        assert_eq!(kg.find_by_name("Billie Eilish"), vec![EntityId(1)]);
    }

    #[test]
    fn later_ops_read_earlier_staged_state() {
        // Link → retract-source-entity → re-link + upsert, in ONE batch:
        // the retraction must see the link staged before it.
        let mut kg = KnowledgeGraph::new();
        kg.commit_upsert(fact(1, "name", Value::str("Old"), 1));

        let receipt = WriteBatch::new()
            .link(SourceId(1), "x", EntityId(1))
            .retract_source_entity(SourceId(1), "x")
            .commit(&mut kg);
        assert_eq!(
            receipt.outcomes[1],
            OpOutcome::RetractedEntity { facts: 1 },
            "staged link visible to the staged retraction"
        );
        assert!(!kg.contains(EntityId(1)));
        assert_eq!(receipt.entities_removed, vec![EntityId(1)]);
        assert_eq!(kg.lookup_link(SourceId(1), "x"), None);
    }

    #[test]
    fn upsert_merge_is_provenance_only_and_emits_no_delta() {
        let mut kg = KnowledgeGraph::new();
        kg.commit_upsert(fact(1, "name", Value::str("X"), 1));
        let g0 = kg.generation();
        let receipt = kg.commit_upsert(fact(1, "name", Value::str("X"), 2));
        assert_eq!(receipt.outcomes, vec![OpOutcome::Upserted { fresh: false }]);
        assert!(receipt.is_empty());
        assert_eq!(kg.generation(), g0, "merge bumps nothing");
        assert_eq!(
            kg.entity(EntityId(1)).unwrap().triples[0]
                .meta
                .source_count(),
            2
        );
    }

    #[test]
    fn mutate_edits_enter_the_receipt() {
        // The old mutate_entity returned its delta to the caller only —
        // invisible to log followers. Committed through a batch, the edit
        // is a first-class delta like any other op.
        let mut kg = KnowledgeGraph::new();
        kg.commit_upsert(fact(1, "population", Value::Int(-5), 1));
        let g0 = kg.generation();
        let pred = intern("population");
        let receipt = kg.commit_mutate(EntityId(1), move |rec| {
            for t in &mut rec.triples {
                if t.predicate == pred {
                    t.object = Value::Int(120_000);
                }
            }
        });
        assert_eq!(
            receipt.outcomes,
            vec![OpOutcome::Mutated {
                found: true,
                added: 1,
                removed: 1
            }]
        );
        assert_eq!(receipt.deltas.len(), 1);
        assert_eq!(receipt.deltas[0].added[0].object, Value::Int(120_000));
        assert_eq!(receipt.deltas[0].removed[0].object, Value::Int(-5));
        assert!(kg.generation() > g0, "edit is read-visible");
        assert_eq!(
            kg.postings(&crate::ProbeKey::Literal(pred, Value::Int(120_000))),
            vec![EntityId(1)]
        );
    }

    #[test]
    fn mutate_unknown_entity_is_a_counted_miss() {
        let mut kg = KnowledgeGraph::new();
        let receipt = kg.commit_mutate(EntityId(404), |rec| rec.triples.clear());
        assert_eq!(
            receipt.outcomes,
            vec![OpOutcome::Mutated {
                found: false,
                added: 0,
                removed: 0
            }]
        );
        assert!(receipt.is_empty());
    }

    #[test]
    fn volatile_overwrite_in_batch_matches_direct_semantics() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "Song", "song", SourceId(1), 0.9);
        kg.commit_upsert(fact(1, "popularity", Value::Int(10), 1));
        let mut volatile = FxHashSet::default();
        volatile.insert(intern("popularity"));
        let receipt = kg.commit_overwrite_volatile(
            SourceId(1),
            volatile,
            vec![
                fact(1, "popularity", Value::Int(99), 1),
                // Unknown entity: skipped, like the direct mutator.
                fact(7, "popularity", Value::Int(1), 1),
            ],
        );
        assert_eq!(
            receipt.outcomes,
            vec![OpOutcome::VolatileOverwritten { dropped: 1 }]
        );
        assert!(!kg.contains(EntityId(7)));
        assert_eq!(
            kg.entity(EntityId(1)).unwrap().values(intern("popularity")),
            vec![&Value::Int(99)]
        );
    }

    #[test]
    fn retract_source_receipt_names_dropped_entities() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "Keep", "person", SourceId(1), 0.9);
        kg.add_named_entity(EntityId(2), "Gone", "person", SourceId(5), 0.9);
        kg.commit_upsert(fact(1, "note", Value::str("from 5"), 5));
        let receipt = kg.commit_retract_source(SourceId(5));
        assert_eq!(
            receipt.outcomes,
            vec![OpOutcome::RetractedSource {
                facts: 3,
                entities: 1
            }]
        );
        assert_eq!(receipt.entities_removed, vec![EntityId(2)]);
        assert_eq!(receipt.entities_changed, vec![EntityId(1), EntityId(2)]);
        assert!(kg.contains(EntityId(1)));
        assert!(!kg.contains(EntityId(2)));
    }

    #[test]
    fn receipt_deltas_replay_into_an_identical_index() {
        let mut kg = KnowledgeGraph::new();
        let mut feed: Vec<Delta> = Vec::new();
        feed.extend(
            WriteBatch::new()
                .named_entity(EntityId(1), "A", "person", SourceId(1), 0.9)
                .named_entity(EntityId(2), "B", "person", SourceId(2), 0.9)
                .upsert(fact(1, "knows", Value::Entity(EntityId(2)), 1))
                .commit(&mut kg)
                .deltas,
        );
        feed.extend(kg.commit_retract_source(SourceId(2)).deltas);
        let mut replayed = crate::TripleIndex::new();
        for delta in &feed {
            replayed.apply(delta);
        }
        assert_eq!(replayed.fact_count(), kg.index().fact_count());
        assert_eq!(replayed.entity_count(), kg.index().entity_count());
        assert_eq!(
            replayed.referencing(EntityId(2)),
            kg.index().referencing(EntityId(2))
        );
    }

    #[test]
    fn staging_leaves_the_graph_untouched_until_apply() {
        let kg = {
            let mut kg = KnowledgeGraph::new();
            kg.add_named_entity(EntityId(1), "A", "person", SourceId(1), 0.9);
            kg
        };
        let g0 = kg.generation();
        let staged = {
            let mut txn = KgTransaction::new(&kg);
            txn.upsert(fact(1, "born", Value::Int(1990), 1));
            txn.retract_source(SourceId(1));
            txn.into_staged()
        };
        assert!(!staged.is_empty());
        assert_eq!(kg.generation(), g0, "staging is read-only");
        assert!(kg.contains(EntityId(1)), "nothing applied yet");
        assert_eq!(staged.deltas().len(), 2);
    }
}
