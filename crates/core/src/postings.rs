//! Compressed block posting lists with compressed-domain intersection.
//!
//! Posting lists are the dominant memory cost of the unified triple index
//! at scale, and plain sorted `Vec<EntityId>` postings are a cache-miss
//! machine during galloping intersection (every probe touches 8 bytes per
//! candidate). Following the compressed-adjacency-matrix result of
//! Arroyuelo et al. (compressed representations can *speed up*
//! graph-pattern evaluation, not just shrink it), this module replaces the
//! flat vectors with a three-tier hybrid:
//!
//! * a **tiny** list (≤ [`TINY_MAX`] ids — the singleton reverse-edge and
//!   rare-token lists that dominate list *count*) is one delta+varint
//!   byte run over the full ids, ~2–3 bytes per id instead of 8, with an
//!   `O(1)` append fast path for the ascending inserts replay produces;
//! * past that, the id space is cut into **blocks** of [`BLOCK_SPAN`]
//!   consecutive ids (`block key = id >> 12`):
//!   * a **dense** block stores membership as a 64-word (4096-bit)
//!     bitmap — 512 bytes regardless of cardinality;
//!   * a **sparse** block stores its in-block offsets as
//!     delta+varint-encoded runs — ~1 byte per id for clustered ids,
//!     ≤2 bytes worst case;
//! * a per-list **block directory** (`BlockMeta`: key, min/max offset,
//!   cardinality) sits in front of the containers, so intersection can
//!   skip whole blocks without touching container bytes.
//!
//! Intersection ([`intersect_views`]) operates in the compressed domain:
//! directories are galloped to find common block keys, dense×dense blocks
//! combine with 64-bit bitmap `AND`s, and sparse blocks decode at most
//! [`SPARSE_MAX`] offsets into a scratch buffer that is membership-tested
//! against the other containers. Full lists are never materialized. A
//! conjunction involving a tiny list short-circuits to candidate testing —
//! at most [`TINY_MAX`] point probes.
//!
//! # Maintenance cost model
//!
//! [`BlockPostings::insert`]/[`remove`](BlockPostings::remove) update one
//! block in place: a dense bit set/clear is `O(1)`, a sparse re-encode is
//! `O(block cardinality)` ≤ [`SPARSE_MAX`], a tiny re-encode is
//! `O(`[`TINY_MAX`]`)` (and `O(1)` for ascending appends) — all
//! *independent of list length*, unlike `Vec::insert`'s `O(n)` memmove.
//! Representation switches are hysteretic at both tiers (tiny→blocks
//! above [`TINY_MAX`], back below [`TINY_MIN`]; sparse→dense above
//! [`SPARSE_MAX`], back below [`DENSE_MIN`]), so a run of mutations must
//! land on a list/block between two conversions — the amortized
//! split/merge policy that keeps write-heavy oplog replay cheap.
//!
//! See `docs/index.md` for the full format contract.

use std::cell::RefCell;

use crate::EntityId;

/// Ids per block: `4096 = 2^12`, so a dense bitmap is 64 `u64` words.
pub const BLOCK_SPAN: u64 = 4096;
/// Bits of an id below the block key.
const BLOCK_SHIFT: u32 = 12;
/// `u64` words in a dense bitmap container.
const WORDS: usize = (BLOCK_SPAN as usize) / 64;
/// A sparse container exceeding this cardinality is promoted to dense.
/// 512 offsets at ~1 byte each ≈ the 512-byte bitmap — past this point the
/// bitmap is both smaller and faster.
pub const SPARSE_MAX: usize = 512;
/// A dense container falling below this cardinality is demoted to sparse.
/// Strictly below [`SPARSE_MAX`] so conversions are hysteretic: a block
/// oscillating at one threshold cannot thrash between representations.
pub const DENSE_MIN: usize = 256;
/// Largest list kept in the tiny (single varint run) tier. Below this
/// size the block machinery's fixed cost (~48 B of directory + container
/// header per block, over lists whose ids spread thinly across many
/// blocks) exceeds the encoded ids; above it the blocks win on both
/// memory and intersection skipping. Mutation cost in the tiny tier is a
/// bounded `O(TINY_MAX)` re-encode (and `O(1)` for ascending appends).
pub const TINY_MAX: usize = 256;
/// A blocked list shrinking below this length collapses back to tiny
/// (hysteretic against [`TINY_MAX`], like the dense/sparse pair).
pub const TINY_MIN: usize = 128;

thread_local! {
    /// Scratch decode buffer for in-place sparse updates (one mutation
    /// decodes at most [`SPARSE_MAX`] offsets; reused to avoid a per-write
    /// allocation on the oplog replay path).
    static SCRATCH_OFFSETS: RefCell<Vec<u16>> = const { RefCell::new(Vec::new()) };
    /// Scratch decode buffer for tiny-tier updates (≤ [`TINY_MAX`] ids).
    static SCRATCH_IDS: RefCell<Vec<EntityId>> = const { RefCell::new(Vec::new()) };
}

/// Re-encode a tiny run in place, trimming pathological slack (shrinking
/// lists would otherwise pin their peak capacity forever).
fn reencode_tiny(ids: &[EntityId], bytes: &mut Vec<u8>) {
    encode_tiny_into(ids, bytes);
    if bytes.capacity() > bytes.len() * 2 {
        bytes.shrink_to_fit();
    }
}

// ---------------------------------------------------------------------
// Varint coding
// ---------------------------------------------------------------------

#[inline]
fn push_varint16(buf: &mut Vec<u8>, mut v: u16) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

#[inline]
fn read_varint16(bytes: &[u8], at: &mut usize) -> u16 {
    let mut v = 0u16;
    let mut shift = 0u32;
    loop {
        let b = bytes[*at];
        *at += 1;
        v |= u16::from(b & 0x7f) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
    }
}

#[inline]
fn push_varint64(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Encoded length of one u64 varint.
#[inline]
fn varint64_len(v: u64) -> usize {
    ((64 - v.leading_zeros() as usize).max(1)).div_ceil(7)
}

#[inline]
fn read_varint64(bytes: &[u8], at: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*at];
        *at += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
    }
}

/// Delta+varint-encode sorted, deduplicated in-block offsets: the first
/// offset is stored raw, each successor as `gap - 1` (offsets strictly
/// increase, so gaps are ≥ 1 and runs of consecutive ids encode as zeros).
fn encode_sparse(offsets: &[u16]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(offsets.len() + offsets.len() / 4);
    let mut prev = 0u16;
    for (i, &off) in offsets.iter().enumerate() {
        if i == 0 {
            push_varint16(&mut buf, off);
        } else {
            push_varint16(&mut buf, off - prev - 1);
        }
        prev = off;
    }
    buf
}

fn decode_sparse_into(bytes: &[u8], out: &mut Vec<u16>) {
    out.clear();
    let mut at = 0usize;
    let mut prev = 0u16;
    let mut first = true;
    while at < bytes.len() {
        let v = read_varint16(bytes, &mut at);
        let off = if first { v } else { prev + v + 1 };
        first = false;
        prev = off;
        out.push(off);
    }
}

/// Delta+varint-encode sorted full ids (the tiny tier): first id raw,
/// successors as `gap - 1`.
fn encode_tiny_into(ids: &[EntityId], out: &mut Vec<u8>) {
    out.clear();
    let mut prev = 0u64;
    for (i, &id) in ids.iter().enumerate() {
        if i == 0 {
            push_varint64(out, id.0);
        } else {
            push_varint64(out, id.0 - prev - 1);
        }
        prev = id.0;
    }
}

fn decode_tiny_into(bytes: &[u8], out: &mut Vec<EntityId>) {
    out.clear();
    let mut at = 0usize;
    let mut prev = 0u64;
    let mut first = true;
    while at < bytes.len() {
        let v = read_varint64(bytes, &mut at);
        let id = if first { v } else { prev + v + 1 };
        first = false;
        prev = id;
        out.push(EntityId(id));
    }
}

// ---------------------------------------------------------------------
// Containers and the block directory
// ---------------------------------------------------------------------

/// One block's membership payload.
#[derive(Clone, Debug, PartialEq)]
enum Container {
    /// Delta+varint-encoded sorted offsets (cardinality ≤ [`SPARSE_MAX`]).
    Sparse(Vec<u8>),
    /// 4096-bit bitmap (cardinality ≥ [`DENSE_MIN`]).
    Dense(Box<[u64; WORDS]>),
}

impl Container {
    fn contains(&self, off: u16) -> bool {
        match self {
            Container::Dense(words) => words[(off >> 6) as usize] & (1u64 << (off & 63)) != 0,
            Container::Sparse(bytes) => {
                let mut at = 0usize;
                let mut prev = 0u16;
                let mut first = true;
                while at < bytes.len() {
                    let v = read_varint16(bytes, &mut at);
                    let cur = if first { v } else { prev + v + 1 };
                    first = false;
                    if cur >= off {
                        return cur == off;
                    }
                    prev = cur;
                }
                false
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Container::Sparse(bytes) => bytes.capacity(),
            Container::Dense(_) => WORDS * 8,
        }
    }
}

/// One directory entry: everything block skipping needs without touching
/// the container — the key, the offset bounds, and the cardinality.
#[derive(Clone, Copy, Debug, PartialEq)]
struct BlockMeta {
    /// `id >> 12` of every member.
    key: u64,
    /// Smallest in-block offset.
    min: u16,
    /// Largest in-block offset.
    max: u16,
    /// Number of members (1..=4096).
    card: u16,
}

#[inline]
fn split_id(id: EntityId) -> (u64, u16) {
    (id.0 >> BLOCK_SHIFT, (id.0 & (BLOCK_SPAN - 1)) as u16)
}

#[inline]
fn join_id(key: u64, off: u16) -> EntityId {
    EntityId((key << BLOCK_SHIFT) | u64::from(off))
}

/// The representation ladder of one posting list.
#[derive(Clone, Debug)]
enum Repr {
    /// One delta+varint run over full ids (≤ [`TINY_MAX`] of them). `last`
    /// caches the largest id so ascending inserts append in `O(1)` — the
    /// hot shape during log replay, where ids arrive mostly in order.
    Tiny {
        /// The encoded run.
        bytes: Vec<u8>,
        /// Number of encoded ids (≤ [`TINY_MAX`]).
        len: u16,
        /// Largest encoded id (meaningless while `len == 0`).
        last: u64,
    },
    /// Block directory + containers (> [`TINY_MIN`] after hysteresis).
    Blocks {
        /// Sorted by `key`; parallel to `containers`.
        dir: Vec<BlockMeta>,
        /// Per-block payloads.
        containers: Vec<Container>,
        /// Total cardinality across blocks.
        len: usize,
    },
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Tiny {
            bytes: Vec::new(),
            len: 0,
            last: 0,
        }
    }
}

/// A sorted, deduplicated subject posting list in hybrid block-compressed
/// form. See the module docs for the representation and cost model.
#[derive(Clone, Debug, Default)]
pub struct BlockPostings {
    repr: Repr,
    /// Mutation stamp assigned by the owning index — the per-probe
    /// plan-cache fingerprint (0 = never stamped).
    stamp: u64,
}

/// Equality is by content (the id set), not representation — a tiny list
/// and a blocked list holding the same ids are equal.
impl PartialEq for BlockPostings {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl BlockPostings {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from sorted, deduplicated ids (bulk path: one encode per
    /// block, no incremental re-encoding).
    pub fn from_sorted(ids: &[EntityId]) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted + dedup");
        if ids.len() <= TINY_MAX {
            let mut bytes = Vec::new();
            encode_tiny_into(ids, &mut bytes);
            bytes.shrink_to_fit();
            return BlockPostings {
                repr: Repr::Tiny {
                    bytes,
                    len: ids.len() as u16,
                    last: ids.last().map_or(0, |id| id.0),
                },
                stamp: 0,
            };
        }
        BlockPostings {
            repr: blocks_from_sorted(ids),
            stamp: 0,
        }
    }

    /// Number of ids in the list.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Tiny { len, .. } => usize::from(*len),
            Repr::Blocks { len, .. } => *len,
        }
    }

    /// True if no ids are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of blocks (0 while the list is tiny).
    pub fn block_count(&self) -> usize {
        match &self.repr {
            Repr::Tiny { .. } => 0,
            Repr::Blocks { dir, .. } => dir.len(),
        }
    }

    /// Number of blocks currently in dense (bitmap) form.
    pub fn dense_block_count(&self) -> usize {
        match &self.repr {
            Repr::Tiny { .. } => 0,
            Repr::Blocks { containers, .. } => containers
                .iter()
                .filter(|c| matches!(c, Container::Dense(_)))
                .count(),
        }
    }

    /// True while the list is in the tiny (single varint run) tier.
    pub fn is_tiny(&self) -> bool {
        matches!(self.repr, Repr::Tiny { .. })
    }

    /// The mutation stamp last assigned by the owning index (0 if never
    /// stamped) — compared by plan caches as a per-probe fingerprint.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Assign the mutation stamp (index maintenance only).
    pub fn set_stamp(&mut self, stamp: u64) {
        self.stamp = stamp;
    }

    /// Approximate heap footprint of the list (encoded run, or directory +
    /// containers once blocked).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Tiny { bytes, .. } => bytes.capacity(),
            Repr::Blocks {
                dir, containers, ..
            } => {
                dir.capacity() * std::mem::size_of::<BlockMeta>()
                    + containers.capacity() * std::mem::size_of::<Container>()
                    + containers.iter().map(Container::heap_bytes).sum::<usize>()
            }
        }
    }

    /// Membership test: a bounded decode-scan (tiny), or directory binary
    /// search plus one container probe (blocked).
    pub fn contains(&self, id: EntityId) -> bool {
        match &self.repr {
            Repr::Tiny { bytes, len, last } => {
                if *len == 0 || id.0 > *last {
                    return false;
                }
                let mut at = 0usize;
                let mut prev = 0u64;
                let mut first = true;
                while at < bytes.len() {
                    let v = read_varint64(bytes, &mut at);
                    let cur = if first { v } else { prev + v + 1 };
                    first = false;
                    if cur >= id.0 {
                        return cur == id.0;
                    }
                    prev = cur;
                }
                false
            }
            Repr::Blocks {
                dir, containers, ..
            } => {
                let (key, off) = split_id(id);
                match dir.binary_search_by_key(&key, |m| m.key) {
                    Err(_) => false,
                    Ok(at) => {
                        let meta = dir[at];
                        off >= meta.min && off <= meta.max && containers[at].contains(off)
                    }
                }
            }
        }
    }

    /// The smallest id, if any.
    pub fn first(&self) -> Option<EntityId> {
        match &self.repr {
            Repr::Tiny { bytes, len, .. } => {
                if *len == 0 {
                    return None;
                }
                let mut at = 0usize;
                Some(EntityId(read_varint64(bytes, &mut at)))
            }
            Repr::Blocks { dir, .. } => dir.first().map(|m| join_id(m.key, m.min)),
        }
    }

    /// The largest id, if any.
    pub fn last(&self) -> Option<EntityId> {
        match &self.repr {
            Repr::Tiny { len, last, .. } => (*len > 0).then_some(EntityId(*last)),
            Repr::Blocks { dir, .. } => dir.last().map(|m| join_id(m.key, m.max)),
        }
    }

    /// Insert `id`; returns whether the list changed.
    pub fn insert(&mut self, id: EntityId) -> bool {
        match &mut self.repr {
            Repr::Tiny { bytes, len, last } => {
                // Allocations stay *exact* in this tier (singletons are
                // the most numerous lists in any index — amortized-growth
                // slack on them would rival the payload itself).
                if *len == 0 {
                    bytes.reserve_exact(varint64_len(id.0));
                    push_varint64(bytes, id.0);
                    *len = 1;
                    *last = id.0;
                    return true;
                }
                if id.0 > *last && usize::from(*len) < TINY_MAX {
                    // Ascending append: one varint, no decode (replay's
                    // dominant shape — ids arrive mostly in order). Runs
                    // stay exactly-sized while small — the slack on
                    // millions of near-singleton lists is what exactness
                    // buys — and switch to amortized doubling once the
                    // run is big enough that per-append reallocation
                    // would make "O(1) append" a lie.
                    let delta = id.0 - *last - 1;
                    let need = varint64_len(delta);
                    if bytes.capacity() - bytes.len() < need {
                        if bytes.len() < 32 {
                            bytes.reserve_exact(need);
                        } else {
                            bytes.reserve(need);
                        }
                    }
                    push_varint64(bytes, delta);
                    *len += 1;
                    *last = id.0;
                    return true;
                }
                let grown = SCRATCH_IDS.with(|scratch| {
                    let mut decoded = scratch.borrow_mut();
                    decode_tiny_into(bytes, &mut decoded);
                    let pos = match decoded.binary_search(&id) {
                        Ok(_) => return None,
                        Err(pos) => pos,
                    };
                    decoded.insert(pos, id);
                    if decoded.len() > TINY_MAX {
                        // Split: the list outgrew the tiny tier.
                        return Some(Some(blocks_from_sorted(&decoded)));
                    }
                    reencode_tiny(&decoded, bytes);
                    *len += 1;
                    *last = decoded.last().expect("non-empty").0;
                    Some(None)
                });
                match grown {
                    None => false,
                    Some(Some(blocks)) => {
                        self.repr = blocks;
                        true
                    }
                    Some(None) => true,
                }
            }
            Repr::Blocks {
                dir,
                containers,
                len,
            } => {
                let changed = blocks_insert(dir, containers, id);
                if changed {
                    *len += 1;
                }
                changed
            }
        }
    }

    /// Remove `id`; returns whether the list changed.
    pub fn remove(&mut self, id: EntityId) -> bool {
        let changed = match &mut self.repr {
            Repr::Tiny { bytes, len, last } => {
                if *len == 0 || id.0 > *last {
                    return false;
                }
                SCRATCH_IDS.with(|scratch| {
                    let mut decoded = scratch.borrow_mut();
                    decode_tiny_into(bytes, &mut decoded);
                    let Ok(pos) = decoded.binary_search(&id) else {
                        return false;
                    };
                    decoded.remove(pos);
                    reencode_tiny(&decoded, bytes);
                    *len -= 1;
                    *last = decoded.last().map_or(0, |id| id.0);
                    true
                })
            }
            Repr::Blocks {
                dir,
                containers,
                len,
            } => {
                if !blocks_remove(dir, containers, id) {
                    return false;
                }
                *len -= 1;
                true
            }
        };
        if changed {
            if let Repr::Blocks { len, .. } = &self.repr {
                if *len < TINY_MIN {
                    // Merge: collapse back to the tiny tier.
                    let ids: Vec<EntityId> = self.iter().collect();
                    self.repr = BlockPostings::from_sorted(&ids).repr;
                }
            }
        }
        changed
    }

    /// Iterate ids in ascending order, decoding block by block.
    pub fn iter(&self) -> PostingsIter<'_> {
        match &self.repr {
            Repr::Tiny { bytes, .. } => PostingsIter(IterInner::Tiny {
                bytes,
                at: 0,
                prev: 0,
                first: true,
            }),
            Repr::Blocks { .. } => PostingsIter(IterInner::Blocks {
                list: self,
                block: 0,
                state: BlockCursor::Unloaded,
            }),
        }
    }

    /// Materialize the full sorted id list (the decompression boundary —
    /// serving paths should prefer [`iter`](Self::iter) or the
    /// compressed-domain [`intersect_views`]).
    pub fn to_vec(&self) -> Vec<EntityId> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.iter());
        out
    }

    /// A borrowed view of this list.
    pub fn as_view(&self) -> PostingsView<'_> {
        PostingsView { list: Some(self) }
    }

    /// Append this list's compressed form to `out` block-wise: tiny runs
    /// and sparse containers are copied byte-for-byte, dense bitmaps as
    /// little-endian words. Nothing is decompressed — a checkpoint writes
    /// exactly the bytes the in-memory tiers already hold. Stamps are
    /// process-local and deliberately not serialized.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        match &self.repr {
            Repr::Tiny { bytes, len, .. } => {
                out.push(WIRE_TINY);
                push_varint64(out, u64::from(*len));
                push_varint64(out, bytes.len() as u64);
                out.extend_from_slice(bytes);
            }
            Repr::Blocks {
                dir,
                containers,
                len,
            } => {
                out.push(WIRE_BLOCKS);
                push_varint64(out, dir.len() as u64);
                push_varint64(out, *len as u64);
                for (meta, container) in dir.iter().zip(containers) {
                    push_varint64(out, meta.key);
                    push_varint64(out, u64::from(meta.min));
                    push_varint64(out, u64::from(meta.max));
                    push_varint64(out, u64::from(meta.card));
                    match container {
                        Container::Sparse(bytes) => {
                            out.push(WIRE_SPARSE);
                            push_varint64(out, bytes.len() as u64);
                            out.extend_from_slice(bytes);
                        }
                        Container::Dense(words) => {
                            out.push(WIRE_DENSE);
                            for w in words.iter() {
                                out.extend_from_slice(&w.to_le_bytes());
                            }
                        }
                    }
                }
            }
        }
    }

    /// Decode one list previously appended by
    /// [`write_bytes`](Self::write_bytes), advancing `at` past it. Every
    /// structural invariant (tier sizes, directory order, per-block
    /// min/max/cardinality against the container bytes) is re-verified so
    /// a corrupt artifact surfaces as an error, never a malformed list.
    /// The restored list carries stamp 0 — fingerprints are process-local.
    pub fn read_bytes(bytes: &[u8], at: &mut usize) -> crate::Result<Self> {
        match take_byte(bytes, at)? {
            WIRE_TINY => {
                let len = take_varint64(bytes, at)?;
                if len > TINY_MAX as u64 {
                    return Err(wire_err("tiny run larger than TINY_MAX"));
                }
                let nbytes = take_varint64(bytes, at)? as usize;
                let run = take_slice(bytes, at, nbytes)?;
                // Walk the run to count ids and recover `last`.
                let mut pos = 0usize;
                let mut prev = 0u64;
                let mut count = 0u64;
                while pos < run.len() {
                    let v = take_varint64(run, &mut pos)?;
                    prev = if count == 0 {
                        v
                    } else {
                        prev.checked_add(v)
                            .and_then(|s| s.checked_add(1))
                            .ok_or_else(|| wire_err("tiny run id overflow"))?
                    };
                    count += 1;
                }
                if count != len {
                    return Err(wire_err("tiny run length mismatch"));
                }
                Ok(BlockPostings {
                    repr: Repr::Tiny {
                        bytes: run.to_vec(),
                        len: len as u16,
                        last: prev,
                    },
                    stamp: 0,
                })
            }
            WIRE_BLOCKS => {
                let nblocks = take_varint64(bytes, at)? as usize;
                let total = take_varint64(bytes, at)? as usize;
                let mut dir: Vec<BlockMeta> = Vec::with_capacity(nblocks);
                let mut containers: Vec<Container> = Vec::with_capacity(nblocks);
                let mut cards = 0usize;
                for _ in 0..nblocks {
                    let key = take_varint64(bytes, at)?;
                    let min = take_varint64(bytes, at)?;
                    let max = take_varint64(bytes, at)?;
                    let card = take_varint64(bytes, at)?;
                    if dir.last().is_some_and(|m| m.key >= key) {
                        return Err(wire_err("block directory out of order"));
                    }
                    if min > max || max >= BLOCK_SPAN || card == 0 || card > BLOCK_SPAN {
                        return Err(wire_err("block meta out of range"));
                    }
                    let (min, max, card) = (min as u16, max as u16, card as u16);
                    let container = match take_byte(bytes, at)? {
                        WIRE_SPARSE => {
                            let nbytes = take_varint64(bytes, at)? as usize;
                            let payload = take_slice(bytes, at, nbytes)?;
                            verify_sparse(payload, min, max, card)?;
                            Container::Sparse(payload.to_vec())
                        }
                        WIRE_DENSE => {
                            let raw = take_slice(bytes, at, WORDS * 8)?;
                            let mut words = Box::new([0u64; WORDS]);
                            for (w, chunk) in words.iter_mut().zip(raw.chunks_exact(8)) {
                                *w = u64::from_le_bytes(chunk.try_into().unwrap());
                            }
                            let ones: u32 = words.iter().map(|w| w.count_ones()).sum();
                            if ones != u32::from(card)
                                || dense_first(&words) != min
                                || dense_last(&words) != max
                            {
                                return Err(wire_err("dense bitmap disagrees with meta"));
                            }
                            Container::Dense(words)
                        }
                        _ => return Err(wire_err("unknown container tag")),
                    };
                    cards += usize::from(card);
                    dir.push(BlockMeta {
                        key,
                        min,
                        max,
                        card,
                    });
                    containers.push(container);
                }
                if cards != total {
                    return Err(wire_err("block cardinality sum mismatch"));
                }
                Ok(BlockPostings {
                    repr: Repr::Blocks {
                        dir,
                        containers,
                        len: total,
                    },
                    stamp: 0,
                })
            }
            _ => Err(wire_err("unknown representation tag")),
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint wire form (block-wise, no decompression)
// ---------------------------------------------------------------------

/// Representation tag: tiny varint run.
const WIRE_TINY: u8 = 0;
/// Representation tag: block directory + containers.
const WIRE_BLOCKS: u8 = 1;
/// Container tag: delta+varint sparse offsets.
const WIRE_SPARSE: u8 = 0;
/// Container tag: 4096-bit bitmap.
const WIRE_DENSE: u8 = 1;

fn wire_err(msg: &str) -> crate::SagaError {
    crate::SagaError::Storage(format!("postings decode: {msg}"))
}

/// Bounds-checked byte read (the panicking readers above are reserved for
/// trusted in-memory payloads).
fn take_byte(bytes: &[u8], at: &mut usize) -> crate::Result<u8> {
    let b = *bytes
        .get(*at)
        .ok_or_else(|| wire_err("truncated payload"))?;
    *at += 1;
    Ok(b)
}

fn take_varint64(bytes: &[u8], at: &mut usize) -> crate::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = take_byte(bytes, at)?;
        if shift >= 64 {
            return Err(wire_err("varint overflow"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn take_slice<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> crate::Result<&'a [u8]> {
    let end = at
        .checked_add(n)
        .filter(|&end| end <= bytes.len())
        .ok_or_else(|| wire_err("truncated payload"))?;
    let s = &bytes[*at..end];
    *at = end;
    Ok(s)
}

/// Verify a sparse container's encoded offsets against its directory
/// entry without allocating: count, first, last, and in-range.
fn verify_sparse(payload: &[u8], min: u16, max: u16, card: u16) -> crate::Result<()> {
    let mut at = 0usize;
    let mut prev = 0u64;
    let mut count = 0u64;
    while at < payload.len() {
        let v = take_varint64(payload, &mut at)?;
        prev = if count == 0 { v } else { prev + v + 1 };
        if prev >= BLOCK_SPAN {
            return Err(wire_err("sparse offset out of range"));
        }
        if count == 0 && prev != u64::from(min) {
            return Err(wire_err("sparse min disagrees with meta"));
        }
        count += 1;
    }
    if count != u64::from(card) || (count > 0 && prev != u64::from(max)) {
        return Err(wire_err("sparse container disagrees with meta"));
    }
    Ok(())
}

/// Append a block built from sorted offsets (bulk builds only; `key` must
/// be greater than every existing key).
fn push_block(
    dir: &mut Vec<BlockMeta>,
    containers: &mut Vec<Container>,
    key: u64,
    offsets: &[u16],
) {
    debug_assert!(!offsets.is_empty());
    debug_assert!(dir.last().is_none_or(|m| m.key < key));
    let container = if offsets.len() > SPARSE_MAX {
        let mut words = Box::new([0u64; WORDS]);
        for &off in offsets {
            words[(off >> 6) as usize] |= 1u64 << (off & 63);
        }
        Container::Dense(words)
    } else {
        Container::Sparse(encode_sparse(offsets))
    };
    dir.push(BlockMeta {
        key,
        min: offsets[0],
        max: *offsets.last().unwrap(),
        card: offsets.len() as u16,
    });
    containers.push(container);
}

/// Blocked `Repr` from sorted, deduplicated ids.
fn blocks_from_sorted(ids: &[EntityId]) -> Repr {
    let mut dir: Vec<BlockMeta> = Vec::new();
    let mut containers: Vec<Container> = Vec::new();
    let mut offsets: Vec<u16> = Vec::new();
    let mut cur_key: Option<u64> = None;
    for &id in ids {
        let (key, off) = split_id(id);
        if cur_key != Some(key) {
            if let Some(k) = cur_key {
                push_block(&mut dir, &mut containers, k, &offsets);
            }
            offsets.clear();
            cur_key = Some(key);
        }
        offsets.push(off);
    }
    if let Some(k) = cur_key {
        push_block(&mut dir, &mut containers, k, &offsets);
    }
    Repr::Blocks {
        dir,
        containers,
        len: ids.len(),
    }
}

/// Insert into the blocked tier; true if membership changed.
fn blocks_insert(dir: &mut Vec<BlockMeta>, containers: &mut Vec<Container>, id: EntityId) -> bool {
    let (key, off) = split_id(id);
    let at = match dir.binary_search_by_key(&key, |m| m.key) {
        Err(at) => {
            dir.insert(
                at,
                BlockMeta {
                    key,
                    min: off,
                    max: off,
                    card: 1,
                },
            );
            let mut buf = Vec::with_capacity(2);
            push_varint16(&mut buf, off);
            containers.insert(at, Container::Sparse(buf));
            return true;
        }
        Ok(at) => at,
    };
    match &mut containers[at] {
        Container::Dense(words) => {
            let slot = &mut words[(off >> 6) as usize];
            let bit = 1u64 << (off & 63);
            if *slot & bit != 0 {
                return false;
            }
            *slot |= bit;
        }
        Container::Sparse(_) => {
            // Decode, insert, re-encode in scratch; promotion to dense
            // (the split threshold) is applied after the borrow ends.
            let promoted = SCRATCH_OFFSETS.with(|scratch| {
                let mut offsets = scratch.borrow_mut();
                let Container::Sparse(bytes) = &mut containers[at] else {
                    unreachable!("matched sparse above");
                };
                decode_sparse_into(bytes, &mut offsets);
                let pos = match offsets.binary_search(&off) {
                    Ok(_) => return None,
                    Err(pos) => pos,
                };
                offsets.insert(pos, off);
                if offsets.len() > SPARSE_MAX {
                    let mut words = Box::new([0u64; WORDS]);
                    for &o in offsets.iter() {
                        words[(o >> 6) as usize] |= 1u64 << (o & 63);
                    }
                    Some(Some(words))
                } else {
                    *bytes = encode_sparse(&offsets);
                    Some(None)
                }
            });
            match promoted {
                None => return false,
                Some(Some(words)) => containers[at] = Container::Dense(words),
                Some(None) => {}
            }
        }
    }
    let meta = &mut dir[at];
    meta.card += 1;
    meta.min = meta.min.min(off);
    meta.max = meta.max.max(off);
    true
}

/// Remove from the blocked tier; true if membership changed.
fn blocks_remove(dir: &mut Vec<BlockMeta>, containers: &mut Vec<Container>, id: EntityId) -> bool {
    let (key, off) = split_id(id);
    let Ok(at) = dir.binary_search_by_key(&key, |m| m.key) else {
        return false;
    };
    let meta = dir[at];
    if off < meta.min || off > meta.max {
        return false;
    }
    match &mut containers[at] {
        Container::Dense(words) => {
            let slot = &mut words[(off >> 6) as usize];
            let bit = 1u64 << (off & 63);
            if *slot & bit == 0 {
                return false;
            }
            *slot &= !bit;
            let card = meta.card - 1;
            if usize::from(card) < DENSE_MIN {
                // Demote: the block fell through the merge threshold.
                let mut offsets = Vec::with_capacity(usize::from(card));
                for_each_set_bit(words, |off| offsets.push(off));
                let m = &mut dir[at];
                m.card = card;
                m.min = offsets[0];
                m.max = *offsets.last().unwrap();
                containers[at] = Container::Sparse(encode_sparse(&offsets));
            } else {
                let m = &mut dir[at];
                m.card = card;
                if off == m.min {
                    m.min = dense_first(words);
                }
                if off == m.max {
                    m.max = dense_last(words);
                }
            }
            true
        }
        Container::Sparse(_) => {
            let removed = SCRATCH_OFFSETS.with(|scratch| {
                let mut offsets = scratch.borrow_mut();
                let Container::Sparse(bytes) = &mut containers[at] else {
                    unreachable!("matched sparse above");
                };
                decode_sparse_into(bytes, &mut offsets);
                let Ok(pos) = offsets.binary_search(&off) else {
                    return None;
                };
                offsets.remove(pos);
                if offsets.is_empty() {
                    return Some(None);
                }
                *bytes = encode_sparse(&offsets);
                Some(Some((offsets[0], *offsets.last().unwrap())))
            });
            match removed {
                None => false,
                Some(None) => {
                    dir.remove(at);
                    containers.remove(at);
                    true
                }
                Some(Some((min, max))) => {
                    let m = &mut dir[at];
                    m.card -= 1;
                    m.min = min;
                    m.max = max;
                    true
                }
            }
        }
    }
}

/// Visit every set bit of a dense bitmap as its in-block offset, in
/// ascending order — the one word-walk shared by every dense decode/emit
/// path.
#[inline]
fn for_each_set_bit(words: &[u64; WORDS], mut f: impl FnMut(u16)) {
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let tz = bits.trailing_zeros();
            f((w as u16) << 6 | tz as u16);
            bits &= bits - 1;
        }
    }
}

fn dense_first(words: &[u64; WORDS]) -> u16 {
    for (w, &word) in words.iter().enumerate() {
        if word != 0 {
            return (w as u16) << 6 | word.trailing_zeros() as u16;
        }
    }
    unreachable!("dense container with no bits set")
}

fn dense_last(words: &[u64; WORDS]) -> u16 {
    for (w, &word) in words.iter().enumerate().rev() {
        if word != 0 {
            return (w as u16) << 6 | (63 - word.leading_zeros()) as u16;
        }
    }
    unreachable!("dense container with no bits set")
}

impl<'a> IntoIterator for &'a BlockPostings {
    type Item = EntityId;
    type IntoIter = PostingsIter<'a>;
    fn into_iter(self) -> PostingsIter<'a> {
        self.iter()
    }
}

impl FromIterator<EntityId> for BlockPostings {
    /// Collect from an id stream in any order (sorts + dedups first).
    fn from_iter<I: IntoIterator<Item = EntityId>>(iter: I) -> Self {
        let mut ids: Vec<EntityId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        BlockPostings::from_sorted(&ids)
    }
}

/// Decode state of the ordered iterator within one block.
enum BlockCursor {
    Unloaded,
    Sparse { at: usize, prev: u16, first: bool },
    Dense { word: usize, bits: u64 },
}

/// Ordered iterator over a [`BlockPostings`] (streaming decode; no full
/// materialization).
pub struct PostingsIter<'a>(IterInner<'a>);

enum IterInner<'a> {
    /// Tiny tier: one varint run over full ids.
    Tiny {
        /// Encoded run.
        bytes: &'a [u8],
        /// Byte position.
        at: usize,
        /// Previously decoded id.
        prev: u64,
        /// True before the first id is decoded.
        first: bool,
    },
    /// Blocked tier: directory walk with per-block decode state.
    Blocks {
        /// The list being decoded.
        list: &'a BlockPostings,
        /// Current directory position.
        block: usize,
        /// Decode state within the current block.
        state: BlockCursor,
    },
}

impl PostingsIter<'_> {
    /// An iterator over nothing.
    fn empty() -> Self {
        PostingsIter(IterInner::Tiny {
            bytes: &[],
            at: 0,
            prev: 0,
            first: true,
        })
    }
}

impl Iterator for PostingsIter<'_> {
    type Item = EntityId;

    fn next(&mut self) -> Option<EntityId> {
        let (list, block, state) = match &mut self.0 {
            IterInner::Tiny {
                bytes,
                at,
                prev,
                first,
            } => {
                if *at >= bytes.len() {
                    return None;
                }
                let v = read_varint64(bytes, at);
                let id = if *first { v } else { *prev + v + 1 };
                *first = false;
                *prev = id;
                return Some(EntityId(id));
            }
            IterInner::Blocks { list, block, state } => (*list, block, state),
        };
        let Repr::Blocks {
            dir, containers, ..
        } = &list.repr
        else {
            unreachable!("blocks iterator over tiny repr");
        };
        loop {
            if *block >= dir.len() {
                return None;
            }
            let key = dir[*block].key;
            match state {
                BlockCursor::Unloaded => {
                    *state = match &containers[*block] {
                        Container::Sparse(_) => BlockCursor::Sparse {
                            at: 0,
                            prev: 0,
                            first: true,
                        },
                        Container::Dense(words) => BlockCursor::Dense {
                            word: 0,
                            bits: words[0],
                        },
                    };
                }
                BlockCursor::Sparse { at, prev, first } => {
                    let Container::Sparse(bytes) = &containers[*block] else {
                        unreachable!("cursor/container mismatch");
                    };
                    if *at >= bytes.len() {
                        *block += 1;
                        *state = BlockCursor::Unloaded;
                        continue;
                    }
                    let v = read_varint16(bytes, at);
                    let off = if *first { v } else { *prev + v + 1 };
                    *first = false;
                    *prev = off;
                    return Some(join_id(key, off));
                }
                BlockCursor::Dense { word, bits } => {
                    let Container::Dense(words) = &containers[*block] else {
                        unreachable!("cursor/container mismatch");
                    };
                    while *bits == 0 {
                        *word += 1;
                        if *word >= WORDS {
                            break;
                        }
                        *bits = words[*word];
                    }
                    if *word >= WORDS {
                        *block += 1;
                        *state = BlockCursor::Unloaded;
                        continue;
                    }
                    let tz = bits.trailing_zeros();
                    *bits &= *bits - 1;
                    return Some(join_id(key, (*word as u16) << 6 | tz as u16));
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.0 {
            // ≥1 byte per remaining id.
            IterInner::Tiny { bytes, at, .. } => (0, Some(bytes.len().saturating_sub(*at))),
            // Exact only at the start; a cheap upper bound afterwards.
            IterInner::Blocks { list, .. } => (0, Some(list.len())),
        }
    }
}

// ---------------------------------------------------------------------
// Views and cursors — the serving API surface
// ---------------------------------------------------------------------

/// A borrowed, possibly-empty view of one probe's posting list — what the
/// [`TripleIndex`](crate::TripleIndex) hands out without copying.
///
/// The empty view (probe missed the index entirely) is a first-class
/// value, so callers never branch on `Option`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PostingsView<'a> {
    list: Option<&'a BlockPostings>,
}

impl<'a> PostingsView<'a> {
    /// The view of a posting list that does not exist.
    pub fn empty() -> Self {
        PostingsView { list: None }
    }

    /// View a concrete list.
    pub fn of(list: &'a BlockPostings) -> Self {
        PostingsView { list: Some(list) }
    }

    /// Number of ids behind the view.
    pub fn len(&self) -> usize {
        self.list.map_or(0, BlockPostings::len)
    }

    /// True if the view holds no ids.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test (directory search + one container probe).
    pub fn contains(&self, id: EntityId) -> bool {
        self.list.is_some_and(|l| l.contains(id))
    }

    /// The owning list's mutation stamp (0 for the empty view) — the
    /// per-probe plan-cache fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.list.map_or(0, BlockPostings::stamp)
    }

    /// Number of blocks behind the view (0 for tiny/empty lists).
    pub fn block_count(&self) -> usize {
        self.list.map_or(0, BlockPostings::block_count)
    }

    /// Number of dense (bitmap) blocks behind the view.
    pub fn dense_block_count(&self) -> usize {
        self.list.map_or(0, BlockPostings::dense_block_count)
    }

    /// Ordered id iterator (streaming decode).
    pub fn iter(&self) -> PostingsIter<'a> {
        match self.list {
            Some(list) => list.iter(),
            None => PostingsIter::empty(),
        }
    }

    /// Materialize the sorted id list.
    pub fn to_vec(&self) -> Vec<EntityId> {
        self.list.map_or_else(Vec::new, BlockPostings::to_vec)
    }

    /// Snapshot into an owned [`PostingsCursor`] (clones the *compressed*
    /// blocks — the cheap way to carry a posting list out of a lock).
    pub fn to_cursor(&self) -> PostingsCursor {
        PostingsCursor {
            list: self.list.cloned().unwrap_or_default(),
        }
    }

    /// Approximate heap bytes behind the view.
    pub fn heap_bytes(&self) -> usize {
        self.list.map_or(0, BlockPostings::heap_bytes)
    }
}

impl<'a> IntoIterator for PostingsView<'a> {
    type Item = EntityId;
    type IntoIter = PostingsIter<'a>;
    fn into_iter(self) -> PostingsIter<'a> {
        self.iter()
    }
}

impl PartialEq for PostingsView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl PartialEq<&[EntityId]> for PostingsView<'_> {
    fn eq(&self, other: &&[EntityId]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl<const N: usize> PartialEq<&[EntityId; N]> for PostingsView<'_> {
    fn eq(&self, other: &&[EntityId; N]) -> bool {
        self.len() == N && self.iter().eq(other.iter().copied())
    }
}

impl PartialEq<Vec<EntityId>> for PostingsView<'_> {
    fn eq(&self, other: &Vec<EntityId>) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

/// An owned snapshot of one probe's posting list in compressed form — the
/// unit [`GraphRead`](crate::GraphRead) backends serve postings through.
///
/// Lock-striped backends cannot hand out borrowed views (the borrow would
/// outlive the shard lock); a cursor clones the compressed blocks instead,
/// which is far cheaper than materializing `Vec<EntityId>` on dense lists
/// and carries the block directory along for compressed-domain
/// intersection on the caller's side.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PostingsCursor {
    list: BlockPostings,
}

impl PostingsCursor {
    /// The empty cursor.
    pub fn empty() -> Self {
        PostingsCursor::default()
    }

    /// Wrap an owned list.
    pub fn from_list(list: BlockPostings) -> Self {
        PostingsCursor { list }
    }

    /// Build from sorted, deduplicated ids.
    pub fn from_sorted(ids: Vec<EntityId>) -> Self {
        PostingsCursor {
            list: BlockPostings::from_sorted(&ids),
        }
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if no ids are present.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, id: EntityId) -> bool {
        self.list.contains(id)
    }

    /// Ordered id iterator.
    pub fn iter(&self) -> PostingsIter<'_> {
        self.list.iter()
    }

    /// Materialize the sorted id list.
    pub fn to_vec(&self) -> Vec<EntityId> {
        self.list.to_vec()
    }

    /// Borrow as a view (for [`intersect_views`]).
    pub fn as_view(&self) -> PostingsView<'_> {
        self.list.as_view()
    }

    /// The snapshotted mutation stamp (see [`PostingsView::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.list.stamp()
    }

    /// The underlying compressed list.
    pub fn into_list(self) -> BlockPostings {
        self.list
    }

    /// Approximate heap bytes held by the snapshot.
    pub fn heap_bytes(&self) -> usize {
        self.list.heap_bytes()
    }
}

impl<'a> IntoIterator for &'a PostingsCursor {
    type Item = EntityId;
    type IntoIter = PostingsIter<'a>;
    fn into_iter(self) -> PostingsIter<'a> {
        self.iter()
    }
}

impl PartialEq<Vec<EntityId>> for PostingsCursor {
    fn eq(&self, other: &Vec<EntityId>) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl PartialEq<&[EntityId]> for PostingsCursor {
    fn eq(&self, other: &&[EntityId]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

// ---------------------------------------------------------------------
// Compressed-domain set algebra
// ---------------------------------------------------------------------

/// First directory position in `dir[from..]` whose key is `>= key`, found
/// by doubling steps then binary search — the "gallop into the directory"
/// skip path of sparse intersection.
fn gallop_dir(dir: &[BlockMeta], from: usize, key: u64) -> usize {
    if from >= dir.len() || dir[from].key >= key {
        return from;
    }
    let mut step = 1;
    let mut lo = from;
    let mut hi = from + 1;
    while hi < dir.len() && dir[hi].key < key {
        lo = hi;
        step *= 2;
        hi = (hi + step).min(dir.len());
        if hi == dir.len() {
            break;
        }
    }
    lo + dir[lo..hi].partition_point(|m| m.key < key)
}

/// Intersect posting lists **in the compressed domain**: gallop the block
/// directories to find common keys, `AND` dense×dense blocks word-wise,
/// and decode sparse blocks (≤ [`SPARSE_MAX`] offsets) into scratch for
/// membership tests — full lists are never materialized. A conjunction
/// involving a tiny list short-circuits to candidate testing: at most
/// [`TINY_MAX`] point probes against the other lists.
///
/// Complexity: `O(common blocks · block work)` plus
/// `O(|smallest dir| · Σ log |other dir|)` directory galloping; block work
/// is 64 word-`AND`s (dense) or `O(smallest block card)` probes (mixed).
pub fn intersect_views(lists: &[PostingsView]) -> Vec<EntityId> {
    let Some(driver_at) = (0..lists.len()).min_by_key(|&i| lists[i].len()) else {
        return Vec::new();
    };
    if lists[driver_at].is_empty() {
        return Vec::new();
    }
    if lists.len() == 1 {
        return lists[driver_at].to_vec();
    }
    let Some(driver) = lists[driver_at].list else {
        unreachable!("non-empty view has a list");
    };
    let others: Vec<&BlockPostings> = lists
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != driver_at)
        .filter_map(|(_, v)| v.list)
        .collect();
    if others.len() + 1 != lists.len() {
        // An empty view slipped in alongside non-empty ones.
        return Vec::new();
    }

    // Any tiny participant bounds the driver at TINY_MAX candidates:
    // point probes beat block alignment at that size.
    if driver.is_tiny() || others.iter().any(|l| l.is_tiny()) {
        return driver
            .iter()
            .filter(|&id| others.iter().all(|l| l.contains(id)))
            .collect();
    }

    let Repr::Blocks {
        dir: driver_dir,
        containers: driver_containers,
        ..
    } = &driver.repr
    else {
        unreachable!("checked blocked above");
    };

    let mut out = Vec::new();
    let mut cursors = vec![0usize; others.len()];
    // Scratch reused across blocks: decoded offsets of the block's
    // smallest container, per-rest-list decode buffers for mixed blocks,
    // and the word buffer for dense ANDs.
    let mut decoded: Vec<u16> = Vec::new();
    let mut rest_decoded: Vec<Vec<u16>> = Vec::new();
    let mut acc = [0u64; WORDS];

    'blocks: for (bi, meta) in driver_dir.iter().enumerate() {
        // Locate this block key in every other directory, galloping from
        // the previous match (directories are both sorted by key).
        let mut lo = meta.min;
        let mut hi = meta.max;
        let mut block_at: Vec<(&BlockPostings, usize)> = Vec::with_capacity(others.len());
        for (other, cursor) in others.iter().zip(cursors.iter_mut()) {
            let Repr::Blocks { dir, .. } = &other.repr else {
                unreachable!("checked blocked above");
            };
            let at = gallop_dir(dir, *cursor, meta.key);
            if at >= dir.len() {
                // This and every later driver block miss this list.
                break 'blocks;
            }
            *cursor = at;
            if dir[at].key != meta.key {
                continue 'blocks;
            }
            lo = lo.max(dir[at].min);
            hi = hi.min(dir[at].max);
            block_at.push((other, at));
        }
        if lo > hi {
            continue; // Directory-only reject: offset ranges don't overlap.
        }

        // Pick the smallest container in this block as the in-block driver.
        let mut smallest = (meta.card, &driver_containers[bi]);
        let mut rest: Vec<&Container> = Vec::with_capacity(others.len());
        for (other, at) in &block_at {
            let Repr::Blocks {
                dir, containers, ..
            } = &other.repr
            else {
                unreachable!("checked blocked above");
            };
            let c = (dir[*at].card, &containers[*at]);
            if c.0 < smallest.0 {
                rest.push(smallest.1);
                smallest = c;
            } else {
                rest.push(c.1);
            }
        }

        if let Container::Dense(words) = smallest.1 {
            if rest.iter().all(|c| matches!(c, Container::Dense(_))) {
                // Dense × dense: word-wise AND, emit set bits.
                acc.copy_from_slice(&words[..]);
                for c in &rest {
                    let Container::Dense(w) = c else {
                        unreachable!()
                    };
                    for (a, b) in acc.iter_mut().zip(w.iter()) {
                        *a &= *b;
                    }
                }
                for_each_set_bit(&acc, |off| out.push(join_id(meta.key, off)));
                continue;
            }
        }

        // Mixed block: decode the smallest container once, and decode each
        // sparse rest container once too (a linear `Container::contains`
        // per candidate would make sparse×sparse blocks quadratic) — dense
        // rest containers stay O(1) bit tests.
        decode_container(smallest.1, &mut decoded);
        while rest_decoded.len() < rest.len() {
            rest_decoded.push(Vec::new());
        }
        let probes: Vec<BlockProbe> = rest
            .iter()
            .zip(rest_decoded.iter_mut())
            .map(|(c, buf)| match c {
                Container::Dense(words) => BlockProbe::Dense(words),
                Container::Sparse(bytes) => {
                    decode_sparse_into(bytes, buf);
                    BlockProbe::Sorted(buf)
                }
            })
            .collect();
        'offsets: for &off in decoded.iter() {
            if off < lo || off > hi {
                continue;
            }
            for probe in &probes {
                let hit = match probe {
                    BlockProbe::Dense(words) => {
                        words[(off >> 6) as usize] & (1u64 << (off & 63)) != 0
                    }
                    BlockProbe::Sorted(offsets) => offsets.binary_search(&off).is_ok(),
                };
                if !hit {
                    continue 'offsets;
                }
            }
            out.push(join_id(meta.key, off));
        }
    }
    out
}

/// One rest container of a mixed block, prepared for per-candidate
/// membership tests: dense bitmaps probe bits, sparse containers are
/// decoded once and binary-searched.
enum BlockProbe<'a> {
    Dense(&'a [u64; WORDS]),
    Sorted(&'a [u16]),
}

fn decode_container(container: &Container, out: &mut Vec<u16>) {
    match container {
        Container::Sparse(bytes) => decode_sparse_into(bytes, out),
        Container::Dense(words) => {
            out.clear();
            for_each_set_bit(words, |off| out.push(off));
        }
    }
}

/// Union posting lists into one owned [`BlockPostings`] — the cross-shard
/// merge path (shards partition the id space, so inputs are disjoint, but
/// the merge is correct for overlapping inputs too).
///
/// Works per block: all blocked containers sharing a key are OR-ed
/// through one dense scratch bitmap, then stored dense or re-encoded
/// sparse by the steady-state thresholds. Tiny inputs are decoded once
/// into a sorted side list that joins the block-wise merge as one more
/// (blocked) input — the whole union is linear in total input size, with
/// no per-id re-encoding.
pub fn union_views(lists: &[PostingsView]) -> BlockPostings {
    let present: Vec<&BlockPostings> = lists.iter().filter_map(|v| v.list).collect();
    let (tiny, mut blocked): (Vec<&BlockPostings>, Vec<&BlockPostings>) =
        present.into_iter().partition(|l| l.is_tiny());
    let mut extra: Vec<EntityId> = tiny.iter().flat_map(|l| l.iter()).collect();
    extra.sort_unstable();
    extra.dedup();
    if blocked.is_empty() {
        return BlockPostings::from_sorted(&extra);
    }
    // Force the side list into blocked form so it can join the block-wise
    // merge regardless of its size.
    let extra_list = (!extra.is_empty()).then(|| BlockPostings {
        repr: blocks_from_sorted(&extra),
        stamp: 0,
    });
    if let Some(list) = &extra_list {
        blocked.push(list);
    }
    let out = match blocked.len() {
        1 => blocked[0].clone(),
        _ => union_blocked(&blocked),
    };
    // Normalize tiny unions back to the tiny tier.
    if out.len() <= TINY_MAX {
        let ids = out.to_vec();
        return BlockPostings::from_sorted(&ids);
    }
    out
}

fn union_blocked(lists: &[&BlockPostings]) -> BlockPostings {
    let dirs: Vec<(&Vec<BlockMeta>, &Vec<Container>)> = lists
        .iter()
        .map(|l| match &l.repr {
            Repr::Blocks {
                dir, containers, ..
            } => (dir, containers),
            Repr::Tiny { .. } => unreachable!("caller partitioned tiny lists out"),
        })
        .collect();
    let mut dir: Vec<BlockMeta> = Vec::new();
    let mut containers: Vec<Container> = Vec::new();
    let mut len = 0usize;
    let mut cursors = vec![0usize; dirs.len()];
    let mut acc = [0u64; WORDS];
    let mut offsets: Vec<u16> = Vec::new();
    // Walk block keys in ascending order across all inputs.
    while let Some(key) = cursors
        .iter()
        .zip(dirs.iter())
        .filter_map(|(&c, (d, _))| d.get(c).map(|m| m.key))
        .min()
    {
        acc.fill(0);
        for (cursor, (d, c)) in cursors.iter_mut().zip(dirs.iter()) {
            let Some(meta) = d.get(*cursor) else {
                continue;
            };
            if meta.key != key {
                continue;
            }
            match &c[*cursor] {
                Container::Dense(words) => {
                    for (a, b) in acc.iter_mut().zip(words.iter()) {
                        *a |= *b;
                    }
                }
                Container::Sparse(bytes) => {
                    decode_sparse_into(bytes, &mut offsets);
                    for &off in offsets.iter() {
                        acc[(off >> 6) as usize] |= 1u64 << (off & 63);
                    }
                }
            }
            *cursor += 1;
        }
        let card = acc.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        if card == 0 {
            continue;
        }
        let container = if card > SPARSE_MAX {
            Container::Dense(Box::new(acc))
        } else {
            offsets.clear();
            for_each_set_bit(&acc, |off| offsets.push(off));
            Container::Sparse(encode_sparse(&offsets))
        };
        dir.push(BlockMeta {
            key,
            min: dense_first(&acc),
            max: dense_last(&acc),
            card: card as u16,
        });
        containers.push(container);
        len += card;
    }
    BlockPostings {
        repr: Repr::Blocks {
            dir,
            containers,
            len,
        },
        stamp: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: impl IntoIterator<Item = u64>) -> Vec<EntityId> {
        v.into_iter().map(EntityId).collect()
    }

    #[test]
    fn insert_remove_contains_roundtrip_tiny() {
        let mut list = BlockPostings::new();
        let sample = ids([0, 1, 63, 64, 4095, 4096, 4097, 40_000, 1 << 40]);
        for &id in &sample {
            assert!(list.insert(id));
            assert!(!list.insert(id), "duplicate insert is a no-op");
        }
        assert!(list.is_tiny(), "9 ids stay tiny");
        assert_eq!(list.len(), sample.len());
        assert_eq!(list.to_vec(), sample);
        for &id in &sample {
            assert!(list.contains(id));
        }
        assert!(!list.contains(EntityId(2)));
        assert!(!list.contains(EntityId(5000)));
        // Tiny lists cost a few bytes per id, not 8.
        assert!(
            list.heap_bytes() < sample.len() * std::mem::size_of::<EntityId>(),
            "tiny heap {} vs plain {}",
            list.heap_bytes(),
            sample.len() * 8
        );
        for &id in &sample {
            assert!(list.remove(id));
            assert!(!list.remove(id), "double remove is a no-op");
        }
        assert!(list.is_empty());
        assert_eq!(list.block_count(), 0);
    }

    #[test]
    fn wire_roundtrip_preserves_every_tier() {
        // Tiny, sparse-only, mixed sparse+dense, and empty lists all
        // survive write_bytes → read_bytes byte-identically.
        let shapes: Vec<Vec<EntityId>> = vec![
            ids([]),
            ids([7]),
            ids([0, 1, 63, 64, 4095, 4096, 40_000, 1 << 40]),
            ids((0u64..600).map(|i| i * 97)), // sparse blocks
            ids(0u64..3000),                  // one dense block
            ids((0u64..5000).filter(|i| i % 3 != 0)), // mixed containers
        ];
        let mut buf = Vec::new();
        for sample in &shapes {
            let list = BlockPostings::from_sorted(sample);
            buf.clear();
            list.write_bytes(&mut buf);
            let mut at = 0usize;
            let back = BlockPostings::read_bytes(&buf, &mut at).unwrap();
            assert_eq!(at, buf.len(), "decode consumes the full payload");
            assert_eq!(back.to_vec(), *sample);
            assert_eq!(back.len(), list.len());
            assert_eq!(back.block_count(), list.block_count());
            assert_eq!(back.dense_block_count(), list.dense_block_count());
            assert_eq!(back.stamp(), 0, "stamps are process-local");
            // Mutations still work on a restored list.
            let mut back = back;
            back.insert(EntityId(123_456_789));
            assert!(back.contains(EntityId(123_456_789)));
        }
        // Several lists concatenated in one buffer decode in sequence.
        buf.clear();
        for sample in &shapes {
            BlockPostings::from_sorted(sample).write_bytes(&mut buf);
        }
        let mut at = 0usize;
        for sample in &shapes {
            let back = BlockPostings::read_bytes(&buf, &mut at).unwrap();
            assert_eq!(back.to_vec(), *sample);
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn wire_decode_rejects_corruption() {
        let list = BlockPostings::from_sorted(&ids(0u64..3000));
        let mut buf = Vec::new();
        list.write_bytes(&mut buf);
        // Truncation at any prefix must error, never panic.
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            let mut at = 0usize;
            assert!(
                BlockPostings::read_bytes(&buf[..cut], &mut at).is_err(),
                "truncated at {cut}"
            );
        }
        // A flipped byte in the container area is caught by the meta
        // cross-checks (cardinality / bounds).
        let mut bad = buf.clone();
        let at_payload = bad.len() - 10;
        bad[at_payload] ^= 0xff;
        let mut at = 0usize;
        assert!(BlockPostings::read_bytes(&bad, &mut at).is_err());
        // An unknown representation tag errors.
        let mut at = 0usize;
        assert!(BlockPostings::read_bytes(&[9], &mut at).is_err());
    }

    #[test]
    fn out_of_order_tiny_inserts_re_encode() {
        let mut list = BlockPostings::new();
        for id in ids([500, 3, 90_000, 41, 4_096]) {
            assert!(list.insert(id));
        }
        assert_eq!(list.to_vec(), ids([3, 41, 500, 4_096, 90_000]));
        assert!(list.remove(EntityId(500)));
        assert_eq!(list.to_vec(), ids([3, 41, 4_096, 90_000]));
        assert_eq!(list.last(), Some(EntityId(90_000)));
        assert!(list.remove(EntityId(90_000)));
        assert_eq!(list.last(), Some(EntityId(4_096)));
    }

    #[test]
    fn tiny_to_blocks_split_and_merge_are_hysteretic() {
        let mut list = BlockPostings::new();
        let sample = ids((0..=(TINY_MAX as u64)).map(|i| i * 1000));
        for &id in &sample {
            list.insert(id);
        }
        assert!(!list.is_tiny(), "split past TINY_MAX");
        assert_eq!(list.to_vec(), sample);
        // Shrinking toward TINY_MIN keeps the blocked form…
        for &id in &sample[TINY_MIN..] {
            list.remove(id);
        }
        assert!(!list.is_tiny(), "hysteresis: still blocked at TINY_MIN");
        // …one more removal merges back to tiny.
        assert!(list.remove(sample[0]));
        assert!(list.is_tiny(), "merged below TINY_MIN");
        assert_eq!(list.to_vec(), sample[1..TINY_MIN].to_vec());
    }

    #[test]
    fn dense_promotion_and_demotion_are_hysteretic() {
        let mut list = BlockPostings::new();
        // Fill one block past the promote threshold.
        for i in 0..=(SPARSE_MAX as u64) {
            list.insert(EntityId(i * 2)); // 2·512 < 4096: one block
        }
        assert_eq!(list.block_count(), 1);
        assert_eq!(list.dense_block_count(), 1, "promoted past SPARSE_MAX");
        let expected: Vec<EntityId> = ids((0..=(SPARSE_MAX as u64)).map(|i| i * 2));
        assert_eq!(list.to_vec(), expected);
        // Removing back below SPARSE_MAX but above DENSE_MIN stays dense.
        for i in (DENSE_MIN as u64 + 1)..=(SPARSE_MAX as u64) {
            assert!(list.remove(EntityId(i * 2)));
        }
        assert_eq!(list.dense_block_count(), 1, "hysteresis: still dense");
        // Exactly DENSE_MIN members is still dense; one below demotes.
        assert!(list.remove(EntityId(0)));
        assert_eq!(list.dense_block_count(), 1, "at DENSE_MIN: still dense");
        assert!(list.remove(EntityId(2)));
        assert_eq!(list.dense_block_count(), 0, "demoted below DENSE_MIN");
        let expected: Vec<EntityId> = ids((2..=(DENSE_MIN as u64)).map(|i| i * 2));
        assert_eq!(list.to_vec(), expected);
    }

    #[test]
    fn from_sorted_matches_incremental_build() {
        let sample: Vec<EntityId> = ids((0..10_000).filter(|i| i % 3 != 0));
        let bulk = BlockPostings::from_sorted(&sample);
        let mut incremental = BlockPostings::new();
        for &id in &sample {
            incremental.insert(id);
        }
        assert_eq!(bulk.to_vec(), sample);
        assert_eq!(incremental.to_vec(), sample);
        assert_eq!(bulk.len(), incremental.len());
        assert_eq!(bulk, incremental, "content equality across build paths");
    }

    #[test]
    fn min_max_directory_tracks_removals() {
        let n = (TINY_MAX + 44) as u64; // blocked: past the tiny tier
        let sample = ids((0..n).map(|i| i * 10));
        let mut list = BlockPostings::from_sorted(&sample);
        assert!(!list.is_tiny());
        list.remove(EntityId(0));
        assert_eq!(list.first(), Some(EntityId(10)));
        list.remove(EntityId((n - 1) * 10));
        assert_eq!(list.last(), Some(EntityId((n - 2) * 10)));
    }

    #[test]
    fn intersect_views_matches_naive() {
        let a = BlockPostings::from_sorted(&ids((0..30_000).step_by(3)));
        let b = BlockPostings::from_sorted(&ids((0..30_000).step_by(5)));
        let c = BlockPostings::from_sorted(&ids(0..30_000)); // dense blocks
        let got = intersect_views(&[a.as_view(), b.as_view(), c.as_view()]);
        let expected: Vec<EntityId> = ids((0..30_000).filter(|i| i % 15 == 0));
        assert_eq!(got, expected);
        // Empty and singleton cases.
        assert!(intersect_views(&[]).is_empty());
        assert!(intersect_views(&[a.as_view(), PostingsView::empty()]).is_empty());
        assert_eq!(intersect_views(&[a.as_view()]), a.to_vec());
    }

    #[test]
    fn intersections_with_tiny_lists_candidate_test() {
        let tiny = BlockPostings::from_sorted(&ids([5, 4_000, 4_096, 29_999]));
        let evens: Vec<EntityId> = ids((0..30_000).step_by(2));
        let big = BlockPostings::from_sorted(&evens);
        assert!(tiny.is_tiny());
        let got = intersect_views(&[tiny.as_view(), big.as_view()]);
        assert_eq!(got, ids([4_000, 4_096]));
        let got = intersect_views(&[big.as_view(), tiny.as_view()]);
        assert_eq!(got, ids([4_000, 4_096]));
    }

    #[test]
    fn dense_by_dense_intersection_uses_bitmap_blocks() {
        let a = BlockPostings::from_sorted(&ids((0..20_000).filter(|i| i % 2 == 0)));
        let b = BlockPostings::from_sorted(&ids((0..20_000).filter(|i| i % 3 == 0)));
        assert!(a.dense_block_count() > 0);
        assert!(b.dense_block_count() > 0);
        let got = intersect_views(&[a.as_view(), b.as_view()]);
        let expected: Vec<EntityId> = ids((0..20_000).filter(|i| i % 6 == 0));
        assert_eq!(got, expected);
    }

    #[test]
    fn disjoint_blocks_short_circuit() {
        let a = BlockPostings::from_sorted(&ids(0..100));
        let b = BlockPostings::from_sorted(&ids(1_000_000..1_000_100));
        assert!(intersect_views(&[a.as_view(), b.as_view()]).is_empty());
        // Same block, disjoint offset ranges: directory min/max rejects.
        let c = BlockPostings::from_sorted(&ids(0..100));
        let d = BlockPostings::from_sorted(&ids(200..300));
        assert!(intersect_views(&[c.as_view(), d.as_view()]).is_empty());
    }

    #[test]
    fn union_views_merges_disjoint_shards() {
        let shard0 = BlockPostings::from_sorted(&ids((0..10_000).filter(|i| i % 2 == 0)));
        let shard1 = BlockPostings::from_sorted(&ids((0..10_000).filter(|i| i % 2 == 1)));
        let merged = union_views(&[shard0.as_view(), shard1.as_view()]);
        assert_eq!(merged.to_vec(), ids(0..10_000));
        assert_eq!(merged.len(), 10_000);
        // Overlapping inputs dedup.
        let overlap = union_views(&[shard0.as_view(), shard0.as_view()]);
        assert_eq!(overlap.to_vec(), shard0.to_vec());
        // Tiny inputs fold in; tiny unions normalize back to tiny.
        let tiny_a = BlockPostings::from_sorted(&ids([1, 3]));
        let tiny_b = BlockPostings::from_sorted(&ids([2, 9_999_999]));
        let tiny = union_views(&[tiny_a.as_view(), tiny_b.as_view()]);
        assert!(tiny.is_tiny());
        assert_eq!(tiny.to_vec(), ids([1, 2, 3, 9_999_999]));
        let mixed = union_views(&[shard0.as_view(), tiny_a.as_view()]);
        assert_eq!(mixed.len(), 5_002, "5000 evens + ids 1 and 3");
        assert!(mixed.contains(EntityId(3)));
    }

    #[test]
    fn compressed_footprint_beats_plain_vec() {
        // Dense sequential list: bitmap blocks, ~64x.
        let dense: Vec<EntityId> = ids(0..100_000);
        let list = BlockPostings::from_sorted(&dense);
        let plain_bytes = dense.len() * std::mem::size_of::<EntityId>();
        assert!(
            list.heap_bytes() * 3 <= plain_bytes,
            "compressed {} vs plain {plain_bytes}",
            list.heap_bytes()
        );
        // Tiny clustered list: varint runs, ~3x.
        let tiny = ids([50_001, 50_007, 50_020, 50_031]);
        let list = BlockPostings::from_sorted(&tiny);
        let plain_bytes = tiny.len() * std::mem::size_of::<EntityId>();
        assert!(
            list.heap_bytes() * 3 <= plain_bytes,
            "tiny compressed {} vs plain {plain_bytes}",
            list.heap_bytes()
        );
    }

    #[test]
    fn cursor_snapshots_compare_and_roundtrip() {
        let sample = ids([1, 5, 9000, 123_456]);
        let cursor = PostingsCursor::from_sorted(sample.clone());
        assert_eq!(cursor, sample);
        assert_eq!(cursor.len(), 4);
        assert!(cursor.contains(EntityId(9000)));
        assert!(!cursor.contains(EntityId(2)));
        assert_eq!(cursor.as_view().to_vec(), sample);
        assert_eq!(PostingsCursor::empty().len(), 0);
    }

    #[test]
    fn view_equality_is_by_content() {
        let a = BlockPostings::from_sorted(&ids([1, 2, 3]));
        let mut b = BlockPostings::new();
        for id in ids([3, 2, 1]) {
            // insertion order must not matter
            b.insert(id);
        }
        assert_eq!(a.as_view(), b.as_view());
        assert_eq!(a.as_view(), &[EntityId(1), EntityId(2), EntityId(3)]);
        // Tiny and blocked lists with equal content compare equal.
        let long = ids(0..=(TINY_MAX as u64));
        let mut blocked = BlockPostings::from_sorted(&long);
        assert!(!blocked.is_tiny());
        // Trim the blocked list down to tiny *content* without triggering
        // the merge (stay above TINY_MIN), then compare against a
        // from_sorted tiny... the merge threshold makes that impossible,
        // so compare two equal-content blocked/tiny pairs directly.
        blocked.remove(EntityId(TINY_MAX as u64));
        let same = BlockPostings::from_sorted(&ids(0..(TINY_MAX as u64)));
        assert!(same.is_tiny());
        assert_eq!(blocked, same, "cross-representation content equality");
    }
}
