//! Commit-equivalence property tests (seeded, deterministic).
//!
//! The invariant the `GraphWrite` redesign rests on: **any interleaving of
//! staged ops committed through [`WriteBatch`]es is indistinguishable from
//! the same ops applied through the crate-internal direct mutators** — the
//! records, the `same_as` link table, the index (every probe family), the
//! generation counter, and the emitted wire deltas all agree. The direct
//! mutators are the reference semantics; the staged shadow path must never
//! drift from them.

use crate::index::{flatten, name_tokens};
use crate::{
    intern, Delta, EntityId, ExtendedTriple, FactMeta, FxHashSet, GraphWrite, KnowledgeGraph,
    RelId, SourceId, Symbol, Value, WriteBatch, WriteOp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PREDICATES: [&str; 6] = ["name", "alias", "type", "knows", "founded", "score"];
const TYPES: [&str; 3] = ["person", "song", "city"];
const NAMES: [&str; 4] = ["Ada Lovelace", "Grace Hopper", "Hedy Lamarr", "A-1 B2"];

/// A write op in replayable description form: applicable both through the
/// direct mutators and as a staged [`WriteOp`].
#[derive(Clone, Debug)]
enum SimOp {
    Upsert(ExtendedTriple),
    Link(SourceId, String, EntityId),
    RetractSource(SourceId),
    RetractSourceEntity(SourceId, String),
    Overwrite(SourceId, Vec<ExtendedTriple>),
    /// Deterministic record edit: drop the triple at an index (if any).
    MutateDrop(EntityId, usize),
}

fn volatile_set() -> FxHashSet<Symbol> {
    let mut set = FxHashSet::default();
    set.insert(intern("score"));
    set
}

fn random_triple(rng: &mut StdRng, subject: EntityId) -> ExtendedTriple {
    let meta = FactMeta::from_source(SourceId(rng.gen_range(1..4)), 0.9);
    let pred = intern(PREDICATES[rng.gen_range(0..PREDICATES.len())]);
    let object = if pred == intern("type") {
        Value::str(TYPES[rng.gen_range(0..TYPES.len())])
    } else if pred == intern("name") || pred == intern("alias") {
        Value::str(NAMES[rng.gen_range(0..NAMES.len())])
    } else {
        match rng.gen_range(0..5) {
            0 => Value::Int(rng.gen_range(-5..40)),
            1 => Value::Entity(EntityId(rng.gen_range(1..12))),
            2 => Value::Bool(rng.gen_bool(0.5)),
            3 => Value::Null,
            _ => Value::str(NAMES[rng.gen_range(0..NAMES.len())]),
        }
    };
    if rng.gen_bool(0.2) {
        ExtendedTriple::composite(
            subject,
            pred,
            RelId(rng.gen_range(1..3)),
            intern("facet"),
            object,
            meta,
        )
    } else {
        ExtendedTriple::simple(subject, pred, object, meta)
    }
}

fn random_sim_op(rng: &mut StdRng) -> SimOp {
    match rng.gen_range(0..12) {
        0..=5 => {
            let subject = EntityId(rng.gen_range(1..12));
            SimOp::Upsert(random_triple(rng, subject))
        }
        6 => {
            let id = rng.gen_range(1..12u64);
            SimOp::Link(SourceId(1), format!("e{id}"), EntityId(id))
        }
        7 => SimOp::RetractSource(SourceId(rng.gen_range(1..4))),
        8 => SimOp::RetractSourceEntity(SourceId(1), format!("e{}", rng.gen_range(1..12))),
        9 => {
            let fresh: Vec<ExtendedTriple> = (0..rng.gen_range(0..4))
                .map(|_| {
                    ExtendedTriple::simple(
                        EntityId(rng.gen_range(1..12)),
                        intern("score"),
                        Value::Int(rng.gen_range(0..100)),
                        FactMeta::from_source(SourceId(2), 0.8),
                    )
                })
                .collect();
            SimOp::Overwrite(SourceId(2), fresh)
        }
        _ => SimOp::MutateDrop(EntityId(rng.gen_range(1..12)), rng.gen_range(0..5)),
    }
}

/// Reference semantics: the crate-internal direct mutators.
fn apply_direct(kg: &mut KnowledgeGraph, op: &SimOp) {
    match op {
        SimOp::Upsert(t) => {
            kg.upsert_fact(t.clone());
        }
        SimOp::Link(source, local, id) => kg.record_link(*source, local, *id),
        SimOp::RetractSource(source) => {
            kg.retract_source(*source);
        }
        SimOp::RetractSourceEntity(source, local) => {
            kg.retract_source_entity(*source, local);
        }
        SimOp::Overwrite(source, fresh) => {
            kg.overwrite_volatile_partition(*source, &volatile_set(), fresh.clone());
        }
        SimOp::MutateDrop(id, at) => {
            let at = *at;
            kg.mutate_entity(*id, |rec| {
                if at < rec.triples.len() {
                    rec.triples.remove(at);
                }
            });
        }
    }
}

fn as_write_op(op: &SimOp) -> WriteOp {
    match op.clone() {
        SimOp::Upsert(t) => WriteOp::Upsert(t),
        SimOp::Link(source, local_id, entity) => WriteOp::Link {
            source,
            local_id,
            entity,
        },
        SimOp::RetractSource(source) => WriteOp::RetractSource(source),
        SimOp::RetractSourceEntity(source, local_id) => {
            WriteOp::RetractSourceEntity { source, local_id }
        }
        SimOp::Overwrite(source, fresh) => WriteOp::OverwriteVolatile {
            source,
            volatile: volatile_set(),
            fresh,
        },
        SimOp::MutateDrop(entity, at) => WriteOp::Mutate {
            entity,
            edit: Box::new(move |rec| {
                if at < rec.triples.len() {
                    rec.triples.remove(at);
                }
            }),
        },
    }
}

fn assert_same_graph(direct: &KnowledgeGraph, batched: &KnowledgeGraph, label: &str) {
    // Records: same entities, same triples in the same order.
    let mut ids: Vec<EntityId> = direct.entity_ids().chain(batched.entity_ids()).collect();
    ids.sort_unstable();
    ids.dedup();
    for id in &ids {
        assert_eq!(
            direct.entity(*id).map(|r| &r.triples),
            batched.entity(*id).map(|r| &r.triples),
            "{label}: record mismatch for {id}"
        );
    }
    // Link table.
    for src in 1..4u32 {
        let mut a = direct.links_for_source(SourceId(src));
        let mut b = batched.links_for_source(SourceId(src));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{label}: links mismatch for source {src}");
    }
    // Index: SPO rows, reverse edges, name tokens, fact totals.
    assert_eq!(
        direct.index().fact_count(),
        batched.index().fact_count(),
        "{label}: fact counts"
    );
    for id in &ids {
        let mut a: Vec<(Symbol, Value)> = direct
            .index()
            .facts_of(*id)
            .map(|(p, v)| (p, v.clone()))
            .collect();
        let mut b: Vec<(Symbol, Value)> = batched
            .index()
            .facts_of(*id)
            .map(|(p, v)| (p, v.clone()))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{label}: SPO mismatch for {id}");
        assert_eq!(
            direct.index().referencing(*id),
            batched.index().referencing(*id),
            "{label}: OSP mismatch for {id}"
        );
    }
    for name in NAMES {
        for token in name_tokens(name) {
            assert_eq!(
                direct.index().by_name(&token),
                batched.index().by_name(&token),
                "{label}: token posting {token:?}"
            );
        }
    }
    // Plan-cache signal.
    assert_eq!(
        direct.generation(),
        batched.generation(),
        "{label}: generation"
    );
}

#[test]
fn batched_commits_equal_direct_mutators() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xBA7C4 ^ seed);
        let ops: Vec<SimOp> = (0..100).map(|_| random_sim_op(&mut rng)).collect();

        // Reference: direct mutators, one at a time.
        let mut direct = KnowledgeGraph::new();
        for op in &ops {
            apply_direct(&mut direct, op);
        }

        // Candidate: the same ops staged into randomly-sized batches and
        // committed through the one `GraphWrite` commit point.
        let mut batched = KnowledgeGraph::new();
        let mut receipt_deltas: Vec<Delta> = Vec::new();
        let mut i = 0;
        while i < ops.len() {
            let span = rng.gen_range(1..=8usize).min(ops.len() - i);
            let mut batch = WriteBatch::new();
            for op in &ops[i..i + span] {
                batch.push(as_write_op(op));
            }
            let receipt = batched.commit(batch);
            assert_eq!(receipt.outcomes.len(), span, "one outcome per op");
            receipt_deltas.extend(receipt.deltas);
            i += span;
        }

        assert_same_graph(&direct, &batched, &format!("seed {seed}"));

        // The receipt's delta feed — the only delta channel since the
        // changelog retirement — replays into the reference index.
        let mut replayed = crate::TripleIndex::new();
        for delta in &receipt_deltas {
            replayed.apply(delta);
        }
        assert_eq!(
            replayed.fact_count(),
            direct.index().fact_count(),
            "seed {seed}: receipt replay"
        );
        for id in (1..12).map(EntityId) {
            let mut a: Vec<(Symbol, Value)> =
                replayed.facts_of(id).map(|(p, v)| (p, v.clone())).collect();
            let mut b: Vec<(Symbol, Value)> = direct
                .index()
                .facts_of(id)
                .map(|(p, v)| (p, v.clone()))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "seed {seed}: replayed SPO for {id}");
        }
    }
}

#[test]
fn one_giant_batch_equals_per_op_commits() {
    // The atomicity-boundary check: committing everything at once equals
    // committing op-by-op (staged read-your-writes must be exact).
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x0A70 ^ seed);
        let ops: Vec<SimOp> = (0..80).map(|_| random_sim_op(&mut rng)).collect();

        let mut one = KnowledgeGraph::new();
        let mut giant = WriteBatch::new();
        for op in &ops {
            giant.push(as_write_op(op));
        }
        let receipt = one.commit(giant);
        assert_eq!(receipt.outcomes.len(), ops.len());

        let mut many = KnowledgeGraph::new();
        for op in &ops {
            let mut batch = WriteBatch::new();
            batch.push(as_write_op(op));
            many.commit(batch);
        }

        assert_same_graph(&many, &one, &format!("seed {seed} giant-vs-per-op"));
    }
}

// Keep the flatten import exercised even if predicates shift: the wire
// vocabulary of this test must match the index's.
#[test]
fn sim_triples_flatten_like_the_index() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let t = random_triple(&mut rng, EntityId(1));
        if let Some((pred, _)) = flatten(&t) {
            if t.rel.is_some() {
                assert!(pred.to_string().contains('.'), "facet flattening");
            }
        }
    }
}
