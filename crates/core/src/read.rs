//! `GraphRead` — the backend-agnostic serving API.
//!
//! The paper serves queries against a *live* graph overlaid on the *stable*
//! KG so fresh facts are visible without waiting for batch construction
//! (§4.1). Both layers maintain the same [`ProbeKey`] posting vocabulary in
//! a [`TripleIndex`](crate::TripleIndex); this module captures that shared
//! vocabulary as a trait so one KGQ engine can execute unchanged against
//! any backend:
//!
//! * the stable [`KnowledgeGraph`] (single [`TripleIndex`](crate::TripleIndex), zero-copy
//!   galloping intersection),
//! * the sharded live store (`saga_live::LiveKg`, lock-striped indexes with
//!   parallel per-shard probes),
//! * [`OverlayRead`] — live-over-stable federation with tombstone
//!   semantics: live upserts win over stable facts, live retractions
//!   (tombstones) shadow them entirely.
//!
//! The trait is deliberately small — posting retrieval, membership tests,
//! selectivity for plan ordering, name resolution, point record reads, and
//! a [`generation`](GraphRead::generation) counter that query engines use
//! to invalidate compiled plans whose resolved state (e.g. edge targets)
//! may have gone stale.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::index::intersect_sorted;
use crate::postings::{intersect_views, PostingsCursor, PostingsView};
use crate::{EntityId, EntityRecord, FxHashSet, KnowledgeGraph, ProbeKey};

/// Uniform read access to a served knowledge graph.
///
/// Implementations must keep posting lists **sorted and deduplicated** —
/// the intersection and overlay-merge paths rely on it. All methods take
/// `&self`: serving backends are concurrently readable by construction.
///
/// Postings are served as [`PostingsCursor`]s: owned snapshots of the
/// block-compressed lists (see [`crate::postings`]), cheap to carry out of
/// a lock and intersectable without decompression.
/// [`postings`](GraphRead::postings) is the materializing convenience on
/// top.
pub trait GraphRead {
    /// Snapshot one probe's posting list in compressed block form — the
    /// primary postings entry point. Implementations clone compressed
    /// blocks (or build them from a merged layer view); they never
    /// materialize a full `Vec<EntityId>` unless merging forces it.
    fn postings_cursor(&self, probe: &ProbeKey) -> PostingsCursor;

    /// The sorted posting list of one probe, materialized. Prefer
    /// [`postings_cursor`](Self::postings_cursor) on hot paths — this is
    /// the decompression boundary.
    fn postings(&self, probe: &ProbeKey) -> Vec<EntityId> {
        self.postings_cursor(probe).to_vec()
    }

    /// Posting-list length of a probe — the plan-ordering signal. May be an
    /// upper-bound estimate (the overlay reports the sum of its layers),
    /// but must be zero only when the posting is certainly empty.
    fn selectivity(&self, probe: &ProbeKey) -> usize {
        self.postings_cursor(probe).len()
    }

    /// True if `id` is in the probe's posting list. Backends with
    /// in-memory postings should override with a direct block probe
    /// instead of snapshotting the list.
    fn probe_contains(&self, probe: &ProbeKey, id: EntityId) -> bool {
        self.postings_cursor(probe).contains(id)
    }

    /// Fingerprint of one probe's posting list, for plan caches: equal
    /// fingerprints mean the posting (and any name resolution derived
    /// from it) is unchanged. The default is the backend's global
    /// [`generation`](Self::generation) — always safe, maximally
    /// conservative. Backends with per-list mutation stamps override so
    /// unrelated writes stop invalidating hot plans.
    fn probe_fingerprint(&self, probe: &ProbeKey) -> u64 {
        let _ = probe;
        self.generation()
    }

    /// Batch form of [`probe_fingerprint`](Self::probe_fingerprint) —
    /// plan caches revalidate every dependency of a cached plan in one
    /// call, so lock-striped backends can take each shard lock once for
    /// the whole set instead of once per probe.
    fn probe_fingerprints(&self, probes: &[&ProbeKey]) -> Vec<u64> {
        probes.iter().map(|p| self.probe_fingerprint(p)).collect()
    }

    /// Entities whose name/alias matches `name` as a full (lowercased)
    /// phrase — the shared name-resolution path of every backend.
    fn resolve_name(&self, name: &str) -> Vec<EntityId> {
        self.postings(&ProbeKey::Name(name.to_lowercase()))
    }

    /// Point read of one entity record (serving reads are snapshot-style:
    /// the record is cloned out of the store).
    fn record(&self, id: EntityId) -> Option<EntityRecord>;

    /// True if the entity is visible to this backend.
    fn contains(&self, id: EntityId) -> bool {
        self.record(id).is_some()
    }

    /// Monotone counter bumped on every mutation that can change what any
    /// read returns. Query engines compare it against the generation a
    /// cached plan was compiled at and recompile on mismatch (compile-time
    /// resolved edge targets and selectivity orderings go stale).
    fn generation(&self) -> u64;

    /// Conjunction of probes. Selectivity planning is part of this
    /// method's contract — implementations must drive the evaluation from
    /// the cheapest posting and short-circuit when any probe is certainly
    /// empty, so executors never need a separate selectivity pass. The
    /// default snapshots every probe's compressed cursor and intersects
    /// **in the compressed domain** ([`intersect_views`]): the block
    /// directories are galloped, dense×dense blocks combine with bitmap
    /// `AND`s, and an empty cursor short-circuits before any block is
    /// decoded. Backends with borrowed (zero-copy) postings override to
    /// skip the snapshot; layered backends may instead drive candidates
    /// through [`probe_contains`](Self::probe_contains).
    fn probe_all(&self, probes: &[ProbeKey]) -> Vec<EntityId> {
        if probes.is_empty() {
            return Vec::new();
        }
        let mut cursors: Vec<PostingsCursor> = Vec::with_capacity(probes.len());
        for probe in probes {
            let cursor = self.postings_cursor(probe);
            if cursor.is_empty() {
                return Vec::new();
            }
            cursors.push(cursor);
        }
        let views: Vec<PostingsView> = cursors.iter().map(PostingsCursor::as_view).collect();
        intersect_views(&views)
    }
}

impl<T: GraphRead + ?Sized> GraphRead for &T {
    fn postings_cursor(&self, probe: &ProbeKey) -> PostingsCursor {
        (**self).postings_cursor(probe)
    }
    fn postings(&self, probe: &ProbeKey) -> Vec<EntityId> {
        (**self).postings(probe)
    }
    fn selectivity(&self, probe: &ProbeKey) -> usize {
        (**self).selectivity(probe)
    }
    fn probe_contains(&self, probe: &ProbeKey, id: EntityId) -> bool {
        (**self).probe_contains(probe, id)
    }
    fn probe_fingerprint(&self, probe: &ProbeKey) -> u64 {
        (**self).probe_fingerprint(probe)
    }
    fn probe_fingerprints(&self, probes: &[&ProbeKey]) -> Vec<u64> {
        (**self).probe_fingerprints(probes)
    }
    fn resolve_name(&self, name: &str) -> Vec<EntityId> {
        (**self).resolve_name(name)
    }
    fn record(&self, id: EntityId) -> Option<EntityRecord> {
        (**self).record(id)
    }
    fn contains(&self, id: EntityId) -> bool {
        (**self).contains(id)
    }
    fn generation(&self) -> u64 {
        (**self).generation()
    }
    fn probe_all(&self, probes: &[ProbeKey]) -> Vec<EntityId> {
        (**self).probe_all(probes)
    }
}

impl<T: GraphRead + ?Sized> GraphRead for std::sync::Arc<T> {
    fn postings_cursor(&self, probe: &ProbeKey) -> PostingsCursor {
        (**self).postings_cursor(probe)
    }
    fn postings(&self, probe: &ProbeKey) -> Vec<EntityId> {
        (**self).postings(probe)
    }
    fn selectivity(&self, probe: &ProbeKey) -> usize {
        (**self).selectivity(probe)
    }
    fn probe_contains(&self, probe: &ProbeKey, id: EntityId) -> bool {
        (**self).probe_contains(probe, id)
    }
    fn probe_fingerprint(&self, probe: &ProbeKey) -> u64 {
        (**self).probe_fingerprint(probe)
    }
    fn probe_fingerprints(&self, probes: &[&ProbeKey]) -> Vec<u64> {
        (**self).probe_fingerprints(probes)
    }
    fn resolve_name(&self, name: &str) -> Vec<EntityId> {
        (**self).resolve_name(name)
    }
    fn record(&self, id: EntityId) -> Option<EntityRecord> {
        (**self).record(id)
    }
    fn contains(&self, id: EntityId) -> bool {
        (**self).contains(id)
    }
    fn generation(&self) -> u64 {
        (**self).generation()
    }
    fn probe_all(&self, probes: &[ProbeKey]) -> Vec<EntityId> {
        (**self).probe_all(probes)
    }
}

/// The stable KG serves directly from its unified
/// [`TripleIndex`](crate::TripleIndex) — zero-copy borrowed views,
/// compressed-domain intersection, per-list fingerprints.
impl GraphRead for KnowledgeGraph {
    fn postings_cursor(&self, probe: &ProbeKey) -> PostingsCursor {
        self.index().postings(probe).to_cursor()
    }

    fn postings(&self, probe: &ProbeKey) -> Vec<EntityId> {
        self.index().postings(probe).to_vec()
    }

    fn selectivity(&self, probe: &ProbeKey) -> usize {
        self.index().selectivity(probe)
    }

    fn probe_contains(&self, probe: &ProbeKey, id: EntityId) -> bool {
        self.index().postings(probe).contains(id)
    }

    fn probe_fingerprint(&self, probe: &ProbeKey) -> u64 {
        self.index().probe_fingerprint(probe)
    }

    fn record(&self, id: EntityId) -> Option<EntityRecord> {
        self.entity(id).cloned()
    }

    fn contains(&self, id: EntityId) -> bool {
        KnowledgeGraph::contains(self, id)
    }

    fn generation(&self) -> u64 {
        KnowledgeGraph::generation(self)
    }

    fn probe_all(&self, probes: &[ProbeKey]) -> Vec<EntityId> {
        // Zero-copy: intersect borrowed compressed views in place.
        self.index().probe_all(probes)
    }
}

/// Live-over-stable federation with tombstone semantics (§4.1: "the live
/// KG is the union of a view of the stable graph with real-time live
/// sources").
///
/// The effective record of an entity is decided per *entity*, not per
/// fact:
///
/// * present in the live layer → the live record wins entirely (its stable
///   facts are shadowed, even ones the live record no longer asserts);
/// * tombstoned → invisible (a live retraction shadows the stable fact
///   set);
/// * otherwise → the stable record.
///
/// Upserting an entity into the live layer after tombstoning it resurrects
/// it with the live facts — tombstones only ever shadow the stable layer.
pub struct OverlayRead<L, S> {
    live: L,
    stable: S,
    tombstones: RwLock<FxHashSet<EntityId>>,
    tombstone_gen: AtomicU64,
}

impl<L: GraphRead, S: GraphRead> OverlayRead<L, S> {
    /// An overlay of `live` over `stable` with no tombstones.
    pub fn new(live: L, stable: S) -> Self {
        OverlayRead {
            live,
            stable,
            tombstones: RwLock::new(FxHashSet::default()),
            tombstone_gen: AtomicU64::new(0),
        }
    }

    /// The live (winning) layer.
    pub fn live(&self) -> &L {
        &self.live
    }

    /// The stable (shadowed) layer.
    pub fn stable(&self) -> &S {
        &self.stable
    }

    /// Retract `id` from serving: the stable record (if any) is shadowed.
    /// Returns `false` if the tombstone was already set.
    pub fn tombstone(&self, id: EntityId) -> bool {
        let fresh = self.tombstones.write().insert(id);
        if fresh {
            self.tombstone_gen.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Remove a tombstone, making the stable record visible again.
    pub fn resurrect(&self, id: EntityId) -> bool {
        let removed = self.tombstones.write().remove(&id);
        if removed {
            self.tombstone_gen.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// True if `id` carries a tombstone (regardless of live presence).
    pub fn is_tombstoned(&self, id: EntityId) -> bool {
        self.tombstones.read().contains(&id)
    }

    /// Number of tombstones currently set.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.read().len()
    }

    /// Drop tombstones made redundant by stable-side retractions: a
    /// tombstone only shadows a *stable* record, so once the stable layer
    /// no longer asserts the entity the tombstone is dead weight.
    ///
    /// `stable_removed` is the set of entities a stable-side commit
    /// dropped — take it straight from
    /// [`CommitReceipt::entities_removed`](crate::CommitReceipt); each id
    /// is re-checked against the stable layer before pruning, so a stale
    /// signal can never unshadow a live record. Returns the number of
    /// tombstones pruned. The retention loop for the ROADMAP's unbounded
    /// tombstone set: wire every `LoggedWriter` commit's receipt through
    /// here and the set shrinks as construction compacts retractions in.
    pub fn prune_tombstones(&self, stable_removed: &[EntityId]) -> usize {
        let mut pruned = 0;
        let mut tombstones = self.tombstones.write();
        for id in stable_removed {
            if !self.stable.contains(*id) && tombstones.remove(id) {
                // No generation bump: the entity was invisible before
                // (tombstoned) and stays invisible (gone from stable), so
                // no cached plan's answers change.
                pruned += 1;
            }
        }
        pruned
    }
}

impl<L: GraphRead, S: GraphRead> GraphRead for OverlayRead<L, S> {
    /// The overlay's effective posting only exists merged: build the
    /// cursor from the shadow-filtered union. The fingerprint (the
    /// per-probe shadow-set stamp of
    /// [`probe_fingerprint`](Self::probe_fingerprint)) is sampled *before*
    /// the merge, so a concurrent write makes the cursor look stale rather
    /// than fresh.
    fn postings_cursor(&self, probe: &ProbeKey) -> PostingsCursor {
        let fingerprint = self.probe_fingerprint(probe);
        let mut list = crate::postings::BlockPostings::from_sorted(&self.postings(probe));
        list.set_stamp(fingerprint);
        PostingsCursor::from_list(list)
    }

    fn postings(&self, probe: &ProbeKey) -> Vec<EntityId> {
        // Shadow-filter the stable postings *before* fetching the live
        // list: the two layers lock independently, so an entity upserted
        // into the live layer mid-read is then guaranteed to appear in at
        // least one of the two lists (the dedup below collapses both).
        // Live retractions go through tombstones (one lock, no window);
        // only a direct live-layer removal can still transiently hide a
        // stable entity from one probe.
        let stable = self.stable.postings(probe);
        let mut out: Vec<EntityId> = if stable.is_empty() {
            Vec::new()
        } else {
            let tombstones = self.tombstones.read();
            stable
                .into_iter()
                .filter(|id| !tombstones.contains(id) && !self.live.contains(*id))
                .collect()
        };
        out.extend(self.live.postings(probe));
        out.sort_unstable();
        out.dedup();
        out
    }

    fn selectivity(&self, probe: &ProbeKey) -> usize {
        // Upper-bound estimate: cheap, and only zero when both layers are
        // certainly empty — exactly what plan ordering needs.
        self.live.selectivity(probe) + self.stable.selectivity(probe)
    }

    fn probe_contains(&self, probe: &ProbeKey, id: EntityId) -> bool {
        if self.live.contains(id) {
            self.live.probe_contains(probe, id)
        } else {
            !self.is_tombstoned(id) && self.stable.probe_contains(probe, id)
        }
    }

    /// Per-probe stamp instead of the coarse generation sum. The merged
    /// overlay posting is `(stable \ shadowed) ∪ live`, so it changes only
    /// when (a) the live list changes, (b) the stable list changes, or
    /// (c) the *shadow set restricted to this posting* changes — a live
    /// upsert or tombstone can shadow a stable posting member without
    /// touching the equally-keyed live or stable list, which is why
    /// layer-combined stamps alone would under-invalidate. Hashing the
    /// per-layer stamps plus exactly the shadowed member ids covers all
    /// three; shadow-set churn on entities outside this posting leaves the
    /// stamp (and every cached plan probing it) untouched.
    fn probe_fingerprint(&self, probe: &ProbeKey) -> u64 {
        use std::hash::Hasher;
        let mut h = rustc_hash::FxHasher::default();
        h.write_u64(self.live.probe_fingerprint(probe));
        h.write_u64(self.stable.probe_fingerprint(probe));
        let stable = self.stable.postings(probe);
        if !stable.is_empty() {
            let tombstones = self.tombstones.read();
            for id in stable {
                if tombstones.contains(&id) || self.live.contains(id) {
                    h.write_u64(id.0);
                }
            }
        }
        h.finish()
    }

    fn record(&self, id: EntityId) -> Option<EntityRecord> {
        if let Some(record) = self.live.record(id) {
            return Some(record);
        }
        if self.is_tombstoned(id) {
            return None;
        }
        self.stable.record(id)
    }

    fn contains(&self, id: EntityId) -> bool {
        self.live.contains(id) || (!self.is_tombstoned(id) && self.stable.contains(id))
    }

    fn generation(&self) -> u64 {
        // Each component is monotone, so the sum is.
        self.live.generation()
            + self.stable.generation()
            + self.tombstone_gen.load(Ordering::Relaxed)
    }

    /// Candidate-driven conjunction: materializing every merged overlay
    /// posting just to intersect would pay the two-layer merge per probe,
    /// so the overlay instead drives the cheapest posting's candidates
    /// through per-layer [`probe_contains`](GraphRead::probe_contains) —
    /// `O(|smallest| · probes)` point lookups, no merged lists.
    fn probe_all(&self, probes: &[ProbeKey]) -> Vec<EntityId> {
        let Some((driver_at, driver_sel)) = probes
            .iter()
            .map(|p| self.selectivity(p))
            .enumerate()
            .min_by_key(|&(_, sel)| sel)
        else {
            return Vec::new();
        };
        if driver_sel == 0 {
            return Vec::new();
        }
        let candidates = self.postings(&probes[driver_at]);
        candidates
            .into_iter()
            .filter(|&id| {
                probes
                    .iter()
                    .enumerate()
                    .all(|(i, probe)| i == driver_at || self.probe_contains(probe, id))
            })
            .collect()
    }
}

/// Reference conjunction for [`GraphRead`] backends whose effective posting
/// lists are already materialized: selectivity-ordered galloping
/// intersection over owned lists. Shared by tests and by backends that
/// prefer full materialization over membership probes.
pub fn intersect_postings<G: GraphRead>(graph: &G, probes: &[ProbeKey]) -> Vec<EntityId> {
    let lists: Vec<Vec<EntityId>> = probes.iter().map(|p| graph.postings(p)).collect();
    if lists.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let refs: Vec<&[EntityId]> = lists.iter().map(Vec::as_slice).collect();
    intersect_sorted(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{intern, ExtendedTriple, FactMeta, SourceId, Value};

    fn meta() -> FactMeta {
        FactMeta::from_source(SourceId(1), 0.9)
    }

    fn stable_kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "Alpha", "song", SourceId(1), 0.9);
        kg.add_named_entity(EntityId(2), "Beta", "song", SourceId(1), 0.9);
        kg.add_named_entity(EntityId(3), "Gamma", "artist", SourceId(1), 0.9);
        kg.upsert_fact(ExtendedTriple::simple(
            EntityId(1),
            intern("performed_by"),
            Value::Entity(EntityId(3)),
            meta(),
        ));
        kg
    }

    #[test]
    fn stable_kg_implements_the_read_api() {
        let kg = stable_kg();
        let probe = ProbeKey::Type(intern("song"));
        assert_eq!(kg.postings(&probe), vec![EntityId(1), EntityId(2)]);
        assert_eq!(kg.selectivity(&probe), 2);
        assert!(kg.probe_contains(&probe, EntityId(2)));
        assert!(!kg.probe_contains(&probe, EntityId(3)));
        assert_eq!(kg.resolve_name("Alpha"), vec![EntityId(1)]);
        assert_eq!(kg.record(EntityId(3)).unwrap().name(), Some("Gamma"));
        assert_eq!(
            kg.probe_all(&[probe, ProbeKey::Edge(intern("performed_by"), EntityId(3))]),
            vec![EntityId(1)]
        );
    }

    #[test]
    fn generation_bumps_on_mutation_only() {
        let mut kg = stable_kg();
        let g0 = GraphRead::generation(&kg);
        // Reads don't bump.
        let _ = kg.postings(&ProbeKey::Type(intern("song")));
        assert_eq!(GraphRead::generation(&kg), g0);
        kg.add_named_entity(EntityId(9), "Delta", "song", SourceId(1), 0.9);
        assert!(GraphRead::generation(&kg) > g0);
    }

    #[test]
    fn overlay_merges_and_live_wins() {
        let stable = stable_kg();
        // The live layer re-asserts entity 1 with different facts.
        let mut live = KnowledgeGraph::new();
        live.add_named_entity(EntityId(1), "Renamed Track", "song", SourceId(2), 0.9);
        live.add_named_entity(EntityId(7), "Live Only", "song", SourceId(2), 0.9);
        let overlay = OverlayRead::new(live, stable);

        // Union of both layers, live winning on entity 1.
        assert_eq!(
            overlay.postings(&ProbeKey::Type(intern("song"))),
            vec![EntityId(1), EntityId(2), EntityId(7)]
        );
        assert_eq!(
            overlay.record(EntityId(1)).unwrap().name(),
            Some("Renamed Track")
        );
        // Entity 1's stable name posting is shadowed by the live record.
        assert!(overlay.resolve_name("Alpha").is_empty());
        assert_eq!(overlay.resolve_name("Renamed Track"), vec![EntityId(1)]);
        // Stable-only entities pass through untouched.
        assert_eq!(overlay.record(EntityId(3)).unwrap().name(), Some("Gamma"));
    }

    #[test]
    fn tombstones_shadow_stable_facts() {
        let overlay = OverlayRead::new(KnowledgeGraph::new(), stable_kg());
        assert!(overlay.contains(EntityId(2)));
        let g0 = overlay.generation();
        assert!(overlay.tombstone(EntityId(2)));
        assert!(!overlay.tombstone(EntityId(2)), "idempotent");
        assert!(overlay.generation() > g0, "tombstones invalidate plans");

        assert!(!overlay.contains(EntityId(2)));
        assert!(overlay.record(EntityId(2)).is_none());
        assert_eq!(
            overlay.postings(&ProbeKey::Type(intern("song"))),
            vec![EntityId(1)]
        );
        assert!(!overlay.probe_contains(&ProbeKey::Type(intern("song")), EntityId(2)));

        assert!(overlay.resurrect(EntityId(2)));
        assert!(overlay.contains(EntityId(2)));
    }

    #[test]
    fn prune_tombstones_drops_only_stable_side_retractions() {
        use crate::{GraphWriteExt, SourceId};
        let mut stable = stable_kg();
        stable.commit_upsert(ExtendedTriple::simple(
            EntityId(9),
            intern("name"),
            Value::str("Niner"),
            FactMeta::from_source(SourceId(9), 0.9),
        ));
        let overlay = OverlayRead::new(KnowledgeGraph::new(), stable);
        overlay.tombstone(EntityId(2));
        overlay.tombstone(EntityId(9));
        assert_eq!(overlay.tombstone_count(), 2);

        // Entity 2 still lives in the stable layer: its tombstone is
        // load-bearing and must survive even if named in the signal.
        assert_eq!(overlay.prune_tombstones(&[EntityId(2)]), 0);
        assert_eq!(overlay.tombstone_count(), 2);
        assert!(!overlay.contains(EntityId(2)), "still shadowed");

        // Retract entity 9 on the stable side, then feed the commit
        // receipt's removal set through the pruning hook.
        let receipt = {
            // Re-borrowing the stable layer mutably is test-only surgery;
            // production wires `LoggedWriter` receipts through here.
            let mut fresh = stable_kg();
            fresh.commit_upsert(ExtendedTriple::simple(
                EntityId(9),
                intern("name"),
                Value::str("Niner"),
                FactMeta::from_source(SourceId(9), 0.9),
            ));
            let receipt = fresh.commit_retract_source(SourceId(9));
            let overlay = OverlayRead::new(KnowledgeGraph::new(), fresh);
            overlay.tombstone(EntityId(2));
            overlay.tombstone(EntityId(9));
            assert_eq!(receipt.entities_removed, vec![EntityId(9)]);
            assert_eq!(overlay.prune_tombstones(&receipt.entities_removed), 1);
            assert_eq!(overlay.tombstone_count(), 1, "only the dead one pruned");
            assert!(!overlay.contains(EntityId(9)), "stays invisible");
            assert!(!overlay.contains(EntityId(2)), "live tombstone kept");
            receipt
        };
        assert!(!receipt.is_empty());
    }

    #[test]
    fn overlay_fingerprint_tracks_only_the_probed_posting() {
        let mut live = KnowledgeGraph::new();
        live.add_named_entity(EntityId(7), "Live Only", "artist", SourceId(2), 0.9);
        let overlay = OverlayRead::new(live, stable_kg());
        let songs = ProbeKey::Type(intern("song"));
        let artists = ProbeKey::Type(intern("artist"));

        let songs_fp = overlay.probe_fingerprint(&songs);
        let artists_fp = overlay.probe_fingerprint(&artists);
        assert_eq!(
            overlay.postings_cursor(&songs).fingerprint(),
            songs_fp,
            "cursors carry the shadow-set stamp"
        );

        // Shadow-set churn outside the probed posting leaves its stamp
        // alone: tombstoning a live-only entity (shadows no stable record)
        // and tombstoning an artist must not evict plans over `songs`.
        overlay.tombstone(EntityId(7));
        overlay.tombstone(EntityId(3));
        assert_eq!(overlay.probe_fingerprint(&songs), songs_fp);
        assert_ne!(
            overlay.probe_fingerprint(&artists),
            artists_fp,
            "the artist posting lost a member"
        );
        assert!(
            overlay.generation() > 0,
            "the coarse fallback would have evicted everything"
        );

        // Shadowing a member of the probed posting moves the stamp, and
        // resurrecting restores the original posting and stamp.
        overlay.tombstone(EntityId(2));
        let shadowed_fp = overlay.probe_fingerprint(&songs);
        assert_ne!(shadowed_fp, songs_fp);
        overlay.resurrect(EntityId(2));
        assert_eq!(overlay.probe_fingerprint(&songs), songs_fp);

        // The batch form agrees with the per-probe form.
        assert_eq!(
            overlay.probe_fingerprints(&[&songs, &artists]),
            vec![
                overlay.probe_fingerprint(&songs),
                overlay.probe_fingerprint(&artists)
            ]
        );
    }

    #[test]
    fn default_probe_all_short_circuits_unsatisfiable_probes() {
        let overlay = OverlayRead::new(KnowledgeGraph::new(), stable_kg());
        let hits = overlay.probe_all(&[
            ProbeKey::Type(intern("song")),
            ProbeKey::Name("no such entity".into()),
        ]);
        assert!(hits.is_empty());
        // And matches the reference intersection on satisfiable ones.
        let probes = [
            ProbeKey::Type(intern("song")),
            ProbeKey::Edge(intern("performed_by"), EntityId(3)),
        ];
        assert_eq!(
            overlay.probe_all(&probes),
            intersect_postings(&overlay, &probes)
        );
    }
}
