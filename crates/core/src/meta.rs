//! Per-fact metadata: provenance, trust and locale (§2.1 of the paper).
//!
//! Every KG record carries an array of source references and an aligned
//! array of per-source trustworthiness scores. The arrays are updated
//! non-destructively as facts from multiple sources are fused into one
//! record, which is what lets Saga (a) attribute every fact, (b) serve
//! license-conformant views, and (c) honour on-demand deletion.

use crate::{intern, SourceId, Symbol};

/// One provenance entry: the contributing source and its trust score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SourceTrust {
    /// The contributing source.
    pub source: SourceId,
    /// Source trustworthiness in `[0, 1]`, from truth-discovery (§2.3 Fusion).
    pub trust: f32,
}

/// Metadata attached to every [`ExtendedTriple`](crate::ExtendedTriple).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FactMeta {
    /// Aligned provenance + trust entries, one per contributing source.
    pub provenance: Vec<SourceTrust>,
    /// Locale of literal/string objects (e.g. `en`, `fr`), for multi-lingual
    /// knowledge; `None` for locale-independent facts.
    pub locale: Option<Symbol>,
}

impl FactMeta {
    /// Metadata for a fact first observed in `source` with trust `trust`.
    pub fn from_source(source: SourceId, trust: f32) -> FactMeta {
        FactMeta {
            provenance: vec![SourceTrust { source, trust }],
            locale: None,
        }
    }

    /// Same as [`from_source`](Self::from_source) with a locale tag.
    pub fn localized(source: SourceId, trust: f32, locale: &str) -> FactMeta {
        FactMeta {
            provenance: vec![SourceTrust { source, trust }],
            locale: Some(intern(locale)),
        }
    }

    /// All contributing sources, in insertion order.
    pub fn sources(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.provenance.iter().map(|st| st.source)
    }

    /// Whether `source` contributed to this fact.
    pub fn has_source(&self, source: SourceId) -> bool {
        self.provenance.iter().any(|st| st.source == source)
    }

    /// Record that `source` (re-)asserted this fact with trust `trust`.
    ///
    /// If the source is already present its trust is refreshed (sources can
    /// recalibrate over time); otherwise it is appended. This is the
    /// non-destructive merge used by fusion's outer join (§2.3).
    pub fn merge_source(&mut self, source: SourceId, trust: f32) {
        match self.provenance.iter_mut().find(|st| st.source == source) {
            Some(st) => st.trust = trust,
            None => self.provenance.push(SourceTrust { source, trust }),
        }
    }

    /// Merge all provenance entries of `other` into `self`.
    pub fn merge(&mut self, other: &FactMeta) {
        for st in &other.provenance {
            self.merge_source(st.source, st.trust);
        }
        if self.locale.is_none() {
            self.locale = other.locale;
        }
    }

    /// Remove a source's attribution. Returns `true` if the fact is now
    /// orphaned (no remaining sources) and should be dropped from the KG —
    /// the mechanism behind on-demand data deletion.
    pub fn retract_source(&mut self, source: SourceId) -> bool {
        self.provenance.retain(|st| st.source != source);
        self.provenance.is_empty()
    }

    /// Aggregated confidence that the fact is correct, combining independent
    /// source trusts with a noisy-OR: `1 - Π (1 - trust_i)`.
    ///
    /// The paper stores a per-record confidence used for accuracy SLAs and
    /// fact-auditing decisions; noisy-OR is the standard independence
    /// combiner for "at least one source is right".
    pub fn confidence(&self) -> f32 {
        let mut not_p = 1.0f32;
        for st in &self.provenance {
            not_p *= 1.0 - st.trust.clamp(0.0, 1.0);
        }
        1.0 - not_p
    }

    /// Number of distinct contributing sources (the "number of identities"
    /// structural signal used by entity importance, §3.3).
    pub fn source_count(&self) -> usize {
        self.provenance.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_source_records_single_provenance() {
        let m = FactMeta::from_source(SourceId(1), 0.9);
        assert_eq!(m.source_count(), 1);
        assert!(m.has_source(SourceId(1)));
        assert!(!m.has_source(SourceId(2)));
        assert!(m.locale.is_none());
    }

    #[test]
    fn localized_interns_locale() {
        let m = FactMeta::localized(SourceId(1), 0.9, "en");
        assert_eq!(m.locale, Some(intern("en")));
    }

    #[test]
    fn merge_source_appends_or_refreshes() {
        let mut m = FactMeta::from_source(SourceId(1), 0.9);
        m.merge_source(SourceId(2), 0.8);
        assert_eq!(m.source_count(), 2);
        m.merge_source(SourceId(1), 0.5); // refresh, not duplicate
        assert_eq!(m.source_count(), 2);
        assert_eq!(m.provenance[0].trust, 0.5);
    }

    #[test]
    fn retract_source_signals_orphaned_fact() {
        let mut m = FactMeta::from_source(SourceId(1), 0.9);
        m.merge_source(SourceId(2), 0.8);
        assert!(!m.retract_source(SourceId(1)));
        assert!(
            m.retract_source(SourceId(2)),
            "last source removed → orphan"
        );
    }

    #[test]
    fn confidence_is_noisy_or() {
        let mut m = FactMeta::from_source(SourceId(1), 0.9);
        assert!((m.confidence() - 0.9).abs() < 1e-6);
        m.merge_source(SourceId(2), 0.8);
        // 1 - 0.1*0.2 = 0.98
        assert!((m.confidence() - 0.98).abs() < 1e-6);
    }

    #[test]
    fn confidence_clamps_out_of_range_trust() {
        let m = FactMeta::from_source(SourceId(1), 1.5);
        assert!((m.confidence() - 1.0).abs() < 1e-6);
        let m2 = FactMeta::from_source(SourceId(1), -0.5);
        assert!(m2.confidence().abs() < 1e-6);
    }

    #[test]
    fn merge_unions_provenance_and_keeps_first_locale() {
        let mut a = FactMeta::localized(SourceId(1), 0.9, "en");
        let b = FactMeta::localized(SourceId(2), 0.7, "fr");
        a.merge(&b);
        assert_eq!(a.source_count(), 2);
        assert_eq!(a.locale, Some(intern("en")));

        let mut c = FactMeta::from_source(SourceId(3), 0.5);
        c.merge(&b);
        assert_eq!(
            c.locale,
            Some(intern("fr")),
            "missing locale adopted from other"
        );
    }
}
