//! Global string interner.
//!
//! Predicates, ontology types and locales are drawn from a controlled,
//! slowly-growing vocabulary, while triples number in the billions in the
//! paper's deployment. Interning turns every such string into a 4-byte
//! [`Symbol`], keeping [`ExtendedTriple`](crate::ExtendedTriple) compact and
//! making predicate comparisons integer comparisons (hot in blocking, joins
//! and view maintenance).
//!
//! The interner is a process-global, append-only table guarded by an RwLock;
//! lookups of already-interned strings take the read path only.

use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;
use std::sync::OnceLock;

use crate::FxHashMap;

/// An interned string. Two `Symbol`s are equal iff their strings are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Resolve this symbol back to its string.
    pub fn text(self) -> Arc<str> {
        resolve(self)
    }

    /// Resolve and return as a plain `String` (convenience for formatting).
    pub fn as_string(self) -> String {
        resolve(self).to_string()
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", resolve(*self))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", resolve(*self))
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        intern(s)
    }
}

struct InternerInner {
    by_text: FxHashMap<Arc<str>, Symbol>,
    by_id: Vec<Arc<str>>,
}

struct Interner {
    inner: RwLock<InternerInner>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            inner: RwLock::new(InternerInner {
                by_text: FxHashMap::default(),
                by_id: Vec::new(),
            }),
        }
    }

    fn intern(&self, text: &str) -> Symbol {
        if let Some(&sym) = self.inner.read().by_text.get(text) {
            return sym;
        }
        let mut inner = self.inner.write();
        // Double-check: another writer may have interned between our locks.
        if let Some(&sym) = inner.by_text.get(text) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(text);
        let sym = Symbol(u32::try_from(inner.by_id.len()).expect("interner overflow"));
        inner.by_id.push(Arc::clone(&arc));
        inner.by_text.insert(arc, sym);
        sym
    }

    fn resolve(&self, sym: Symbol) -> Arc<str> {
        Arc::clone(&self.inner.read().by_id[sym.0 as usize])
    }
}

fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(Interner::new)
}

/// Intern `text`, returning its process-wide [`Symbol`].
pub fn intern(text: &str) -> Symbol {
    global().intern(text)
}

/// Resolve a [`Symbol`] back to its string.
///
/// # Panics
/// Panics if `sym` was not produced by [`intern`] in this process.
pub fn resolve(sym: Symbol) -> Arc<str> {
    global().resolve(sym)
}

/// Resolve a [`Symbol`] and return an owned `String`.
pub fn symbol_text(sym: Symbol) -> String {
    resolve(sym).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("educated_at");
        let b = intern("educated_at");
        assert_eq!(a, b);
        assert_eq!(&*resolve(a), "educated_at");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = intern("school");
        let b = intern("degree");
        assert_ne!(a, b);
        assert_eq!(&*resolve(a), "school");
        assert_eq!(&*resolve(b), "degree");
    }

    #[test]
    fn empty_string_is_internable() {
        let e = intern("");
        assert_eq!(&*resolve(e), "");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let words: Vec<String> = (0..64).map(|i| format!("pred_{i}")).collect();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let words = words.clone();
                std::thread::spawn(move || words.iter().map(|w| intern(w)).collect::<Vec<_>>())
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0], "all threads must agree on symbols");
        }
    }

    #[test]
    fn display_uses_underlying_text() {
        let s = intern("genre");
        assert_eq!(s.to_string(), "genre");
        assert_eq!(format!("{s:?}"), "`genre`");
    }
}
