//! # saga-core
//!
//! Core data model for the Saga knowledge platform (SIGMOD 2022).
//!
//! Saga represents knowledge as a graph of `<subject, predicate, object>`
//! triples, *extended* with one-hop relationship structure and per-fact
//! metadata (provenance, locale, trustworthiness) — see §2.1 and Table 1 of
//! the paper. This crate provides:
//!
//! * [`EntityId`] / [`SourceId`] / [`Lsn`] — compact identifiers.
//! * [`Symbol`] and the global string [`intern()`]er — predicates, types and
//!   locales are interned so that a triple is a few machine words.
//! * [`Value`] — the object side of a triple (literal, KG reference or an
//!   unresolved source-namespace reference).
//! * [`ExtendedTriple`] — the flat relational record of Table 1, including
//!   the `(r_id, r_predicate)` extension for composite relationships.
//! * [`FactMeta`] — aligned source/trust provenance arrays plus locale.
//! * [`EntityPayload`] / [`EntityRecord`] — entity-centric groups of triples
//!   used by ingestion, construction and serving.
//! * [`KnowledgeGraph`] — the in-memory canonical KG with non-destructive
//!   integration (provenance-preserving upserts, per-source deletion).
//!
//! Everything in downstream crates (ingestion, construction, the Graph
//! Engine, the Live Graph, the ML stack) is expressed over these types.

pub mod checkpoint;
pub mod entity;
pub mod error;
pub mod fail;
pub mod id;
pub mod index;
pub mod intern;
pub mod json;
pub mod kg;
pub mod meta;
pub mod postings;
pub mod read;
pub mod row;
pub mod session;
pub mod triple;
pub mod value;
pub mod wire;
pub mod write;

#[cfg(test)]
mod index_properties;
#[cfg(test)]
mod properties;
#[cfg(test)]
mod write_properties;

pub use entity::{EntityPayload, EntityRecord};
pub use error::{Result, SagaError};
pub use id::{EntityId, IdGenerator, Lsn, RelId, SourceId};
pub use index::{Delta, DeltaFact, PostingsStats, ProbeKey, TripleIndex};
pub use intern::{intern, resolve, symbol_text, Symbol};
pub use kg::{KgStats, KnowledgeGraph};
pub use meta::{FactMeta, SourceTrust};
pub use postings::{intersect_views, union_views, BlockPostings, PostingsCursor, PostingsView};
pub use read::{GraphRead, OverlayRead};
pub use row::{Dataset, Row};
pub use session::SessionToken;
pub use triple::{ExtendedTriple, RelPart, SubjectRef, TripleKey};
pub use value::Value;
pub use write::{
    CommitReceipt, GraphWrite, GraphWriteExt, KgTransaction, OpOutcome, StagedCommit, WriteBatch,
    WriteOp,
};

/// Convenience alias for the Fx (rustc-hash) hash map used on all hot paths.
pub type FxHashMap<K, V> = rustc_hash::FxHashMap<K, V>;
/// Convenience alias for the Fx (rustc-hash) hash set used on all hot paths.
pub type FxHashSet<K> = rustc_hash::FxHashSet<K>;

/// Well-known predicate names used across the platform.
pub mod well_known {
    /// Predicate carrying an entity's primary name.
    pub const NAME: &str = "name";
    /// Predicate carrying alternative names / aliases.
    pub const ALIAS: &str = "alias";
    /// Predicate carrying the entity's ontology type.
    pub const TYPE: &str = "type";
    /// Predicate linking a source entity to the KG entity it was resolved to.
    pub const SAME_AS: &str = "same_as";
    /// Predicate carrying a free-text description of the entity.
    pub const DESCRIPTION: &str = "description";
    /// Predicate carrying an externally supplied popularity signal
    /// (volatile; see §2.4 of the paper).
    pub const POPULARITY: &str = "popularity";
}
