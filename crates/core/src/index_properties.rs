//! Index-consistency property tests (seeded, deterministic).
//!
//! Three invariants of the unified triple index, checked over random
//! interleavings of upserts, retractions, volatile overwrites and direct
//! record mutations:
//!
//! 1. **Scan equivalence** — every SPO / POS / OSP probe answered by the
//!    index equals a naive full scan over the `KnowledgeGraph` records,
//!    and every `probe_all` conjunction equals the naive intersection of
//!    those scans.
//! 2. **Replay equivalence** — the [`Delta`] feed carried by commit
//!    receipts (the payloads the oplog ships), replayed onto an empty
//!    index, reproduces the KG's index exactly.
//! 3. **Compression equivalence** — the block-compressed
//!    [`BlockPostings`] behaves exactly like a plain sorted
//!    `Vec<EntityId>` reference under churn-heavy op streams, including
//!    across the inline/block and sparse/dense split-merge boundaries.

use crate::index::{flatten, name_tokens};
use crate::postings::{
    intersect_views, union_views, BlockPostings, PostingsView, DENSE_MIN, SPARSE_MAX,
};
use crate::{
    intern, Delta, EntityId, ExtendedTriple, FactMeta, FxHashSet, KnowledgeGraph, ProbeKey, RelId,
    SourceId, Symbol, TripleIndex, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PREDICATES: [&str; 6] = ["name", "alias", "type", "knows", "founded", "score"];
const TYPES: [&str; 3] = ["person", "song", "city"];
const NAMES: [&str; 5] = [
    "Ada Lovelace",
    "Grace Hopper",
    "Hedy Lamarr",
    "Noether",
    "A-1 B2",
];

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..6) {
        0 => Value::str(NAMES[rng.gen_range(0..NAMES.len())]),
        1 => Value::Int(rng.gen_range(-5..50)),
        2 => Value::Float(f64::from(rng.gen_range(0..8)) / 2.0),
        3 => Value::Bool(rng.gen_bool(0.5)),
        4 => Value::Entity(EntityId(rng.gen_range(1..16))),
        _ => Value::Null,
    }
}

fn random_triple(rng: &mut StdRng, subject: EntityId) -> ExtendedTriple {
    let meta = FactMeta::from_source(SourceId(rng.gen_range(1..4)), 0.9);
    let pred = intern(PREDICATES[rng.gen_range(0..PREDICATES.len())]);
    let object = if pred == intern("type") {
        Value::str(TYPES[rng.gen_range(0..TYPES.len())])
    } else if pred == intern("name") || pred == intern("alias") {
        Value::str(NAMES[rng.gen_range(0..NAMES.len())])
    } else {
        random_value(rng)
    };
    if rng.gen_bool(0.2) {
        ExtendedTriple::composite(
            subject,
            pred,
            RelId(rng.gen_range(1..3)),
            intern("facet"),
            object,
            meta,
        )
    } else {
        ExtendedTriple::simple(subject, pred, object, meta)
    }
}

/// One random mutation against the KG through the direct mutators.
fn random_op(rng: &mut StdRng, kg: &mut KnowledgeGraph) {
    match rng.gen_range(0..10) {
        // Mostly upserts.
        0..=5 => {
            let subject = EntityId(rng.gen_range(1..16));
            let triple = random_triple(rng, subject);
            if let Value::Str(local) = Value::str(format!("e{}", subject.0)) {
                // Links enable the per-entity retraction path below.
                kg.record_link(SourceId(1), &local, subject);
            }
            kg.upsert_fact(triple);
        }
        6 => {
            kg.retract_source(SourceId(rng.gen_range(1..4)));
        }
        7 => {
            let local = format!("e{}", rng.gen_range(1..16));
            kg.retract_source_entity(SourceId(1), &local);
        }
        8 => {
            let mut volatile = FxHashSet::default();
            volatile.insert(intern("score"));
            let fresh: Vec<ExtendedTriple> = (0..rng.gen_range(0..4))
                .map(|_| {
                    let subject = EntityId(rng.gen_range(1..16));
                    ExtendedTriple::simple(
                        subject,
                        intern("score"),
                        Value::Int(rng.gen_range(0..100)),
                        FactMeta::from_source(SourceId(2), 0.8),
                    )
                })
                .collect();
            kg.overwrite_volatile_partition(SourceId(2), &volatile, fresh);
        }
        _ => {
            // Direct record mutation through the reconciling API.
            let id = EntityId(rng.gen_range(1..16));
            let drop_at = rng.gen_range(0..4usize);
            kg.mutate_entity(id, |rec| {
                if drop_at < rec.triples.len() {
                    rec.triples.remove(drop_at);
                }
            });
        }
    }
}

/// The same op distribution as [`random_op`], staged through the
/// [`GraphWrite`](crate::GraphWrite) commit point. Returns the commit
/// receipt's [`Delta`]s — the exact payloads the write-ahead log ships to
/// replicas (there is no other delta channel).
fn random_commit(rng: &mut StdRng, kg: &mut KnowledgeGraph) -> Vec<Delta> {
    use crate::{GraphWrite, WriteBatch};
    let batch = match rng.gen_range(0..10) {
        0..=5 => {
            let subject = EntityId(rng.gen_range(1..16));
            let triple = random_triple(rng, subject);
            WriteBatch::new()
                .link(SourceId(1), format!("e{}", subject.0), subject)
                .upsert(triple)
        }
        6 => WriteBatch::new().retract_source(SourceId(rng.gen_range(1..4))),
        7 => {
            let local = format!("e{}", rng.gen_range(1..16));
            WriteBatch::new().retract_source_entity(SourceId(1), local)
        }
        8 => {
            let mut volatile = FxHashSet::default();
            volatile.insert(intern("score"));
            let fresh: Vec<ExtendedTriple> = (0..rng.gen_range(0..4))
                .map(|_| {
                    let subject = EntityId(rng.gen_range(1..16));
                    ExtendedTriple::simple(
                        subject,
                        intern("score"),
                        Value::Int(rng.gen_range(0..100)),
                        FactMeta::from_source(SourceId(2), 0.8),
                    )
                })
                .collect();
            WriteBatch::new().overwrite_volatile(SourceId(2), volatile, fresh)
        }
        _ => {
            let id = EntityId(rng.gen_range(1..16));
            let drop_at = rng.gen_range(0..4usize);
            WriteBatch::new().mutate(id, move |rec| {
                if drop_at < rec.triples.len() {
                    rec.triples.remove(drop_at);
                }
            })
        }
    };
    kg.commit(batch).deltas
}

// ---------------------------------------------------------------------
// Naive full-scan oracles
// ---------------------------------------------------------------------

fn naive_facts(kg: &KnowledgeGraph, id: EntityId) -> Vec<(Symbol, Value)> {
    let mut out: Vec<(Symbol, Value)> = kg
        .entity(id)
        .map(|r| r.triples.iter().filter_map(flatten).collect())
        .unwrap_or_default();
    out.sort_unstable();
    out
}

fn naive_pos(kg: &KnowledgeGraph, pred: Symbol, value: &Value) -> Vec<EntityId> {
    let mut out: Vec<EntityId> = kg
        .entities()
        .filter(|r| {
            r.triples
                .iter()
                .filter_map(flatten)
                .any(|(p, v)| p == pred && &v == value)
        })
        .map(|r| r.id)
        .collect();
    out.sort_unstable();
    out
}

fn naive_osp(kg: &KnowledgeGraph, target: EntityId) -> Vec<EntityId> {
    let mut out: Vec<EntityId> = kg
        .entities()
        .filter(|r| {
            r.triples
                .iter()
                .filter_map(flatten)
                .any(|(_, v)| v == Value::Entity(target))
        })
        .map(|r| r.id)
        .collect();
    out.sort_unstable();
    out
}

fn naive_tokens(kg: &KnowledgeGraph, needle: &str) -> Vec<EntityId> {
    let name_sym = intern("name");
    let alias_sym = intern("alias");
    let mut out: Vec<EntityId> = kg
        .entities()
        .filter(|r| {
            r.triples
                .iter()
                .filter_map(flatten)
                .filter(|(p, _)| *p == name_sym || *p == alias_sym)
                .any(|(_, v)| match v {
                    Value::Str(s) => name_tokens(&s).iter().any(|t| t == needle),
                    _ => false,
                })
        })
        .map(|r| r.id)
        .collect();
    out.sort_unstable();
    out
}

fn assert_index_matches_naive_scan(kg: &KnowledgeGraph, seed_label: &str) {
    let index = kg.index();
    // SPO: per-subject flattened multisets agree.
    for id in (1..16).map(EntityId) {
        let mut got: Vec<(Symbol, Value)> =
            index.facts_of(id).map(|(p, v)| (p, v.clone())).collect();
        got.sort_unstable();
        assert_eq!(
            got,
            naive_facts(kg, id),
            "{seed_label}: SPO mismatch for {id}"
        );
    }
    // POS: probe every (predicate, value) pair that occurs anywhere, plus a
    // few guaranteed misses.
    let mut pairs: Vec<(Symbol, Value)> = kg
        .entities()
        .flat_map(|r| r.triples.iter().filter_map(flatten))
        .collect();
    pairs.push((intern("name"), Value::str("No Such Name")));
    pairs.push((intern("never_used"), Value::Int(0)));
    pairs.sort_unstable();
    pairs.dedup();
    for (pred, value) in &pairs {
        assert_eq!(
            index.by_literal(*pred, value),
            naive_pos(kg, *pred, value),
            "{seed_label}: POS mismatch for ({pred}, {value})"
        );
    }
    // OSP: reverse references for every possible target.
    for target in (1..16).map(EntityId) {
        assert_eq!(
            index.referencing(target),
            naive_osp(kg, target),
            "{seed_label}: OSP mismatch for {target}"
        );
    }
    // Derived name-token postings.
    for name in NAMES {
        for token in name_tokens(name) {
            assert_eq!(
                index.by_name(&token),
                naive_tokens(kg, &token),
                "{seed_label}: token mismatch for {token:?}"
            );
        }
    }
    // Type postings.
    for ty in TYPES {
        assert_eq!(
            index.by_type(intern(ty)),
            naive_pos(kg, intern("type"), &Value::str(ty)),
            "{seed_label}: type mismatch for {ty}"
        );
    }
    // Selectivity is the posting length.
    for (pred, value) in &pairs {
        let probe = ProbeKey::Literal(*pred, value.clone());
        assert_eq!(
            index.selectivity(&probe),
            naive_pos(kg, *pred, value).len(),
            "{seed_label}: selectivity mismatch for ({pred}, {value})"
        );
    }
    // probe_all conjunctions (compressed-domain intersection) equal the
    // naive intersection of the naive scans.
    for ty in TYPES {
        for name in NAMES {
            for token in name_tokens(name) {
                let probes = [ProbeKey::Type(intern(ty)), ProbeKey::Name(token.clone())];
                let expected: Vec<EntityId> = naive_pos(kg, intern("type"), &Value::str(ty))
                    .into_iter()
                    .filter(|id| naive_tokens(kg, &token).contains(id))
                    .collect();
                assert_eq!(
                    index.probe_all(&probes),
                    expected,
                    "{seed_label}: probe_all mismatch for ({ty}, {token:?})"
                );
            }
        }
    }
}

#[test]
fn random_interleavings_match_naive_scans() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let mut kg = KnowledgeGraph::new();
        for step in 0..120 {
            random_op(&mut rng, &mut kg);
            // Check at a sampled cadence (every op would be O(n²) overall).
            if step % 30 == 29 {
                assert_index_matches_naive_scan(&kg, &format!("seed {seed} step {step}"));
            }
        }
        assert_index_matches_naive_scan(&kg, &format!("seed {seed} final"));
    }
}

#[test]
fn delta_feed_replay_reproduces_the_index() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xD417A ^ seed);
        let mut kg = KnowledgeGraph::new();
        let mut feed: Vec<Delta> = Vec::new();
        for _ in 0..150 {
            feed.extend(random_commit(&mut rng, &mut kg));
        }
        let mut replayed = TripleIndex::new();
        for delta in &feed {
            replayed.apply(delta);
        }
        let index = kg.index();
        assert_eq!(
            replayed.fact_count(),
            index.fact_count(),
            "seed {seed}: fact counts"
        );
        assert_eq!(
            replayed.entity_count(),
            index.entity_count(),
            "seed {seed}: entity counts"
        );
        for id in (1..16).map(EntityId) {
            let mut a: Vec<(Symbol, Value)> =
                replayed.facts_of(id).map(|(p, v)| (p, v.clone())).collect();
            let mut b: Vec<(Symbol, Value)> =
                index.facts_of(id).map(|(p, v)| (p, v.clone())).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "seed {seed}: replayed SPO for {id}");
            assert_eq!(
                replayed.referencing(id),
                index.referencing(id),
                "seed {seed}: replayed OSP for {id}"
            );
        }
        for name in NAMES {
            for token in name_tokens(name) {
                assert_eq!(
                    replayed.by_name(&token),
                    index.by_name(&token),
                    "seed {seed}: replayed token {token:?}"
                );
            }
        }
        // POS postings agree pair-by-pair after replay.
        let pairs: Vec<(Symbol, Value)> = kg
            .entities()
            .flat_map(|r| r.triples.iter().filter_map(flatten))
            .collect();
        for (pred, value) in &pairs {
            assert_eq!(
                replayed.by_literal(*pred, value),
                index.by_literal(*pred, value),
                "seed {seed}: replayed POS for ({pred}, {value})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Compressed postings ≡ plain Vec reference
// ---------------------------------------------------------------------

/// The plain-`Vec` reference implementation the compressed list must be
/// indistinguishable from.
#[derive(Default)]
struct PlainPostings(Vec<EntityId>);

impl PlainPostings {
    fn insert(&mut self, id: EntityId) -> bool {
        match self.0.binary_search(&id) {
            Ok(_) => false,
            Err(at) => {
                self.0.insert(at, id);
                true
            }
        }
    }

    fn remove(&mut self, id: EntityId) -> bool {
        match self.0.binary_search(&id) {
            Ok(at) => {
                self.0.remove(at);
                true
            }
            Err(_) => false,
        }
    }
}

/// Random id biased toward representation boundaries: block edges
/// (multiples of 4096 ± a few), one hot block that crosses the
/// sparse→dense split and back, and a far block that keeps the directory
/// multi-entry.
fn boundary_id(rng: &mut StdRng) -> EntityId {
    match rng.gen_range(0..5) {
        // Hot block 0: enough distinct ids (0..2048) to cross SPARSE_MAX.
        0 | 1 => EntityId(rng.gen_range(0..2048)),
        // Block boundary straddle: 4090..4102.
        2 => EntityId(4090 + rng.gen_range(0..12)),
        // Sparse far block.
        3 => EntityId((1 << 20) + rng.gen_range(0..64)),
        // Tiny tail that keeps the list hopping over INLINE_MAX.
        _ => EntityId(rng.gen_range(0..40) * 97),
    }
}

#[test]
fn compressed_list_matches_plain_vec_reference_under_churn() {
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0xB10C ^ seed);
        let mut plain = PlainPostings::default();
        let mut compressed = BlockPostings::new();
        let mut crossed_dense = false;
        let mut crossed_tiny = false;
        for step in 0..6_000 {
            let id = boundary_id(&mut rng);
            // Phase-biased churn: mostly inserts early (push the hot block
            // through the dense split), mostly removals late (pull it back
            // through the merge thresholds).
            let insert = if step < 3_000 {
                rng.gen_bool(0.8)
            } else {
                rng.gen_bool(0.2)
            };
            if insert {
                assert_eq!(
                    compressed.insert(id),
                    plain.insert(id),
                    "seed {seed} step {step}: insert({id}) disagreed"
                );
            } else {
                assert_eq!(
                    compressed.remove(id),
                    plain.remove(id),
                    "seed {seed} step {step}: remove({id}) disagreed"
                );
            }
            crossed_dense |= compressed.dense_block_count() > 0;
            crossed_tiny |= compressed.is_tiny();
            assert_eq!(compressed.len(), plain.0.len(), "seed {seed} step {step}");
            if step % 500 == 499 {
                assert_eq!(
                    compressed.to_vec(),
                    plain.0,
                    "seed {seed} step {step}: contents diverged"
                );
                for probe in [0u64, 1, 4_095, 4_096, 4_100, 1 << 20, 97 * 13] {
                    let id = EntityId(probe);
                    assert_eq!(
                        compressed.contains(id),
                        plain.0.binary_search(&id).is_ok(),
                        "seed {seed} step {step}: contains({id}) disagreed"
                    );
                }
            }
        }
        assert_eq!(compressed.to_vec(), plain.0, "seed {seed}: final contents");
        assert!(
            crossed_dense,
            "seed {seed}: churn never promoted a dense block — thresholds untested"
        );
        assert!(
            crossed_tiny,
            "seed {seed}: churn never passed through the tiny tier"
        );
    }
}

#[test]
fn compressed_set_algebra_matches_plain_reference() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xA15E ^ seed);
        // Three lists of very different densities, sharing the id space.
        let mut lists: Vec<Vec<EntityId>> = Vec::new();
        for density in [2usize, 7, 31] {
            let mut ids: Vec<EntityId> = (0..30_000u64)
                .filter(|_| rng.gen_range(0..density) == 0)
                .map(EntityId)
                .collect();
            ids.sort_unstable();
            ids.dedup();
            lists.push(ids);
        }
        let compressed: Vec<BlockPostings> = lists
            .iter()
            .map(|ids| BlockPostings::from_sorted(ids))
            .collect();
        let views: Vec<PostingsView> = compressed.iter().map(BlockPostings::as_view).collect();
        // Intersection ≡ naive.
        let expected: Vec<EntityId> = lists[0]
            .iter()
            .filter(|id| lists[1].binary_search(id).is_ok() && lists[2].binary_search(id).is_ok())
            .copied()
            .collect();
        assert_eq!(intersect_views(&views), expected, "seed {seed}: intersect");
        // Union ≡ naive (the cross-shard merge path).
        let mut all: Vec<EntityId> = lists.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(union_views(&views).to_vec(), all, "seed {seed}: union");
    }
}

/// KG-scale split/merge: enough same-type entities (ids straddling a
/// block boundary) to promote the type posting into dense blocks, then a
/// source retraction that pulls it back through demotion — with scan
/// equivalence asserted on both sides.
#[test]
fn dense_type_posting_promotes_and_demotes_at_kg_scale() {
    let mut kg = KnowledgeGraph::new();
    let lo = 3_500u64;
    let hi = 4_800u64; // straddles the 4096 block boundary
    for id in lo..hi {
        // Two thirds of the entities come from the churn source.
        let source = if id % 3 == 0 {
            SourceId(1)
        } else {
            SourceId(2)
        };
        kg.add_named_entity(EntityId(id), &format!("Node {id}"), "person", source, 0.9);
    }
    let ty = ProbeKey::Type(intern("person"));
    {
        let view = kg.index().postings(&ty);
        assert_eq!(view.len(), (hi - lo) as usize);
        assert_eq!(view.block_count(), 2, "ids straddle one block boundary");
        assert!(
            view.dense_block_count() >= 1,
            "per-block cardinality {} crossed SPARSE_MAX={SPARSE_MAX}",
            view.len() / 2
        );
        let expected: Vec<EntityId> = (lo..hi).map(EntityId).collect();
        assert_eq!(view, expected);
    }
    // Retract the churn source: cardinality drops to ~433, under the
    // DENSE_MIN=256 per-block demotion threshold.
    kg.retract_source(SourceId(2));
    {
        let view = kg.index().postings(&ty);
        let expected: Vec<EntityId> = (lo..hi).filter(|id| id % 3 == 0).map(EntityId).collect();
        assert_eq!(view.len(), expected.len());
        assert!(
            expected.len() / 2 < DENSE_MIN,
            "workload sized to cross the demote threshold"
        );
        assert_eq!(view.dense_block_count(), 0, "demoted after retraction");
        assert_eq!(view, expected);
        // And the conjunction with a (dense-ish) token posting agrees
        // with the naive intersection.
        let hits = kg
            .index()
            .probe_all(&[ty.clone(), ProbeKey::Name("node".into())]);
        assert_eq!(hits, expected);
    }
    // Retracting everything empties the postings and the directories.
    kg.retract_source(SourceId(1));
    let view = kg.index().postings(&ty);
    assert!(view.is_empty());
    assert_eq!(view.block_count(), 0);
    assert!(kg.index().is_empty());
}

#[test]
fn probe_fingerprints_move_only_with_their_posting() {
    let mut kg = KnowledgeGraph::new();
    kg.add_named_entity(EntityId(1), "Alpha", "song", SourceId(1), 0.9);
    kg.add_named_entity(EntityId(2), "Beta", "artist", SourceId(1), 0.9);
    let song = ProbeKey::Type(intern("song"));
    let alpha = ProbeKey::Name("alpha".into());
    let fp_song = kg.index().probe_fingerprint(&song);
    let fp_alpha = kg.index().probe_fingerprint(&alpha);
    assert_ne!(fp_song, 0, "stamped on creation");
    // An unrelated entity write leaves both fingerprints untouched.
    kg.add_named_entity(EntityId(3), "Gamma", "artist", SourceId(1), 0.9);
    assert_eq!(kg.index().probe_fingerprint(&song), fp_song);
    assert_eq!(kg.index().probe_fingerprint(&alpha), fp_alpha);
    // A write into the song posting moves only that fingerprint.
    kg.add_named_entity(EntityId(4), "Delta", "song", SourceId(1), 0.9);
    assert_ne!(kg.index().probe_fingerprint(&song), fp_song);
    assert_eq!(kg.index().probe_fingerprint(&alpha), fp_alpha);
    // A vanished posting fingerprints as 0; recreation restamps fresh.
    kg.retract_source(SourceId(1));
    assert_eq!(kg.index().probe_fingerprint(&song), 0);
    kg.add_named_entity(EntityId(9), "Niner", "song", SourceId(1), 0.9);
    let fp_new = kg.index().probe_fingerprint(&song);
    assert_ne!(fp_new, 0);
    assert_ne!(fp_new, fp_song, "stamps are never reused");
}
