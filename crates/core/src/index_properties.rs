//! Index-consistency property tests (seeded, deterministic).
//!
//! Two invariants of the unified triple index, checked over random
//! interleavings of upserts, retractions, volatile overwrites and direct
//! record mutations:
//!
//! 1. **Scan equivalence** — every SPO / POS / OSP probe answered by the
//!    index equals a naive full scan over the `KnowledgeGraph` records.
//! 2. **Replay equivalence** — the [`Delta`] change feed drained from the
//!    KG, replayed onto an empty index, reproduces the KG's index exactly.

use crate::index::{flatten, name_tokens};
use crate::{
    intern, Delta, EntityId, ExtendedTriple, FactMeta, FxHashSet, KnowledgeGraph, RelId, SourceId,
    Symbol, TripleIndex, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PREDICATES: [&str; 6] = ["name", "alias", "type", "knows", "founded", "score"];
const TYPES: [&str; 3] = ["person", "song", "city"];
const NAMES: [&str; 5] = [
    "Ada Lovelace",
    "Grace Hopper",
    "Hedy Lamarr",
    "Noether",
    "A-1 B2",
];

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..6) {
        0 => Value::str(NAMES[rng.gen_range(0..NAMES.len())]),
        1 => Value::Int(rng.gen_range(-5..50)),
        2 => Value::Float(f64::from(rng.gen_range(0..8)) / 2.0),
        3 => Value::Bool(rng.gen_bool(0.5)),
        4 => Value::Entity(EntityId(rng.gen_range(1..16))),
        _ => Value::Null,
    }
}

fn random_triple(rng: &mut StdRng, subject: EntityId) -> ExtendedTriple {
    let meta = FactMeta::from_source(SourceId(rng.gen_range(1..4)), 0.9);
    let pred = intern(PREDICATES[rng.gen_range(0..PREDICATES.len())]);
    let object = if pred == intern("type") {
        Value::str(TYPES[rng.gen_range(0..TYPES.len())])
    } else if pred == intern("name") || pred == intern("alias") {
        Value::str(NAMES[rng.gen_range(0..NAMES.len())])
    } else {
        random_value(rng)
    };
    if rng.gen_bool(0.2) {
        ExtendedTriple::composite(
            subject,
            pred,
            RelId(rng.gen_range(1..3)),
            intern("facet"),
            object,
            meta,
        )
    } else {
        ExtendedTriple::simple(subject, pred, object, meta)
    }
}

/// One random mutation against the KG; deltas accumulate in its changelog.
fn random_op(rng: &mut StdRng, kg: &mut KnowledgeGraph) {
    match rng.gen_range(0..10) {
        // Mostly upserts.
        0..=5 => {
            let subject = EntityId(rng.gen_range(1..16));
            let triple = random_triple(rng, subject);
            if let Value::Str(local) = Value::str(format!("e{}", subject.0)) {
                // Links enable the per-entity retraction path below.
                kg.record_link(SourceId(1), &local, subject);
            }
            kg.upsert_fact(triple);
        }
        6 => {
            kg.retract_source(SourceId(rng.gen_range(1..4)));
        }
        7 => {
            let local = format!("e{}", rng.gen_range(1..16));
            kg.retract_source_entity(SourceId(1), &local);
        }
        8 => {
            let mut volatile = FxHashSet::default();
            volatile.insert(intern("score"));
            let fresh: Vec<ExtendedTriple> = (0..rng.gen_range(0..4))
                .map(|_| {
                    let subject = EntityId(rng.gen_range(1..16));
                    ExtendedTriple::simple(
                        subject,
                        intern("score"),
                        Value::Int(rng.gen_range(0..100)),
                        FactMeta::from_source(SourceId(2), 0.8),
                    )
                })
                .collect();
            kg.overwrite_volatile_partition(SourceId(2), &volatile, fresh);
        }
        _ => {
            // Direct record mutation through the reconciling API.
            let id = EntityId(rng.gen_range(1..16));
            let drop_at = rng.gen_range(0..4usize);
            kg.mutate_entity(id, |rec| {
                if drop_at < rec.triples.len() {
                    rec.triples.remove(drop_at);
                }
            });
        }
    }
}

// ---------------------------------------------------------------------
// Naive full-scan oracles
// ---------------------------------------------------------------------

fn naive_facts(kg: &KnowledgeGraph, id: EntityId) -> Vec<(Symbol, Value)> {
    let mut out: Vec<(Symbol, Value)> = kg
        .entity(id)
        .map(|r| r.triples.iter().filter_map(flatten).collect())
        .unwrap_or_default();
    out.sort_unstable();
    out
}

fn naive_pos(kg: &KnowledgeGraph, pred: Symbol, value: &Value) -> Vec<EntityId> {
    let mut out: Vec<EntityId> = kg
        .entities()
        .filter(|r| {
            r.triples
                .iter()
                .filter_map(flatten)
                .any(|(p, v)| p == pred && &v == value)
        })
        .map(|r| r.id)
        .collect();
    out.sort_unstable();
    out
}

fn naive_osp(kg: &KnowledgeGraph, target: EntityId) -> Vec<EntityId> {
    let mut out: Vec<EntityId> = kg
        .entities()
        .filter(|r| {
            r.triples
                .iter()
                .filter_map(flatten)
                .any(|(_, v)| v == Value::Entity(target))
        })
        .map(|r| r.id)
        .collect();
    out.sort_unstable();
    out
}

fn naive_tokens(kg: &KnowledgeGraph, needle: &str) -> Vec<EntityId> {
    let name_sym = intern("name");
    let alias_sym = intern("alias");
    let mut out: Vec<EntityId> = kg
        .entities()
        .filter(|r| {
            r.triples
                .iter()
                .filter_map(flatten)
                .filter(|(p, _)| *p == name_sym || *p == alias_sym)
                .any(|(_, v)| match v {
                    Value::Str(s) => name_tokens(&s).iter().any(|t| t == needle),
                    _ => false,
                })
        })
        .map(|r| r.id)
        .collect();
    out.sort_unstable();
    out
}

fn assert_index_matches_naive_scan(kg: &KnowledgeGraph, seed_label: &str) {
    let index = kg.index();
    // SPO: per-subject flattened multisets agree.
    for id in (1..16).map(EntityId) {
        let mut got: Vec<(Symbol, Value)> =
            index.facts_of(id).map(|(p, v)| (p, v.clone())).collect();
        got.sort_unstable();
        assert_eq!(
            got,
            naive_facts(kg, id),
            "{seed_label}: SPO mismatch for {id}"
        );
    }
    // POS: probe every (predicate, value) pair that occurs anywhere, plus a
    // few guaranteed misses.
    let mut pairs: Vec<(Symbol, Value)> = kg
        .entities()
        .flat_map(|r| r.triples.iter().filter_map(flatten))
        .collect();
    pairs.push((intern("name"), Value::str("No Such Name")));
    pairs.push((intern("never_used"), Value::Int(0)));
    pairs.sort_unstable();
    pairs.dedup();
    for (pred, value) in &pairs {
        assert_eq!(
            index.by_literal(*pred, value),
            naive_pos(kg, *pred, value),
            "{seed_label}: POS mismatch for ({pred}, {value})"
        );
    }
    // OSP: reverse references for every possible target.
    for target in (1..16).map(EntityId) {
        assert_eq!(
            index.referencing(target),
            naive_osp(kg, target),
            "{seed_label}: OSP mismatch for {target}"
        );
    }
    // Derived name-token postings.
    for name in NAMES {
        for token in name_tokens(name) {
            assert_eq!(
                index.by_name(&token),
                naive_tokens(kg, &token),
                "{seed_label}: token mismatch for {token:?}"
            );
        }
    }
    // Type postings.
    for ty in TYPES {
        assert_eq!(
            index.by_type(intern(ty)),
            naive_pos(kg, intern("type"), &Value::str(ty)),
            "{seed_label}: type mismatch for {ty}"
        );
    }
}

#[test]
fn random_interleavings_match_naive_scans() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let mut kg = KnowledgeGraph::new();
        for step in 0..120 {
            random_op(&mut rng, &mut kg);
            // Check at a sampled cadence (every op would be O(n²) overall).
            if step % 30 == 29 {
                assert_index_matches_naive_scan(&kg, &format!("seed {seed} step {step}"));
            }
        }
        assert_index_matches_naive_scan(&kg, &format!("seed {seed} final"));
    }
}

#[test]
fn delta_feed_replay_reproduces_the_index() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xD417A ^ seed);
        let mut kg = KnowledgeGraph::new();
        let mut feed: Vec<Delta> = Vec::new();
        for _ in 0..150 {
            random_op(&mut rng, &mut kg);
            feed.extend(kg.drain_deltas());
        }
        let mut replayed = TripleIndex::new();
        for delta in &feed {
            replayed.apply(delta);
        }
        let index = kg.index();
        assert_eq!(
            replayed.fact_count(),
            index.fact_count(),
            "seed {seed}: fact counts"
        );
        assert_eq!(
            replayed.entity_count(),
            index.entity_count(),
            "seed {seed}: entity counts"
        );
        for id in (1..16).map(EntityId) {
            let mut a: Vec<(Symbol, Value)> =
                replayed.facts_of(id).map(|(p, v)| (p, v.clone())).collect();
            let mut b: Vec<(Symbol, Value)> =
                index.facts_of(id).map(|(p, v)| (p, v.clone())).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "seed {seed}: replayed SPO for {id}");
            assert_eq!(
                replayed.referencing(id),
                index.referencing(id),
                "seed {seed}: replayed OSP for {id}"
            );
        }
        for name in NAMES {
            for token in name_tokens(name) {
                assert_eq!(
                    replayed.by_name(&token),
                    index.by_name(&token),
                    "seed {seed}: replayed token {token:?}"
                );
            }
        }
    }
}
