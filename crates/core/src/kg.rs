//! The in-memory canonical knowledge graph.
//!
//! `KnowledgeGraph` is the base data that the construction pipeline (sole
//! producer, §3.1) updates and from which every store in the Graph Engine
//! derives its view. It owns:
//!
//! * the entity records (all extended triples, grouped by subject),
//! * the `same_as` link table mapping `(source, local id)` → KG entity
//!   (full provenance of the linking process, §2.3 step 5),
//! * non-destructive integration primitives: provenance-merging upserts,
//!   per-source retraction (on-demand deletion) and volatile-partition
//!   overwrite (§2.4),
//! * the unified [`TripleIndex`], maintained incrementally on every
//!   mutation.
//!
//! Every mutation computes a [`Delta`] and hands it to its caller — the
//! staged commit path folds them into the
//! [`CommitReceipt`](crate::CommitReceipt), and the write-ahead writer
//! ships them through the durable oplog. Derived stores follow that log
//! (§3.1); the KG itself retains no in-process changelog.

use std::sync::Arc;

use crate::index::{Delta, TripleIndex};
use crate::well_known;
use crate::{
    intern, EntityId, EntityRecord, ExtendedTriple, FxHashMap, FxHashSet, SourceId, Symbol, Value,
};

/// Aggregate statistics about the KG (drives the Fig. 12 growth experiment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KgStats {
    /// Number of canonical entities.
    pub entities: usize,
    /// Number of extended-triple facts.
    pub facts: usize,
    /// Number of `same_as` source links.
    pub links: usize,
}

/// The canonical knowledge graph.
///
/// All mutation funnels through the transactional
/// [`GraphWrite`](crate::GraphWrite) commit point (see
/// [`crate::write`]); the crate-internal mutators below are its
/// implementation substrate and the direct path the in-crate equivalence
/// property tests compare against.
#[derive(Clone, Debug, Default)]
pub struct KnowledgeGraph {
    pub(crate) entities: FxHashMap<EntityId, EntityRecord>,
    /// `same_as` provenance: which source entity maps to which KG entity.
    pub(crate) links: FxHashMap<(SourceId, Arc<str>), EntityId>,
    /// The unified triple index, maintained incrementally by every mutator.
    index: TripleIndex,
    /// Monotone read-visible-change counter (see [`generation`](Self::generation)).
    generation: u64,
}

impl KnowledgeGraph {
    /// An empty KG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Total number of facts across all entities.
    pub fn fact_count(&self) -> usize {
        self.entities.values().map(EntityRecord::fact_count).sum()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> KgStats {
        KgStats {
            entities: self.entity_count(),
            facts: self.fact_count(),
            links: self.links.len(),
        }
    }

    /// Fetch an entity record.
    pub fn entity(&self, id: EntityId) -> Option<&EntityRecord> {
        self.entities.get(&id)
    }

    /// Mutate an entity record in place, then reconcile the index with
    /// whatever the closure did. Returns `false` if the entity is unknown.
    ///
    /// Crate-internal: producers stage edits through
    /// [`WriteBatch::mutate`](crate::WriteBatch::mutate) instead, which
    /// folds the resulting delta into the commit receipt.
    /// Reference semantics for the staged commit path — exercised by the
    /// in-crate equivalence property tests; production writers commit
    /// through [`GraphWrite`](crate::GraphWrite).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn mutate_entity(
        &mut self,
        id: EntityId,
        f: impl FnOnce(&mut EntityRecord),
    ) -> bool {
        match self.entities.get_mut(&id) {
            Some(record) => {
                f(record);
                self.reindex_entity(id);
                true
            }
            None => false,
        }
    }

    /// Re-derive the index entries of one entity from its current record
    /// (diff-based — unchanged facts are untouched). Records the delta.
    /// Reference semantics for the staged commit path — exercised by the
    /// in-crate equivalence property tests; production writers commit
    /// through [`GraphWrite`](crate::GraphWrite).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn reindex_entity(&mut self, id: EntityId) -> Delta {
        let delta = match self.entities.get(&id) {
            Some(record) => {
                let now_empty = record.triples.is_empty();
                let delta = self.index.update_entity(record);
                // An entity whose record went empty is dropped entirely,
                // matching the retraction paths' behaviour.
                if now_empty {
                    self.entities.remove(&id);
                }
                delta
            }
            None => self.index.remove_entity(id),
        };
        self.note_delta(&delta);
        delta
    }

    /// The unified triple index over this graph (SPO/POS/OSP probes).
    pub fn index(&self) -> &TripleIndex {
        &self.index
    }

    /// Mutable index access for the staged-commit apply path.
    pub(crate) fn index_mut(&mut self) -> &mut TripleIndex {
        &mut self.index
    }

    /// Monotone counter bumped on every mutation that changes what reads
    /// return — the [`GraphRead`](crate::GraphRead) plan-cache
    /// invalidation signal.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Account for one computed delta: bump the generation iff it changed
    /// anything a read can observe. The delta itself travels with the
    /// caller (commit receipt → oplog) — the KG retains nothing.
    pub(crate) fn note_delta(&mut self, delta: &Delta) {
        if !delta.is_empty() {
            self.generation += 1;
        }
    }

    /// Iterate all entity records.
    pub fn entities(&self) -> impl Iterator<Item = &EntityRecord> {
        self.entities.values()
    }

    /// Iterate all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.entities.keys().copied()
    }

    /// Iterate every fact in the graph.
    pub fn triples(&self) -> impl Iterator<Item = &ExtendedTriple> {
        self.entities.values().flat_map(|r| r.triples.iter())
    }

    /// True if the entity exists.
    pub fn contains(&self, id: EntityId) -> bool {
        self.entities.contains_key(&id)
    }

    /// Record a `same_as` link from a source entity to a KG entity.
    /// Crate-internal: stage links through
    /// [`WriteBatch::link`](crate::WriteBatch::link).
    /// Reference semantics for the staged commit path — exercised by the
    /// in-crate equivalence property tests; production writers commit
    /// through [`GraphWrite`](crate::GraphWrite).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn record_link(&mut self, source: SourceId, local_id: &str, kg: EntityId) {
        self.links.insert((source, Arc::from(local_id)), kg);
    }

    /// Look up the KG entity previously linked to `(source, local_id)`.
    ///
    /// This is the id-lookup fast path used for Updated/Deleted payloads
    /// (§2.4: "Updated/Deleted payloads contain entities that are previously
    /// linked, and so we only need to lookup their links in the current KG").
    pub fn lookup_link(&self, source: SourceId, local_id: &str) -> Option<EntityId> {
        self.links.get(&(source, Arc::from(local_id))).copied()
    }

    /// All links contributed by a source.
    pub fn links_for_source(&self, source: SourceId) -> Vec<(Arc<str>, EntityId)> {
        self.links
            .iter()
            .filter(|((s, _), _)| *s == source)
            .map(|((_, l), e)| (Arc::clone(l), *e))
            .collect()
    }

    /// Non-destructive fact upsert (fusion's outer-join semantics, §2.3):
    ///
    /// * If a fact with the same key *and the same object* exists, the new
    ///   provenance is merged into it (attribution is never lost).
    /// * Otherwise the fact is appended as new knowledge.
    ///
    /// Returns `true` if a brand-new fact was added.
    ///
    /// # Panics
    /// Panics if the triple's subject is not a KG entity — only linked
    /// payloads may be fused.
    pub(crate) fn upsert_fact(&mut self, triple: ExtendedTriple) -> bool {
        let id = triple
            .subject
            .as_kg()
            .expect("only linked (KG-subject) facts can be fused into the graph");
        let record = self
            .entities
            .entry(id)
            .or_insert_with(|| EntityRecord::new(id));
        let added: Vec<crate::DeltaFact> = crate::index::flatten(&triple)
            .map(|(predicate, object)| crate::DeltaFact { predicate, object })
            .into_iter()
            .collect();
        // Record-level outer join (shared with the staged commit path): a
        // provenance-only merge needs no index maintenance (the index is
        // object-level).
        if !record.upsert(triple) {
            return false;
        }
        let delta = Delta {
            entity: id,
            added,
            removed: Vec::new(),
        };
        self.index.apply(&delta);
        self.note_delta(&delta);
        true
    }

    /// Remove every attribution of `source`; facts left without provenance
    /// are dropped, and entities left without facts are dropped too.
    ///
    /// Implements on-demand data deletion / license-revocation (§1 challenge
    /// 2). Returns `(facts_dropped, entities_dropped)`.
    /// Reference semantics for the staged commit path — exercised by the
    /// in-crate equivalence property tests; production writers commit
    /// through [`GraphWrite`](crate::GraphWrite).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn retract_source(&mut self, source: SourceId) -> (usize, usize) {
        let mut facts_dropped = 0;
        let mut empty: Vec<EntityId> = Vec::new();
        let mut retracted: Vec<(EntityId, Vec<ExtendedTriple>)> = Vec::new();
        for (id, record) in self.entities.iter_mut() {
            let dropped = record.retract_source_facts(source, None);
            facts_dropped += dropped.len();
            if !dropped.is_empty() {
                retracted.push((*id, dropped));
            }
            if record.triples.is_empty() {
                empty.push(*id);
            }
        }
        for id in &empty {
            self.entities.remove(id);
        }
        for (id, dropped) in retracted {
            let delta = self.index.remove_facts(id, dropped.iter());
            self.note_delta(&delta);
        }
        self.links.retain(|(s, _), _| *s != source);
        (facts_dropped, empty.len())
    }

    /// Drop a specific source entity's contribution: used when a source's
    /// *Deleted* partition retracts one entity (§2.4).
    ///
    /// Facts whose only provenance was `(source)` on the linked KG entity
    /// are dropped; the `same_as` link is removed.
    /// Reference semantics for the staged commit path — exercised by the
    /// in-crate equivalence property tests; production writers commit
    /// through [`GraphWrite`](crate::GraphWrite).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn retract_source_entity(&mut self, source: SourceId, local_id: &str) -> usize {
        let Some(kg_id) = self.lookup_link(source, local_id) else {
            return 0;
        };
        let mut removed: Vec<ExtendedTriple> = Vec::new();
        if let Some(record) = self.entities.get_mut(&kg_id) {
            removed = record.retract_source_facts(source, None);
            if record.triples.is_empty() {
                self.entities.remove(&kg_id);
            }
        }
        if !removed.is_empty() {
            let delta = self.index.remove_facts(kg_id, removed.iter());
            self.note_delta(&delta);
        }
        self.links.remove(&(source, Arc::from(local_id)));
        removed.len()
    }

    /// Overwrite a source's *volatile* partition (§2.4): all facts from
    /// `source` whose predicate is in `volatile_predicates` are replaced by
    /// `fresh` in one pass, without per-fact joins.
    ///
    /// Returns the number of facts dropped (before inserting `fresh`).
    /// Reference semantics for the staged commit path — exercised by the
    /// in-crate equivalence property tests; production writers commit
    /// through [`GraphWrite`](crate::GraphWrite).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn overwrite_volatile_partition(
        &mut self,
        source: SourceId,
        volatile_predicates: &FxHashSet<Symbol>,
        fresh: Vec<ExtendedTriple>,
    ) -> usize {
        let mut dropped = 0;
        let mut retracted: Vec<(EntityId, Vec<ExtendedTriple>)> = Vec::new();
        for (id, record) in self.entities.iter_mut() {
            let gone = record.retract_source_facts(source, Some(volatile_predicates));
            dropped += gone.len();
            if !gone.is_empty() {
                retracted.push((*id, gone));
            }
        }
        for (id, gone) in retracted {
            let delta = self.index.remove_facts(id, gone.iter());
            self.note_delta(&delta);
        }
        for t in fresh {
            // Volatile facts about unknown entities are skipped: the stable
            // payload that creates the entity has not been fused yet.
            if let Some(id) = t.subject.as_kg() {
                if self.contains(id) {
                    self.upsert_fact(t);
                }
            }
        }
        dropped
    }

    /// Extract the sub-graph of entities with ontology type `entity_type` —
    /// the *KG view* the linker matches source payloads against (§2.3 step
    /// 1). Served from the index's type postings, not a graph scan.
    pub fn entities_of_type(&self, entity_type: Symbol) -> Vec<&EntityRecord> {
        self.index
            .by_type(entity_type)
            .iter()
            .filter_map(|id| self.entities.get(&id))
            .collect()
    }

    /// Resolve an entity by exact name or alias (case-sensitive).
    ///
    /// Candidates come from the index's (lowercased) full-phrase posting;
    /// the exact-case filter runs only over that short list.
    pub fn find_by_name(&self, name: &str) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = self
            .index
            .by_name(&name.to_lowercase())
            .iter()
            .filter_map(|id| self.entities.get(&id))
            .filter(|r| r.all_names().iter().any(|n| &**n == name))
            .map(|r| r.id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Build a simple adjacency list over resolved entity references —
    /// the structural graph used by PageRank and embeddings.
    pub fn adjacency(&self) -> FxHashMap<EntityId, Vec<EntityId>> {
        let mut adj: FxHashMap<EntityId, Vec<EntityId>> = FxHashMap::default();
        for record in self.entities.values() {
            let entry = adj.entry(record.id).or_default();
            for (_, dst) in record.out_edges() {
                entry.push(dst);
            }
        }
        adj
    }

    /// The highest entity id present (to seed [`IdGenerator`](crate::IdGenerator)).
    pub fn max_entity_id(&self) -> Option<EntityId> {
        self.entities.keys().copied().max()
    }

    /// Convenience: add a named entity with a type, returning its record.
    ///
    /// Used pervasively by tests, examples and workload generators.
    pub fn add_named_entity(
        &mut self,
        id: EntityId,
        name: &str,
        entity_type: &str,
        source: SourceId,
        trust: f32,
    ) -> &mut EntityRecord {
        let name_fact = ExtendedTriple::simple(
            id,
            intern(well_known::NAME),
            Value::str(name),
            crate::FactMeta::from_source(source, trust),
        );
        let type_fact = ExtendedTriple::simple(
            id,
            intern(well_known::TYPE),
            Value::str(entity_type),
            crate::FactMeta::from_source(source, trust),
        );
        self.upsert_fact(name_fact);
        self.upsert_fact(type_fact);
        self.entities.get_mut(&id).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FactMeta, RelId, SubjectRef};

    fn meta(src: u32) -> FactMeta {
        FactMeta::from_source(SourceId(src), 0.9)
    }

    #[test]
    fn upsert_merges_provenance_for_identical_facts() {
        let mut kg = KnowledgeGraph::new();
        let t1 = ExtendedTriple::simple(EntityId(1), intern("name"), Value::str("X"), meta(1));
        let t2 = ExtendedTriple::simple(EntityId(1), intern("name"), Value::str("X"), meta(2));
        assert!(kg.upsert_fact(t1));
        assert!(
            !kg.upsert_fact(t2),
            "same key+object merges, not duplicates"
        );
        let rec = kg.entity(EntityId(1)).unwrap();
        assert_eq!(rec.fact_count(), 1);
        assert_eq!(rec.triples[0].meta.source_count(), 2);
    }

    #[test]
    fn upsert_adds_new_fact_for_different_object() {
        let mut kg = KnowledgeGraph::new();
        kg.upsert_fact(ExtendedTriple::simple(
            EntityId(1),
            intern("alias"),
            Value::str("A"),
            meta(1),
        ));
        kg.upsert_fact(ExtendedTriple::simple(
            EntityId(1),
            intern("alias"),
            Value::str("B"),
            meta(1),
        ));
        assert_eq!(kg.entity(EntityId(1)).unwrap().fact_count(), 2);
    }

    #[test]
    #[should_panic(expected = "linked")]
    fn upsert_rejects_unlinked_subjects() {
        let mut kg = KnowledgeGraph::new();
        let t = ExtendedTriple::simple(
            SubjectRef::source(SourceId(1), "m1"),
            intern("name"),
            Value::str("X"),
            meta(1),
        );
        kg.upsert_fact(t);
    }

    #[test]
    fn retract_source_drops_orphans_and_empty_entities() {
        let mut kg = KnowledgeGraph::new();
        // fact held by two sources survives; single-source fact dies.
        let mut shared =
            ExtendedTriple::simple(EntityId(1), intern("name"), Value::str("X"), meta(1));
        shared.meta.merge_source(SourceId(2), 0.8);
        kg.upsert_fact(shared);
        kg.upsert_fact(ExtendedTriple::simple(
            EntityId(1),
            intern("born"),
            Value::Int(1990),
            meta(1),
        ));
        kg.upsert_fact(ExtendedTriple::simple(
            EntityId(2),
            intern("name"),
            Value::str("Y"),
            meta(1),
        ));
        kg.record_link(SourceId(1), "y", EntityId(2));

        let (facts, entities) = kg.retract_source(SourceId(1));
        assert_eq!(facts, 2, "born(X) and name(Y) orphaned");
        assert_eq!(entities, 1, "entity 2 fully dropped");
        assert!(kg.contains(EntityId(1)));
        assert!(!kg.contains(EntityId(2)));
        assert_eq!(kg.lookup_link(SourceId(1), "y"), None);
        let rec = kg.entity(EntityId(1)).unwrap();
        assert_eq!(rec.fact_count(), 1);
        assert!(!rec.triples[0].meta.has_source(SourceId(1)));
    }

    #[test]
    fn retract_source_entity_targets_one_link() {
        let mut kg = KnowledgeGraph::new();
        kg.upsert_fact(ExtendedTriple::simple(
            EntityId(1),
            intern("name"),
            Value::str("X"),
            meta(1),
        ));
        kg.upsert_fact(ExtendedTriple::simple(
            EntityId(2),
            intern("name"),
            Value::str("Y"),
            meta(1),
        ));
        kg.record_link(SourceId(1), "x", EntityId(1));
        kg.record_link(SourceId(1), "y", EntityId(2));

        let dropped = kg.retract_source_entity(SourceId(1), "x");
        assert_eq!(dropped, 1);
        assert!(!kg.contains(EntityId(1)));
        assert!(kg.contains(EntityId(2)), "other entity untouched");
        assert_eq!(kg.lookup_link(SourceId(1), "y"), Some(EntityId(2)));
    }

    #[test]
    fn volatile_partition_overwrite_replaces_without_joins() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "Song A", "song", SourceId(1), 0.9);
        let pop = intern(well_known::POPULARITY);
        kg.upsert_fact(ExtendedTriple::simple(
            EntityId(1),
            pop,
            Value::Int(10),
            meta(1),
        ));

        let mut volatile = FxHashSet::default();
        volatile.insert(pop);
        let fresh = vec![ExtendedTriple::simple(
            EntityId(1),
            pop,
            Value::Int(999),
            meta(1),
        )];
        let dropped = kg.overwrite_volatile_partition(SourceId(1), &volatile, fresh);
        assert_eq!(dropped, 1);
        let rec = kg.entity(EntityId(1)).unwrap();
        assert_eq!(rec.values(pop), vec![&Value::Int(999)]);
        // Stable facts (name/type) untouched.
        assert_eq!(rec.name(), Some("Song A"));
    }

    #[test]
    fn volatile_overwrite_skips_unknown_entities() {
        let mut kg = KnowledgeGraph::new();
        let pop = intern(well_known::POPULARITY);
        let mut volatile = FxHashSet::default();
        volatile.insert(pop);
        let fresh = vec![ExtendedTriple::simple(
            EntityId(77),
            pop,
            Value::Int(1),
            meta(1),
        )];
        kg.overwrite_volatile_partition(SourceId(1), &volatile, fresh);
        assert!(!kg.contains(EntityId(77)));
    }

    #[test]
    fn entities_of_type_extracts_kg_view() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "A", "music_artist", SourceId(1), 0.9);
        kg.add_named_entity(EntityId(2), "B", "song", SourceId(1), 0.9);
        kg.add_named_entity(EntityId(3), "C", "music_artist", SourceId(1), 0.9);
        let artists = kg.entities_of_type(intern("music_artist"));
        let mut ids: Vec<EntityId> = artists.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![EntityId(1), EntityId(3)]);
    }

    #[test]
    fn stats_and_find_by_name() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(
            EntityId(1),
            "Billie Eilish",
            "music_artist",
            SourceId(1),
            0.9,
        );
        kg.record_link(SourceId(1), "a1", EntityId(1));
        let s = kg.stats();
        assert_eq!(s.entities, 1);
        assert_eq!(s.facts, 2);
        assert_eq!(s.links, 1);
        assert_eq!(kg.find_by_name("Billie Eilish"), vec![EntityId(1)]);
        assert!(kg.find_by_name("nobody").is_empty());
    }

    #[test]
    fn adjacency_reflects_out_edges() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "A", "person", SourceId(1), 0.9);
        kg.add_named_entity(EntityId(2), "B", "person", SourceId(1), 0.9);
        kg.upsert_fact(ExtendedTriple::simple(
            EntityId(1),
            intern("spouse"),
            Value::Entity(EntityId(2)),
            meta(1),
        ));
        let adj = kg.adjacency();
        assert_eq!(adj[&EntityId(1)], vec![EntityId(2)]);
        assert!(adj[&EntityId(2)].is_empty());
    }

    #[test]
    fn volatile_overwrite_churn_keeps_dictionary_bounded() {
        let mut kg = KnowledgeGraph::new();
        kg.add_named_entity(EntityId(1), "Song A", "song", SourceId(1), 0.9);
        kg.add_named_entity(EntityId(2), "Song B", "song", SourceId(1), 0.9);
        let pop = intern(well_known::POPULARITY);
        let mut volatile = FxHashSet::default();
        volatile.insert(pop);
        for cycle in 0..500i64 {
            let fresh = vec![
                ExtendedTriple::simple(EntityId(1), pop, Value::Int(cycle), meta(1)),
                ExtendedTriple::simple(EntityId(2), pop, Value::Int(cycle + 7), meta(1)),
            ];
            kg.overwrite_volatile_partition(SourceId(1), &volatile, fresh);
        }
        // Live entries: 2 names + 1 shared type + 2 current popularity ints.
        assert_eq!(kg.index().obj_dict_len(), 5);
        assert!(
            kg.index().obj_dict_slots() <= 8,
            "per-cycle ints must be recycled, not accumulated: {} slots",
            kg.index().obj_dict_slots()
        );
    }

    #[test]
    fn composite_facts_upsert_by_rel_identity() {
        let mut kg = KnowledgeGraph::new();
        let edu = intern("educated_at");
        kg.upsert_fact(ExtendedTriple::composite(
            EntityId(1),
            edu,
            RelId(1),
            intern("school"),
            Value::str("UW"),
            meta(1),
        ));
        // Same facet+object from another source merges.
        assert!(!kg.upsert_fact(ExtendedTriple::composite(
            EntityId(1),
            edu,
            RelId(1),
            intern("school"),
            Value::str("UW"),
            meta(2),
        )));
        // Different rel node is a new fact.
        assert!(kg.upsert_fact(ExtendedTriple::composite(
            EntityId(1),
            edu,
            RelId(2),
            intern("school"),
            Value::str("UW"),
            meta(2),
        )));
        assert_eq!(kg.entity(EntityId(1)).unwrap().fact_count(), 2);
    }
}
