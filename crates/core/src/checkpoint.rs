//! Checkpoint artifacts: a serialized [`TripleIndex`] snapshot at a
//! watermark LSN.
//!
//! §3.1 of the paper keeps every derived store consistent by replaying one
//! shared operation log — but replay alone makes bootstrap `O(all
//! history)`. A checkpoint bounds that: it captures everything a
//! `GraphRead`-serving store derives from the log *up to* a watermark, so
//! a fresh replica loads `latest checkpoint + log tail` in time
//! proportional to live data. See `docs/checkpoint.md` for the full
//! contract.
//!
//! # Artifact format (version 1)
//!
//! ```text
//! SAGACKPT 1\n                      magic + format version (text line)
//! {"version":1,...}\n               manifest (one compact JSON line)
//! <binary section bytes…>           concatenated, in manifest order
//! ```
//!
//! The manifest names each section with its byte length and FNV-1a 64
//! checksum (hex); the sections are `symbols` (predicate/dictionary
//! strings), `objects` (the live object-value table), `records` (the SPO
//! columns), and the three posting families `pos`, `osp`, `tokens`. All
//! posting lists are written **block-wise** through
//! [`BlockPostings::write_bytes`] — the compressed containers are copied
//! byte-for-byte, never decompressed.
//!
//! # Durability and torn-write recovery
//!
//! [`publish`] writes to a temporary name, fsyncs, then atomically renames
//! into `ckpt-<watermark>.sagackpt` and fsyncs the directory — mirroring
//! the oplog's torn-tail discipline at the artifact level. A reader
//! ([`load`]) re-verifies the magic, the manifest, every section length
//! and checksum, and every structural invariant of the decoded postings;
//! a torn or corrupt artifact is an error, and [`load_latest`] skips it in
//! favor of the newest artifact that does verify.
//!
//! Checkpoints are pure functions of the log prefix they cover, so any
//! number of them may coexist; retention ([`prune`]) keeps the newest N.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::index::ObjId;
use crate::json::{self, Json};
use crate::postings::BlockPostings;
use crate::{intern, EntityId, FxHashMap, Lsn, Result, SagaError, Symbol, TripleIndex, Value};

/// Artifact format version this module writes and understands.
pub const FORMAT_VERSION: u64 = 1;

/// Magic first line of every artifact.
const MAGIC: &str = "SAGACKPT 1";

/// File extension of a published artifact.
const EXTENSION: &str = "sagackpt";

/// Section names, in artifact order.
const SECTIONS: [&str; 6] = ["symbols", "objects", "records", "pos", "osp", "tokens"];

fn err(msg: impl Into<String>) -> SagaError {
    SagaError::Storage(format!("checkpoint: {}", msg.into()))
}

/// FNV-1a 64 — the per-section checksum. Hand-rolled and dependency-free;
/// collision resistance is not the goal, torn/bit-rot detection is.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Varint + value codec (section payloads)
// ---------------------------------------------------------------------

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

fn take_varint(bytes: &[u8], at: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*at).ok_or_else(|| err("truncated section"))?;
        *at += 1;
        if shift >= 64 {
            return Err(err("varint overflow"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn take_slice<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8]> {
    let end = at
        .checked_add(n)
        .filter(|&end| end <= bytes.len())
        .ok_or_else(|| err("truncated section"))?;
    let s = &bytes[*at..end];
    *at = end;
    Ok(s)
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    push_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn take_str<'a>(bytes: &'a [u8], at: &mut usize) -> Result<&'a str> {
    let n = take_varint(bytes, at)? as usize;
    std::str::from_utf8(take_slice(bytes, at, n)?).map_err(|_| err("invalid utf-8 string"))
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_value(buf: &mut Vec<u8>, value: &Value) {
    buf.push(value.kind_tag());
    match value {
        Value::Null => {}
        Value::Bool(b) => buf.push(u8::from(*b)),
        Value::Int(i) => push_varint(buf, zigzag(*i)),
        Value::Float(f) => buf.extend_from_slice(&f.to_bits().to_le_bytes()),
        Value::Str(s) => push_str(buf, s),
        Value::Entity(e) => push_varint(buf, e.0),
        Value::SourceRef(s) => push_str(buf, s),
    }
}

fn take_value(bytes: &[u8], at: &mut usize) -> Result<Value> {
    let tag = *bytes.get(*at).ok_or_else(|| err("truncated section"))?;
    *at += 1;
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Bool(take_slice(bytes, at, 1)?[0] != 0),
        2 => Value::Int(unzigzag(take_varint(bytes, at)?)),
        3 => Value::Float(f64::from_bits(u64::from_le_bytes(
            take_slice(bytes, at, 8)?.try_into().unwrap(),
        ))),
        4 => Value::str(take_str(bytes, at)?),
        5 => Value::Entity(EntityId(take_varint(bytes, at)?)),
        6 => Value::source_ref(take_str(bytes, at)?),
        _ => return Err(err("unknown value tag")),
    })
}

// ---------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------

/// A fully rendered artifact, ready to [`publish`]. Encoding happens
/// in-memory so a producer can snapshot under its read lock and do the
/// file IO after releasing it.
pub struct CheckpointImage {
    watermark: Lsn,
    bytes: Vec<u8>,
}

impl CheckpointImage {
    /// The LSN this image covers (every op `<= watermark` is baked in).
    pub fn watermark(&self) -> Lsn {
        self.watermark
    }

    /// Rendered artifact size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the artifact is empty (it never is — magic + manifest).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Serialize `index` as a checkpoint image at `watermark`. Pure in-memory
/// assembly: posting lists are copied block-wise in their compressed form.
pub fn encode(watermark: Lsn, index: &TripleIndex) -> CheckpointImage {
    // Symbol table: every predicate appearing in a column or posting key,
    // sorted by text so the artifact is deterministic for a given index
    // content regardless of interning order.
    let mut symbols: Vec<Symbol> = Vec::new();
    {
        let mut seen: FxHashMap<Symbol, ()> = FxHashMap::default();
        for facts in index.spo.values() {
            for &(pred, _) in facts {
                seen.entry(pred).or_insert(());
            }
        }
        for &(pred, _) in index.pos.keys() {
            seen.entry(pred).or_insert(());
        }
        symbols.extend(seen.keys().copied());
        symbols.sort_by_key(|s| s.text());
    }
    let sym_index: FxHashMap<Symbol, u64> = symbols
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as u64))
        .collect();

    // Object table: live dictionary slots only, in slot order; `obj_index`
    // maps a source slot to its dense position in the artifact.
    let mut obj_index: Vec<u64> = vec![u64::MAX; index.obj_values.len()];
    let mut objects: Vec<&Value> = Vec::new();
    for (slot, refs) in index.obj_refs.iter().enumerate() {
        if *refs > 0 {
            obj_index[slot] = objects.len() as u64;
            objects.push(&index.obj_values[slot]);
        }
    }

    let mut sections: Vec<(&str, Vec<u8>)> = Vec::with_capacity(SECTIONS.len());

    let mut buf = Vec::new();
    push_varint(&mut buf, symbols.len() as u64);
    for sym in &symbols {
        push_str(&mut buf, &sym.text());
    }
    sections.push(("symbols", std::mem::take(&mut buf)));

    push_varint(&mut buf, objects.len() as u64);
    for value in &objects {
        push_value(&mut buf, value);
    }
    sections.push(("objects", std::mem::take(&mut buf)));

    // Records: SPO columns, entities ascending (delta-encoded ids).
    let mut entities: Vec<EntityId> = index.spo.keys().copied().collect();
    entities.sort_unstable();
    push_varint(&mut buf, entities.len() as u64);
    let mut prev = 0u64;
    for (i, &entity) in entities.iter().enumerate() {
        push_varint(&mut buf, if i == 0 { entity.0 } else { entity.0 - prev });
        prev = entity.0;
        let facts = &index.spo[&entity];
        push_varint(&mut buf, facts.len() as u64);
        for &(pred, obj) in facts {
            push_varint(&mut buf, sym_index[&pred]);
            push_varint(&mut buf, obj_index[obj.0 as usize]);
        }
    }
    sections.push(("records", std::mem::take(&mut buf)));

    // POS postings, sorted by (symbol index, object index).
    let mut pos: Vec<(u64, u64, &BlockPostings)> = index
        .pos
        .iter()
        .map(|(&(pred, obj), list)| (sym_index[&pred], obj_index[obj.0 as usize], list))
        .collect();
    pos.sort_unstable_by_key(|&(s, o, _)| (s, o));
    push_varint(&mut buf, pos.len() as u64);
    for (sym, obj, list) in pos {
        push_varint(&mut buf, sym);
        push_varint(&mut buf, obj);
        list.write_bytes(&mut buf);
    }
    sections.push(("pos", std::mem::take(&mut buf)));

    // OSP postings, sorted by target id.
    let mut osp: Vec<(EntityId, &BlockPostings)> =
        index.osp.iter().map(|(&t, list)| (t, list)).collect();
    osp.sort_unstable_by_key(|&(t, _)| t);
    push_varint(&mut buf, osp.len() as u64);
    for (target, list) in osp {
        push_varint(&mut buf, target.0);
        list.write_bytes(&mut buf);
    }
    sections.push(("osp", std::mem::take(&mut buf)));

    // Token postings, sorted by token text.
    let mut tokens: Vec<(&Arc<str>, &BlockPostings)> = index.tokens.iter().collect();
    tokens.sort_unstable_by_key(|&(t, _)| t);
    push_varint(&mut buf, tokens.len() as u64);
    for (token, list) in tokens {
        push_str(&mut buf, token);
        list.write_bytes(&mut buf);
    }
    sections.push(("tokens", std::mem::take(&mut buf)));

    // Manifest + concatenated payload.
    let mut section_meta = Vec::new();
    for (name, bytes) in &sections {
        let mut m = std::collections::BTreeMap::new();
        m.insert("name".to_string(), Json::str(*name));
        m.insert("len".to_string(), Json::Int(bytes.len() as i64));
        m.insert(
            "crc".to_string(),
            Json::Str(format!("{:016x}", fnv1a(bytes))),
        );
        section_meta.push(Json::Object(m));
    }
    let mut manifest = std::collections::BTreeMap::new();
    manifest.insert("version".to_string(), Json::Int(FORMAT_VERSION as i64));
    manifest.insert("watermark".to_string(), Json::Int(watermark.0 as i64));
    manifest.insert(
        "entities".to_string(),
        Json::Int(index.entity_count() as i64),
    );
    manifest.insert("facts".to_string(), Json::Int(index.fact_count() as i64));
    manifest.insert("sections".to_string(), Json::Array(section_meta));

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(Json::Object(manifest).to_string_compact().as_bytes());
    out.push(b'\n');
    for (_, bytes) in sections {
        out.extend_from_slice(&bytes);
    }
    CheckpointImage {
        watermark,
        bytes: out,
    }
}

// ---------------------------------------------------------------------
// Publish / enumerate / prune
// ---------------------------------------------------------------------

/// Artifact file name for a watermark (zero-padded so lexical order is
/// numeric order).
fn artifact_name(watermark: Lsn) -> String {
    format!("ckpt-{:020}.{}", watermark.0, EXTENSION)
}

/// Watermark parsed back out of an artifact file name.
fn parse_artifact_name(name: &str) -> Option<Lsn> {
    let rest = name.strip_prefix("ckpt-")?;
    let digits = rest.strip_suffix(&format!(".{EXTENSION}"))?;
    digits.parse::<u64>().ok().map(Lsn)
}

/// Atomically publish an image into `dir` (created if missing): write a
/// temporary file, fsync it, rename into place, fsync the directory. A
/// crash at any point leaves either no artifact or a complete one — the
/// torn-write discipline [`load`] assumes.
pub fn publish(dir: &Path, image: &CheckpointImage) -> Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let final_path = dir.join(artifact_name(image.watermark));
    let tmp_path = dir.join(format!("{}.tmp", artifact_name(image.watermark)));
    {
        let mut f = fs::File::create(&tmp_path)?;
        f.write_all(&image.bytes)?;
        f.sync_all()?;
    }
    // Fires after the temp write but before the rename: an injected
    // failure leaves a `.tmp` straggler and no new artifact — the torn
    // publish that discovery must skip.
    crate::failpoint!(crate::fail::sites::CHECKPOINT_PUBLISH);
    fs::rename(&tmp_path, &final_path)?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// One published artifact, by watermark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Watermark from the artifact file name (verified again on load).
    pub watermark: Lsn,
    /// Full path of the artifact.
    pub path: PathBuf,
}

/// Enumerate published artifacts in `dir`, watermark-ascending. Temporary
/// and foreign files are ignored; a missing directory is simply empty.
pub fn artifacts(dir: &Path) -> Result<Vec<CheckpointInfo>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(watermark) = parse_artifact_name(name) {
            out.push(CheckpointInfo {
                watermark,
                path: entry.path(),
            });
        }
    }
    out.sort_by_key(|info| info.watermark);
    Ok(out)
}

/// Delete all but the newest `keep_last` artifacts; returns the removed
/// paths. `keep_last == 0` removes everything.
pub fn prune(dir: &Path, keep_last: usize) -> Result<Vec<PathBuf>> {
    let all = artifacts(dir)?;
    let cut = all.len().saturating_sub(keep_last);
    let mut removed = Vec::with_capacity(cut);
    for info in &all[..cut] {
        fs::remove_file(&info.path)?;
        removed.push(info.path.clone());
    }
    Ok(removed)
}

// ---------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------

/// A verified, decoded checkpoint.
pub struct Checkpoint {
    /// The LSN the snapshot covers: replay resumes at `watermark + 1`.
    pub watermark: Lsn,
    /// The restored index (stamps reset; fingerprints are process-local).
    pub index: TripleIndex,
}

/// Load and fully verify one artifact. Every failure mode — truncation,
/// bit rot, manifest/section disagreement, malformed postings — is a
/// `SagaError::Storage`, never a panic or a silently wrong index.
pub fn load(path: &Path) -> Result<Checkpoint> {
    let mut raw = Vec::new();
    fs::File::open(path)?.read_to_end(&mut raw)?;

    // Header: magic line + manifest line.
    let magic_end = raw
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| err("missing magic line"))?;
    if &raw[..magic_end] != MAGIC.as_bytes() {
        return Err(err("bad magic (not a checkpoint or unsupported version)"));
    }
    let manifest_end = raw[magic_end + 1..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| magic_end + 1 + i)
        .ok_or_else(|| err("missing manifest line"))?;
    let manifest_text = std::str::from_utf8(&raw[magic_end + 1..manifest_end])
        .map_err(|_| err("manifest not utf-8"))?;
    let manifest = json::parse(manifest_text).map_err(|e| err(format!("manifest: {e}")))?;

    let version = manifest
        .get("version")
        .and_then(Json::as_i64)
        .ok_or_else(|| err("manifest missing version"))?;
    if version != FORMAT_VERSION as i64 {
        return Err(err(format!("unsupported format version {version}")));
    }
    let watermark = manifest
        .get("watermark")
        .and_then(Json::as_i64)
        .ok_or_else(|| err("manifest missing watermark"))?;
    let watermark = Lsn(u64::try_from(watermark).map_err(|_| err("negative watermark"))?);
    let declared = manifest
        .get("sections")
        .and_then(Json::as_array)
        .ok_or_else(|| err("manifest missing sections"))?;
    if declared.len() != SECTIONS.len() {
        return Err(err("unexpected section count"));
    }

    // Slice and checksum each section.
    let mut sections: FxHashMap<&str, &[u8]> = FxHashMap::default();
    let mut at = manifest_end + 1;
    for (decl, &expected_name) in declared.iter().zip(SECTIONS.iter()) {
        let name = decl
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| err("section missing name"))?;
        if name != expected_name {
            return Err(err(format!("unexpected section order: {name}")));
        }
        let len = decl
            .get("len")
            .and_then(Json::as_i64)
            .and_then(|l| usize::try_from(l).ok())
            .ok_or_else(|| err("section missing len"))?;
        let crc = decl
            .get("crc")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| err("section missing crc"))?;
        let end = at
            .checked_add(len)
            .filter(|&end| end <= raw.len())
            .ok_or_else(|| err(format!("section {expected_name} truncated")))?;
        let bytes = &raw[at..end];
        if fnv1a(bytes) != crc {
            return Err(err(format!("section {expected_name} checksum mismatch")));
        }
        sections.insert(expected_name, bytes);
        at = end;
    }
    if at != raw.len() {
        return Err(err("trailing bytes after last section"));
    }

    // Decode into a fresh index. Interning is per-process, so symbols and
    // object ids are rebuilt from the tables; the artifact's dense object
    // index doubles as the restored dictionary slot.
    let mut index = TripleIndex::new();

    let bytes = sections["symbols"];
    let mut at = 0usize;
    let nsyms = take_varint(bytes, &mut at)? as usize;
    let mut symbols: Vec<Symbol> = Vec::with_capacity(nsyms);
    for _ in 0..nsyms {
        symbols.push(intern(take_str(bytes, &mut at)?));
    }
    if at != bytes.len() {
        return Err(err("symbols section length mismatch"));
    }

    let bytes = sections["objects"];
    let mut at = 0usize;
    let nobjs = take_varint(bytes, &mut at)? as usize;
    if nobjs > u32::MAX as usize {
        return Err(err("object table too large"));
    }
    index.obj_values.reserve(nobjs);
    for i in 0..nobjs {
        let value = take_value(bytes, &mut at)?;
        index.obj_ids.insert(value.clone(), ObjId(i as u32));
        index.obj_values.push(value);
        index.obj_refs.push(0);
    }
    if index.obj_ids.len() != nobjs {
        return Err(err("duplicate object value in table"));
    }
    if at != bytes.len() {
        return Err(err("objects section length mismatch"));
    }

    let sym_at = |i: u64| -> Result<Symbol> {
        symbols
            .get(i as usize)
            .copied()
            .ok_or_else(|| err("symbol index out of range"))
    };
    let obj_at = |i: u64| -> Result<ObjId> {
        if (i as usize) < nobjs {
            Ok(ObjId(i as u32))
        } else {
            Err(err("object index out of range"))
        }
    };

    let bytes = sections["records"];
    let mut at = 0usize;
    let nents = take_varint(bytes, &mut at)? as usize;
    let mut prev = 0u64;
    for i in 0..nents {
        let delta = take_varint(bytes, &mut at)?;
        let entity = EntityId(if i == 0 { delta } else { prev + delta });
        prev = entity.0;
        let nfacts = take_varint(bytes, &mut at)? as usize;
        if nfacts == 0 {
            return Err(err("empty record column"));
        }
        let mut column: Vec<(Symbol, ObjId)> = Vec::with_capacity(nfacts);
        for _ in 0..nfacts {
            let pred = sym_at(take_varint(bytes, &mut at)?)?;
            let obj = obj_at(take_varint(bytes, &mut at)?)?;
            index.obj_refs[obj.0 as usize] += 1;
            column.push((pred, obj));
        }
        // Symbol/ObjId orderings are process-local — re-sort the column.
        column.sort_unstable();
        index.facts += column.len();
        if index.spo.insert(entity, column).is_some() {
            return Err(err("duplicate entity in records section"));
        }
    }
    if at != bytes.len() {
        return Err(err("records section length mismatch"));
    }
    if index.obj_refs.contains(&0) {
        return Err(err("object table entry referenced by no record"));
    }

    let bytes = sections["pos"];
    let mut at = 0usize;
    let nlists = take_varint(bytes, &mut at)? as usize;
    for _ in 0..nlists {
        let pred = sym_at(take_varint(bytes, &mut at)?)?;
        let obj = obj_at(take_varint(bytes, &mut at)?)?;
        let list = BlockPostings::read_bytes(bytes, &mut at)?;
        if list.is_empty() {
            return Err(err("empty posting list in pos section"));
        }
        if index.pos.insert((pred, obj), list).is_some() {
            return Err(err("duplicate pos key"));
        }
    }
    if at != bytes.len() {
        return Err(err("pos section length mismatch"));
    }

    let bytes = sections["osp"];
    let mut at = 0usize;
    let nlists = take_varint(bytes, &mut at)? as usize;
    for _ in 0..nlists {
        let target = EntityId(take_varint(bytes, &mut at)?);
        let list = BlockPostings::read_bytes(bytes, &mut at)?;
        if list.is_empty() || index.osp.insert(target, list).is_some() {
            return Err(err("bad osp entry"));
        }
    }
    if at != bytes.len() {
        return Err(err("osp section length mismatch"));
    }

    let bytes = sections["tokens"];
    let mut at = 0usize;
    let nlists = take_varint(bytes, &mut at)? as usize;
    for _ in 0..nlists {
        let token: Arc<str> = Arc::from(take_str(bytes, &mut at)?);
        let list = BlockPostings::read_bytes(bytes, &mut at)?;
        if list.is_empty() || index.tokens.insert(token, list).is_some() {
            return Err(err("bad token entry"));
        }
    }
    if at != bytes.len() {
        return Err(err("tokens section length mismatch"));
    }

    Ok(Checkpoint { watermark, index })
}

/// Load the newest artifact in `dir` that fully verifies, skipping torn
/// or corrupt ones. Returns the checkpoint and its path, or `None` when
/// no valid artifact exists (including a missing directory).
pub fn load_latest(dir: &Path) -> Result<Option<(Checkpoint, PathBuf)>> {
    for info in artifacts(dir)?.into_iter().rev() {
        match load(&info.path) {
            Ok(ckpt) => {
                if ckpt.watermark != info.watermark {
                    // Name/manifest disagreement: treat as corrupt.
                    continue;
                }
                return Ok(Some((ckpt, info.path)));
            }
            Err(_) => continue,
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EntityRecord, ExtendedTriple, FactMeta, ProbeKey, SourceId};

    fn meta() -> FactMeta {
        FactMeta::from_source(SourceId(1), 0.9)
    }

    fn sample_index(n: u64) -> TripleIndex {
        let mut idx = TripleIndex::new();
        for i in 1..=n {
            let mut r = EntityRecord::new(EntityId(i));
            let mut push = |pred: &str, value: Value| {
                r.triples.push(ExtendedTriple::simple(
                    EntityId(i),
                    intern(pred),
                    value,
                    meta(),
                ));
            };
            push("name", Value::str(format!("Entity Number {i}")));
            push(
                "type",
                Value::str(if i % 2 == 0 { "song" } else { "album" }),
            );
            push("rank", Value::Int((i % 17) as i64));
            push("score", Value::Float(i as f64 / 3.0));
            push("related_to", Value::Entity(EntityId(i % 50 + 1)));
            idx.update_entity(&r);
        }
        idx
    }

    fn probes(idx: &TripleIndex) -> Vec<ProbeKey> {
        let mut out = vec![
            ProbeKey::Type(intern("song")),
            ProbeKey::Type(intern("album")),
            ProbeKey::Name("entity".into()),
            ProbeKey::Name("number".into()),
        ];
        for i in 0..17i64 {
            out.push(ProbeKey::Literal(intern("rank"), Value::Int(i)));
        }
        for t in 1..=50u64 {
            out.push(ProbeKey::Edge(intern("related_to"), EntityId(t)));
        }
        assert!(!idx.is_empty());
        out
    }

    fn assert_index_parity(a: &TripleIndex, b: &TripleIndex) {
        assert_eq!(a.fact_count(), b.fact_count());
        assert_eq!(a.entity_count(), b.entity_count());
        for probe in probes(a) {
            assert_eq!(
                a.postings(&probe).to_vec(),
                b.postings(&probe).to_vec(),
                "probe {probe:?}"
            );
        }
        let mut subjects: Vec<EntityId> = a.subjects().collect();
        subjects.sort_unstable();
        for id in subjects {
            let mut fa: Vec<(String, Value)> = a
                .facts_of(id)
                .map(|(p, v)| (p.to_string(), v.clone()))
                .collect();
            let mut fb: Vec<(String, Value)> = b
                .facts_of(id)
                .map(|(p, v)| (p.to_string(), v.clone()))
                .collect();
            fa.sort_unstable_by(|x, y| x.partial_cmp(y).unwrap());
            fb.sort_unstable_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(fa, fb, "facts of {id:?}");
        }
    }

    #[test]
    fn encode_publish_load_roundtrip() {
        let idx = sample_index(300);
        let dir = std::env::temp_dir().join(format!("saga-ckpt-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let image = encode(Lsn(42), &idx);
        let path = publish(&dir, &image).unwrap();
        assert!(path.ends_with("ckpt-00000000000000000042.sagackpt"));

        let ckpt = load(&path).unwrap();
        assert_eq!(ckpt.watermark, Lsn(42));
        assert_index_parity(&idx, &ckpt.index);

        // The restored index keeps evolving correctly.
        let mut restored = ckpt.index;
        let mut r = EntityRecord::new(EntityId(9999));
        r.triples.push(ExtendedTriple::simple(
            EntityId(9999),
            intern("name"),
            Value::str("Late Arrival"),
            meta(),
        ));
        restored.update_entity(&r);
        assert_eq!(restored.by_name("late").to_vec(), vec![EntityId(9999)]);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partitioned_restore_matches_source_shards() {
        let idx = sample_index(200);
        let image = encode(Lsn(7), &idx);
        let dir = std::env::temp_dir().join(format!("saga-ckpt-part-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = publish(&dir, &image).unwrap();
        let restored = load(&path).unwrap().index;
        let shards = restored.partition(4);
        assert_eq!(shards.len(), 4);
        assert_eq!(
            shards.iter().map(TripleIndex::fact_count).sum::<usize>(),
            idx.fact_count()
        );
        for probe in probes(&idx) {
            let mut union: Vec<EntityId> = shards
                .iter()
                .flat_map(|s| s.postings(&probe).to_vec())
                .collect();
            union.sort_unstable();
            assert_eq!(union, idx.postings(&probe).to_vec(), "probe {probe:?}");
        }
        for shard in &shards {
            for id in shard.subjects() {
                assert_eq!(
                    (id.0 as usize) % 4,
                    shards.iter().position(|s| s.contains(id)).unwrap()
                );
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_corrupt_artifacts_are_rejected_and_skipped() {
        let dir = std::env::temp_dir().join(format!("saga-ckpt-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let old = sample_index(50);
        let old_path = publish(&dir, &encode(Lsn(10), &old)).unwrap();

        // A newer artifact that was torn mid-write (truncated payload).
        let newer = encode(Lsn(20), &sample_index(80));
        let newer_path = publish(&dir, &newer).unwrap();
        let full = fs::read(&newer_path).unwrap();
        fs::write(&newer_path, &full[..full.len() - 7]).unwrap();
        assert!(load(&newer_path).is_err(), "torn artifact must not load");

        // load_latest falls back to the older valid artifact.
        let (ckpt, path) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(ckpt.watermark, Lsn(10));
        assert_eq!(path, old_path);
        assert_index_parity(&old, &ckpt.index);

        // A single flipped payload byte is caught by the section checksum.
        fs::write(&newer_path, &full).unwrap();
        assert!(load(&newer_path).is_ok());
        let mut corrupt = full.clone();
        let at = corrupt.len() - 3;
        corrupt[at] ^= 0x01;
        fs::write(&newer_path, &corrupt).unwrap();
        assert!(load(&newer_path).is_err(), "bit rot must not load");
        assert_eq!(load_latest(&dir).unwrap().unwrap().0.watermark, Lsn(10));

        // Garbage that is not an artifact at all.
        fs::write(&newer_path, b"not a checkpoint").unwrap();
        assert!(load(&newer_path).is_err());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifacts_and_prune_enforce_retention() {
        let dir = std::env::temp_dir().join(format!("saga-ckpt-prune-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert!(artifacts(&dir).unwrap().is_empty(), "missing dir is empty");
        let idx = sample_index(10);
        for w in [5u64, 1, 9, 3] {
            publish(&dir, &encode(Lsn(w), &idx)).unwrap();
        }
        // A stray temp file and a foreign file are ignored.
        fs::write(dir.join("ckpt-00000000000000000099.sagackpt.tmp"), b"x").unwrap();
        fs::write(dir.join("README"), b"x").unwrap();
        let listed: Vec<u64> = artifacts(&dir)
            .unwrap()
            .iter()
            .map(|i| i.watermark.0)
            .collect();
        assert_eq!(listed, vec![1, 3, 5, 9], "watermark-ascending");

        let removed = prune(&dir, 2).unwrap();
        assert_eq!(removed.len(), 2);
        let listed: Vec<u64> = artifacts(&dir)
            .unwrap()
            .iter()
            .map(|i| i.watermark.0)
            .collect();
        assert_eq!(listed, vec![5, 9], "newest two kept");
        assert_eq!(load_latest(&dir).unwrap().unwrap().0.watermark, Lsn(9));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_index_checkpoints_cleanly() {
        let dir = std::env::temp_dir().join(format!("saga-ckpt-empty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let idx = TripleIndex::new();
        let path = publish(&dir, &encode(Lsn(0), &idx)).unwrap();
        let ckpt = load(&path).unwrap();
        assert_eq!(ckpt.watermark, Lsn::ZERO);
        assert!(ckpt.index.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
