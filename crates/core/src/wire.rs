//! Stable wire representation of the change feed.
//!
//! §3.1's distributed shared log only works as a synchronization substrate
//! if every store can decode what it ships. In-process, a [`Delta`] is
//! compact but *process-local*: predicates are interned
//! [`Symbol`](crate::Symbol)s and object values may reference interner state that
//! another process (or a restarted one) does not share. This module defines
//! the self-contained form the durable oplog persists — predicate *names*
//! plus typed object values — so a log follower can rebuild a replica
//! without access to the producer's interner or its `KnowledgeGraph`.
//!
//! # Format
//!
//! A [`Delta`] serializes to one JSON object:
//!
//! ```json
//! {"entity":17,"add":[["name","Billie Eilish"],["born",2001]],"del":[["popularity",88]]}
//! ```
//!
//! Each fact is a two-element array `[predicate, object]`. Scalar objects
//! use the natural JSON encoding (string / int / float / bool / null);
//! the two reference kinds and non-finite floats need a tagged object:
//!
//! | value | wire form |
//! |---|---|
//! | `Value::Entity(AKG:9)` | `{"e":9}` |
//! | `Value::SourceRef("m42")` | `{"r":"m42"}` |
//! | `Value::Float(NaN / ±∞)` | `{"f":"nan"}` / `{"f":"inf"}` / `{"f":"-inf"}` |
//!
//! The encoding is lossless for every value the index can carry (deltas
//! never contain `Null` objects — [`flatten`](crate::index::flatten) filters
//! them — but the codec round-trips them anyway). Provenance is *not* part
//! of the wire form: the log records what changed in the index vocabulary,
//! which is exactly what derived stores consume; attribution stays in the
//! canonical KG.

use crate::json::Json;
use crate::{intern, Delta, DeltaFact, EntityId, Lsn, Result, SagaError, SessionToken, Value};

fn bad(msg: impl Into<String>) -> SagaError {
    SagaError::Storage(format!("bad wire value: {}", msg.into()))
}

/// Encode one object value into its wire JSON form (see module docs).
pub fn value_to_json(value: &Value) -> Json {
    match value {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) if f.is_finite() => Json::Float(*f),
        Value::Float(f) => {
            let tag = if f.is_nan() {
                "nan"
            } else if *f > 0.0 {
                "inf"
            } else {
                "-inf"
            };
            Json::Object([("f".to_string(), Json::str(tag))].into())
        }
        Value::Str(s) => Json::str(s),
        Value::Entity(e) => Json::Object(
            [(
                "e".to_string(),
                Json::Int(i64::try_from(e.0).expect("entity id exceeds wire range")),
            )]
            .into(),
        ),
        Value::SourceRef(s) => Json::Object([("r".to_string(), Json::str(s))].into()),
    }
}

/// Decode an object value from its wire JSON form.
pub fn value_from_json(json: &Json) -> Result<Value> {
    match json {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Float(f) => Ok(Value::Float(*f)),
        Json::Str(s) => Ok(Value::str(s)),
        Json::Object(map) => {
            let (tag, inner) = map.iter().next().ok_or_else(|| bad("empty tagged value"))?;
            if map.len() != 1 {
                return Err(bad("tagged value with multiple keys"));
            }
            match tag.as_str() {
                "e" => {
                    let id = inner.as_i64().ok_or_else(|| bad("entity tag payload"))?;
                    let id = u64::try_from(id).map_err(|_| bad("negative entity id"))?;
                    Ok(Value::Entity(EntityId(id)))
                }
                "r" => {
                    let s = inner.as_str().ok_or_else(|| bad("source-ref payload"))?;
                    Ok(Value::source_ref(s))
                }
                "f" => match inner.as_str() {
                    Some("nan") => Ok(Value::Float(f64::NAN)),
                    Some("inf") => Ok(Value::Float(f64::INFINITY)),
                    Some("-inf") => Ok(Value::Float(f64::NEG_INFINITY)),
                    _ => Err(bad("non-finite float tag")),
                },
                other => Err(bad(format!("unknown value tag {other}"))),
            }
        }
        Json::Array(_) => Err(bad("array is not a value")),
    }
}

fn fact_to_json(fact: &DeltaFact) -> Json {
    Json::Array(vec![
        Json::str(fact.predicate.text()),
        value_to_json(&fact.object),
    ])
}

fn fact_from_json(json: &Json) -> Result<DeltaFact> {
    let pair = json.as_array().ok_or_else(|| bad("fact is not an array"))?;
    let [pred, object] = pair else {
        return Err(bad("fact is not a 2-array"));
    };
    let pred = pred.as_str().ok_or_else(|| bad("fact predicate"))?;
    Ok(DeltaFact {
        predicate: intern(pred),
        object: value_from_json(object)?,
    })
}

/// Encode a [`Delta`] into its wire JSON object.
pub fn delta_to_json(delta: &Delta) -> Json {
    let facts = |list: &[DeltaFact]| Json::Array(list.iter().map(fact_to_json).collect());
    Json::Object(
        [
            (
                "entity".to_string(),
                Json::Int(i64::try_from(delta.entity.0).expect("entity id exceeds wire range")),
            ),
            ("add".to_string(), facts(&delta.added)),
            ("del".to_string(), facts(&delta.removed)),
        ]
        .into(),
    )
}

/// Decode a [`Delta`] from its wire JSON object, re-interning predicate
/// names into this process's interner.
pub fn delta_from_json(json: &Json) -> Result<Delta> {
    let entity = json
        .get("entity")
        .and_then(Json::as_i64)
        .ok_or_else(|| bad("delta missing entity"))?;
    let entity = u64::try_from(entity).map_err(|_| bad("negative entity id"))?;
    let facts = |key: &str| -> Result<Vec<DeltaFact>> {
        json.get(key)
            .and_then(Json::as_array)
            .ok_or_else(|| bad(format!("delta missing {key}")))?
            .iter()
            .map(fact_from_json)
            .collect()
    };
    Ok(Delta {
        entity: EntityId(entity),
        added: facts("add")?,
        removed: facts("del")?,
    })
}

/// Encode a [`SessionToken`] into its wire JSON form: `{"lsn":N}`.
///
/// The token is the client-side carrier of the read-your-writes
/// constraint (see [`crate::session`]); serializing it is what lets the
/// constraint survive a process boundary — a networked client holds the
/// token, a reconnect re-presents it, and the serving tier keeps the
/// freshness contract it minted in-process.
pub fn session_token_to_json(token: &SessionToken) -> Json {
    Json::Object(
        [(
            "lsn".to_string(),
            Json::Int(i64::try_from(token.lsn().0).expect("session lsn exceeds wire range")),
        )]
        .into(),
    )
}

/// Decode a [`SessionToken`] from its wire JSON form.
pub fn session_token_from_json(json: &Json) -> Result<SessionToken> {
    let lsn = json
        .get("lsn")
        .and_then(Json::as_i64)
        .ok_or_else(|| bad("session token missing lsn"))?;
    let lsn = u64::try_from(lsn).map_err(|_| bad("negative session lsn"))?;
    Ok(SessionToken::at(Lsn(lsn)))
}

impl SessionToken {
    /// This token as one compact JSON line — the cross-process wire form.
    pub fn to_wire(&self) -> String {
        session_token_to_json(self).to_string_compact()
    }

    /// Parse a token from the wire form produced by [`to_wire`](Self::to_wire).
    pub fn from_wire(line: &str) -> Result<SessionToken> {
        let json = crate::json::parse(line).map_err(|e| bad(e.to_string()))?;
        session_token_from_json(&json)
    }
}

impl Delta {
    /// This delta as one compact JSON line — the durable oplog payload.
    pub fn to_wire(&self) -> String {
        delta_to_json(self).to_string_compact()
    }

    /// Parse a delta from the wire form produced by [`to_wire`](Self::to_wire).
    pub fn from_wire(line: &str) -> Result<Delta> {
        let json = crate::json::parse(line).map_err(|e| bad(e.to_string()))?;
        delta_from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EntityRecord, ExtendedTriple, FactMeta, SourceId, TripleIndex};

    fn roundtrip(delta: &Delta) -> Delta {
        Delta::from_wire(&delta.to_wire()).expect("wire round-trip")
    }

    #[test]
    fn every_value_kind_roundtrips() {
        let delta = Delta {
            entity: EntityId(7),
            added: vec![
                DeltaFact {
                    predicate: intern("name"),
                    object: Value::str("Billie \"quoted\" Eilish\n"),
                },
                DeltaFact {
                    predicate: intern("born"),
                    object: Value::Int(2001),
                },
                DeltaFact {
                    predicate: intern("score"),
                    object: Value::Float(0.5),
                },
                DeltaFact {
                    predicate: intern("whole"),
                    object: Value::Float(3.0),
                },
                DeltaFact {
                    predicate: intern("explicit"),
                    object: Value::Bool(false),
                },
                DeltaFact {
                    predicate: intern("label"),
                    object: Value::Entity(EntityId(99)),
                },
                DeltaFact {
                    predicate: intern("pending"),
                    object: Value::source_ref("m42"),
                },
                DeltaFact {
                    predicate: intern("void"),
                    object: Value::Null,
                },
            ],
            removed: vec![DeltaFact {
                predicate: intern("popularity"),
                object: Value::Int(88),
            }],
        };
        assert_eq!(roundtrip(&delta), delta);
    }

    #[test]
    fn non_finite_floats_survive_the_wire() {
        // Includes whole floats too large for fractional digits: they must
        // come back as Float, not decay to Int.
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e15, -1e18] {
            let delta = Delta {
                entity: EntityId(1),
                added: vec![DeltaFact {
                    predicate: intern("x"),
                    object: Value::Float(f),
                }],
                removed: vec![],
            };
            let back = roundtrip(&delta);
            // Value's total ordering makes NaN == NaN, so plain Eq works.
            assert_eq!(back, delta, "{f}");
        }
    }

    #[test]
    fn wire_form_is_name_based_not_symbol_based() {
        let delta = Delta {
            entity: EntityId(3),
            added: vec![DeltaFact {
                predicate: intern("educated_at.school"),
                object: Value::str("UW"),
            }],
            removed: vec![],
        };
        let line = delta.to_wire();
        assert!(
            line.contains("educated_at.school"),
            "predicates ship as text: {line}"
        );
        assert!(!line.contains("Symbol"), "no interner internals: {line}");
    }

    #[test]
    fn malformed_wire_lines_are_rejected() {
        for bad in [
            "",
            "{}",
            r#"{"entity":1}"#,
            r#"{"entity":1,"add":[["only_pred"]],"del":[]}"#,
            r#"{"entity":1,"add":[[3,"v"]],"del":[]}"#,
            r#"{"entity":-4,"add":[],"del":[]}"#,
            r#"{"entity":1,"add":[["p",{"zz":1}]],"del":[]}"#,
            r#"{"entity":1,"add":[["p",{"e":1,"r":"x"}]],"del":[]}"#,
            r#"{"entity":1,"add":[["p",{"e":-2}]],"del":[]}"#,
        ] {
            assert!(Delta::from_wire(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn session_tokens_roundtrip_the_wire() {
        for lsn in [0u64, 1, 42, u64::from(u32::MAX), 1 << 60] {
            let token = SessionToken::at(Lsn(lsn));
            let line = token.to_wire();
            assert_eq!(SessionToken::from_wire(&line).unwrap(), token, "{line}");
        }
        // The unconstrained default token survives too.
        let unconstrained = SessionToken::default();
        assert_eq!(
            SessionToken::from_wire(&unconstrained.to_wire()).unwrap(),
            unconstrained
        );
    }

    #[test]
    fn malformed_session_tokens_are_rejected() {
        for bad in ["", "{}", r#"{"lsn":"x"}"#, r#"{"lsn":-3}"#, "[1]", "7"] {
            assert!(SessionToken::from_wire(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn index_deltas_replay_through_the_wire() {
        // The end-to-end property the oplog relies on: serialize every
        // delta a source index emits, parse it back, apply to an empty
        // index — identical state.
        let mut source = TripleIndex::new();
        let mut replica = TripleIndex::new();
        let meta = FactMeta::from_source(SourceId(1), 0.9);
        let mut rec = EntityRecord::new(EntityId(1));
        rec.triples.push(ExtendedTriple::simple(
            EntityId(1),
            intern("name"),
            Value::str("Alpha"),
            meta.clone(),
        ));
        rec.triples.push(ExtendedTriple::simple(
            EntityId(1),
            intern("knows"),
            Value::Entity(EntityId(2)),
            meta.clone(),
        ));
        let d1 = source.update_entity(&rec);
        rec.triples[0].object = Value::str("Alpha Prime");
        let d2 = source.update_entity(&rec);
        let d3 = source.remove_entity(EntityId(1));
        for delta in [&d1, &d2, &d3] {
            replica.apply(&roundtrip(delta));
        }
        assert_eq!(replica.fact_count(), source.fact_count());
        assert!(replica.is_empty());
    }
}
