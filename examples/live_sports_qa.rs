//! Live sports + question answering: the Live Graph end to end (§4, §6.1).
//!
//! Builds a stable KG (teams, venues, people), assembles the NERD stack,
//! streams live score events whose text references resolve against the
//! stable graph, then serves KGQ queries, intents and the paper's
//! multi-turn context example — including a curation hot fix.
//!
//! Run with: `cargo run --example live_sports_qa`

use std::sync::Arc;

use saga_core::{
    intern, EntityId, ExtendedTriple, FactMeta, GraphWriteExt, KnowledgeGraph, SourceId, Value,
};
use saga_live::{
    ContextGraph, CurationAction, CurationPipeline, Intent, IntentHandler, LiveEvent,
    LiveGraphBuilder, LiveKg, QueryEngine,
};
use saga_ml::{ContextualDisambiguator, NerdConfig, NerdEntityView, NerdStack, StringEncoder};
use saga_ontology::default_ontology;

fn stable_kg() -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    let meta = || FactMeta::from_source(SourceId(1), 0.9);
    kg.add_named_entity(
        EntityId(1),
        "Golden State Warriors",
        "sports_team",
        SourceId(1),
        0.9,
    );
    kg.add_named_entity(
        EntityId(2),
        "Los Angeles Lakers",
        "sports_team",
        SourceId(1),
        0.9,
    );
    kg.add_named_entity(EntityId(3), "Chase Center", "venue", SourceId(1), 0.9);
    kg.add_named_entity(EntityId(4), "Beyoncé", "music_artist", SourceId(1), 0.9);
    kg.add_named_entity(EntityId(5), "Jay-Z", "music_artist", SourceId(1), 0.9);
    kg.add_named_entity(EntityId(6), "Tom Hanks", "person", SourceId(1), 0.9);
    kg.add_named_entity(EntityId(7), "Rita Wilson", "person", SourceId(1), 0.9);
    kg.add_named_entity(EntityId(8), "Hollywood", "city", SourceId(1), 0.9);
    let facts = [
        (1u64, "venue", 3u64),
        (4, "spouse", 5),
        (5, "spouse", 4),
        (6, "spouse", 7),
        (7, "spouse", 6),
        (7, "birthplace", 8),
    ];
    for (s, p, o) in facts {
        kg.commit_upsert(ExtendedTriple::simple(
            EntityId(s),
            intern(p),
            Value::Entity(EntityId(o)),
            meta(),
        ));
    }
    kg
}

fn main() {
    let ontology = default_ontology();
    let kg = stable_kg();

    // The live KG is the union of a stable-graph view with live sources.
    let live = LiveKg::new(16);
    live.load_stable(&kg);

    // NERD links live text references to stable entities (§4.1).
    let nerd = Arc::new(NerdStack::new(
        NerdEntityView::build(&kg, None),
        StringEncoder::new(16, 1024, 3, 5),
        ContextualDisambiguator::default(),
        NerdConfig {
            max_candidates: 8,
            confidence_threshold: 0.25,
        },
    ));
    let builder = LiveGraphBuilder::new(live.clone(), ontology.types().clone(), Some(nerd));

    // A stream of score updates (seconds-level freshness, §1).
    println!("— streaming live score events —");
    for (ts, home, away, period) in [
        (1u64, 12i64, 9i64, "Q1"),
        (2, 55, 51, "Q2"),
        (3, 98, 92, "Q4"),
    ] {
        let report = builder.apply(&[LiveEvent {
            source: SourceId(50),
            event_id: "Warriors vs Lakers".into(),
            entity_type: "sports_game".into(),
            facts: vec![
                ("home_score".into(), Value::Int(home)),
                ("away_score".into(), Value::Int(away)),
                ("status".into(), Value::str(period)),
            ],
            mentions: vec![
                (
                    "home_team".into(),
                    "Golden State Warriors".into(),
                    Some("sports_team".into()),
                ),
                (
                    "away_team".into(),
                    "Los Angeles Lakers".into(),
                    Some("sports_team".into()),
                ),
                ("venue".into(), "Chase Center".into(), Some("venue".into())),
            ],
            timestamp: ts,
        }]);
        println!(
            "  t={ts}: applied={} resolved_mentions={}",
            report.applied, report.mentions_resolved
        );
    }

    // Ad-hoc KGQ: "Who's winning the Warriors game?" (§6.1).
    let engine = QueryEngine::new(live);
    let game = engine
        .query(r#"FIND sports_game WHERE home_team -> entity("Golden State Warriors")"#)
        .expect("KGQ executes");
    let game_id = game.entities()[0];
    let score = engine
        .query(&format!("GET AKG:{} . home_score", game_id.0))
        .expect("score lookup");
    println!(
        "\nKGQ: Warriors game {} → home score {:?}",
        game_id,
        score.values()
    );

    // Virtual operators: encapsulate the lookup for reuse (§4.2).
    engine.register_virtual_op("GamesAt", |args| {
        let venue = args.first().cloned().unwrap_or_default();
        Ok(vec![saga_live::kgq::Condition::RelTo {
            pred: "venue".into(),
            target: saga_live::kgq::Target::Name(venue),
        }])
    });
    let at_chase = engine
        .query(r#"FIND sports_game WHERE GamesAt("Chase Center")"#)
        .unwrap();
    println!(
        "virtual operator GamesAt(\"Chase Center\") → {} game(s)",
        at_chase.len()
    );

    // The paper's multi-turn context sequence (§4.2).
    println!("\n— multi-turn QA (context graph) —");
    let handler = IntentHandler::new(engine.clone());
    let mut ctx = ContextGraph::new();
    let a1 = ctx
        .ask(&handler, Intent::named("SpouseOf", "Beyoncé"))
        .unwrap();
    println!(
        "  Who is Beyoncé married to?  → {}",
        name_of(&engine, a1.entities()[0])
    );
    let a2 = ctx.ask_same_intent(&handler, "Tom Hanks").unwrap();
    println!(
        "  How about Tom Hanks?        → {}",
        name_of(&engine, a2.entities()[0])
    );
    let a3 = ctx.ask_about_last_answer(&handler, "Birthplace").unwrap();
    println!(
        "  Where is she from?          → {}",
        name_of(&engine, a3.entities()[0])
    );

    // Curation hot fix (§4.3): a vandalised score is corrected live.
    println!("\n— curation hot fix —");
    let curation = CurationPipeline::new(engine.live().clone(), SourceId(99));
    let ok = curation.apply(CurationAction::EditFact {
        entity: game_id,
        predicate: "home_score".into(),
        old: Value::Int(98),
        new: Value::Int(99),
    });
    let fixed = engine
        .query(&format!("GET AKG:{} . home_score", game_id.0))
        .unwrap();
    println!(
        "  applied={ok}; corrected home score → {:?}",
        fixed.values()
    );
    println!(
        "  {} curation(s) queued for stable construction",
        curation.drain_for_stable().len()
    );
}

fn name_of(engine: &QueryEngine, id: EntityId) -> String {
    engine
        .live()
        .get(id)
        .and_then(|r| r.name().map(str::to_string))
        .unwrap_or_else(|| id.to_string())
}
