//! Multi-source music catalog: the full continuous-construction loop.
//!
//! Two providers (one clean, one noisy with typos/nicknames/duplicates)
//! publish overlapping artist catalogs. We run two ingestion+construction
//! cycles — onboarding, then an incremental update — and then compute
//! Graph Engine views (importance, production views) over the result.
//!
//! Run with: `cargo run --example music_catalog`

use saga_construct::{KnowledgeConstructor, LinkTableResolver, RuleMatcher, SourceBatch};
use saga_core::{IdGenerator, KnowledgeGraph, SourceId};
use saga_graph::production_views::ProductionView;
use saga_graph::{compute_importance, AnalyticsStore, ImportanceConfig, LegacyEngine};
use saga_ingest::synth::{artist_alignment, provider_datasets, MusicWorld, ProviderSpec};
use saga_ingest::{DataTransformer, SourceIngestionPipeline, TransformSpec};
use saga_ontology::default_ontology;

fn main() {
    let ontology = default_ontology();
    let mut world = MusicWorld::generate(42, 120, 3);
    println!(
        "ground truth: {} artists, {} songs",
        world.artists.len(),
        world.songs.len()
    );

    // Two providers over the same ground truth, different noise profiles.
    let providers = vec![
        (ProviderSpec::clean(1, "clean_"), SourceId(1), "clean-feed"),
        (ProviderSpec::noisy(2, "noisy_"), SourceId(2), "noisy-feed"),
    ];
    // Each provider publishes two artifacts sharing one source namespace:
    // artists (joined with popularity) and songs referencing artists.
    let mut pipelines: Vec<(
        ProviderSpec,
        SourceIngestionPipeline,
        SourceIngestionPipeline,
    )> = providers
        .into_iter()
        .map(|(spec, source, name)| {
            let artists = SourceIngestionPipeline::new(
                source,
                format!("{name}/artists"),
                DataTransformer::new(TransformSpec::simple("artist_id").join(
                    1,
                    "artist_id",
                    "artist_id",
                )),
                artist_alignment(0.9),
            );
            let songs = SourceIngestionPipeline::new(
                source,
                format!("{name}/songs"),
                DataTransformer::new(TransformSpec::simple("song_id")),
                saga_ingest::synth::song_alignment(0.85),
            );
            (spec, artists, songs)
        })
        .collect();

    let mut kg = KnowledgeGraph::new();
    let id_gen = IdGenerator::starting_at(1);
    let constructor = KnowledgeConstructor::new(ontology.volatile_predicates());

    for cycle in 0..2 {
        if cycle > 0 {
            // The world evolves: new artists appear, songs are retitled.
            world.evolve(10, 0.05, 0.02);
        }
        let mut batches = Vec::new();
        for (spec, artist_pipe, song_pipe) in &mut pipelines {
            let (artists, songs, pops) = provider_datasets(&world, spec);
            let (a_delta, report) = artist_pipe
                .ingest(&ontology, &[artists, pops])
                .expect("ingest artists");
            println!(
                "cycle {cycle} [{}]: +{} ~{} -{} entities ({} volatile facts)",
                artist_pipe.name(),
                report.added,
                report.updated,
                report.deleted,
                report.volatile_facts
            );
            // Artist batch first: the songs' performed_by references resolve
            // through the same-source link table during fusion.
            batches.push(SourceBatch {
                source: artist_pipe.source(),
                name: artist_pipe.name().to_string(),
                delta: a_delta,
            });
            let (s_delta, _) = song_pipe.ingest(&ontology, &[songs]).expect("ingest songs");
            batches.push(SourceBatch {
                source: song_pipe.source(),
                name: song_pipe.name().to_string(),
                delta: s_delta,
            });
        }
        let report = constructor.consume(
            &mut kg,
            &id_gen,
            batches,
            &RuleMatcher::default(),
            &LinkTableResolver,
        );
        println!(
            "cycle {cycle} construction: {} matched existing, {} new, {} updated → KG {} entities / {} facts\n",
            report.matched_existing,
            report.new_entities,
            report.updated,
            kg.entity_count(),
            kg.fact_count()
        );
    }

    // Cross-source corroboration: entities seen by both providers.
    let corroborated = kg.entities().filter(|r| r.identity_count() >= 2).count();
    println!(
        "{} of {} entities are corroborated by both sources (fusion merged them)",
        corroborated,
        kg.entity_count()
    );

    // Entity importance (§3.3) — the ranking signal for tail entities.
    let scores = compute_importance(&kg, &ImportanceConfig::default());
    let mut top: Vec<_> = scores.score.iter().collect();
    top.sort_by(|a, b| b.1.total_cmp(a.1));
    println!("\ntop-3 entities by structural importance:");
    for (id, score) in top.into_iter().take(3) {
        let name = kg
            .entity(*id)
            .and_then(|r| r.name().map(str::to_string))
            .unwrap_or_default();
        println!("  {id} {name:<28} {score:.3}");
    }

    // Production views on both engines (Fig. 8's subject matter).
    let store = AnalyticsStore::build(&kg);
    let legacy = LegacyEngine::build(&kg);
    // This catalog has artists + songs (no labels/playlists), so the Songs
    // view is the relevant production view here.
    println!("\nview row counts (analytics == legacy):");
    let view = ProductionView::Songs;
    let a = view.compute_analytics(&store);
    let l = view.compute_legacy(&legacy);
    assert_eq!(a, l);
    assert!(a > 0, "songs joined to resolved artists");
    println!("  {:<10} {a}", view.label());
}
