//! Quickstart: the extended-triples data model and a minimal
//! ingest → construct → query round trip.
//!
//! Reproduces the paper's Table 1 / Figure 2 example (J. Smith's education)
//! and then runs one real construction cycle over a toy source.
//!
//! Run with: `cargo run --example quickstart`

use saga_construct::{KnowledgeConstructor, LinkTableResolver, RuleMatcher, SourceBatch};
use saga_core::{
    intern, EntityId, ExtendedTriple, FactMeta, IdGenerator, KnowledgeGraph, RelId, SourceId,
    SourceTrust, Value,
};
use saga_ingest::{AlignmentConfig, CsvImporter, DataSourceImporter, Pgf, SourceIngestionPipeline};
use saga_ingest::{DataTransformer, TransformSpec};
use saga_ontology::default_ontology;

fn main() {
    // ------------------------------------------------------------------
    // 1. The extended-triples representation (§2.1, Table 1).
    // ------------------------------------------------------------------
    println!("— Table 1: extended triples for the J. Smith example —");
    let e1 = EntityId(1);
    let meta2 = FactMeta::localized(SourceId(2), 0.8, "en");
    let rows = vec![
        ExtendedTriple::simple(
            e1,
            intern("name"),
            Value::str("J. Smith"),
            FactMeta {
                provenance: vec![
                    SourceTrust {
                        source: SourceId(1),
                        trust: 0.9,
                    },
                    SourceTrust {
                        source: SourceId(2),
                        trust: 0.8,
                    },
                ],
                locale: Some(intern("en")),
            },
        ),
        ExtendedTriple::composite(
            e1,
            intern("educated_at"),
            RelId(1),
            intern("school"),
            Value::str("UW"),
            meta2.clone(),
        ),
        ExtendedTriple::composite(
            e1,
            intern("educated_at"),
            RelId(1),
            intern("degree"),
            Value::str("PhD"),
            meta2.clone(),
        ),
        ExtendedTriple::composite(
            e1,
            intern("educated_at"),
            RelId(1),
            intern("year"),
            Value::Int(2005),
            meta2,
        ),
    ];
    for t in &rows {
        println!("  {}", t.render_row());
        println!("    confidence: {:.3}", t.meta.confidence());
    }

    // ------------------------------------------------------------------
    // 2. Self-serve source onboarding (§2.2): CSV → transform → align.
    // ------------------------------------------------------------------
    println!("\n— Onboarding a CSV source through the ingestion pipeline —");
    let ontology = default_ontology();
    let csv = "\
id,title,artist_name,secs,plays
s1,Bad Guy,Billie Eilish,194,99000
s2,Bury a Friend,Billie Eilish,193,54000
s3,Halo,Beyonce,261,88000
";
    let artifacts = vec![CsvImporter::new("toy-music", csv)
        .import()
        .expect("csv imports")];
    let alignment = AlignmentConfig {
        entity_type: "song".into(),
        id_column: "id".into(),
        locale: Some("en".into()),
        trust: 0.9,
        pgfs: vec![
            Pgf::Map {
                column: "title".into(),
                predicate: "name".into(),
            },
            Pgf::Map {
                column: "secs".into(),
                predicate: "duration_s".into(),
            },
            Pgf::Map {
                column: "plays".into(),
                predicate: "popularity".into(),
            },
            Pgf::MapRef {
                column: "artist_name".into(),
                predicate: "performed_by".into(),
            },
        ],
    };
    println!(
        "  alignment config (config-driven PGFs):\n{}",
        indent(&alignment.to_json(), 4)
    );
    let mut pipeline = SourceIngestionPipeline::new(
        SourceId(7),
        "toy-music",
        DataTransformer::new(TransformSpec::simple("id")),
        alignment,
    );
    let (delta, report) = pipeline
        .ingest(&ontology, &artifacts)
        .expect("ingestion succeeds");
    println!(
        "  ingestion: {} rows → {} aligned, {} added / {} volatile facts",
        report.transformed_rows, report.aligned_entities, report.added, report.volatile_facts
    );

    // ------------------------------------------------------------------
    // 3. Knowledge construction (§2.3): link + fuse into the KG.
    // ------------------------------------------------------------------
    let mut kg = KnowledgeGraph::new();
    let id_gen = IdGenerator::starting_at(100);
    let constructor = KnowledgeConstructor::new(ontology.volatile_predicates());
    let report = constructor.consume(
        &mut kg,
        &id_gen,
        vec![SourceBatch {
            source: SourceId(7),
            name: "toy-music".into(),
            delta,
        }],
        &RuleMatcher::default(),
        &LinkTableResolver,
    );
    println!(
        "\n— Construction: {} new entities, {} facts added, KG now {} entities / {} facts —",
        report.new_entities,
        report.fusion.facts_added,
        kg.entity_count(),
        kg.fact_count()
    );
    for record in kg.entities() {
        println!(
            "  {} = {:?} ({} facts, {} sources)",
            record.id,
            record.name().unwrap_or("?"),
            record.fact_count(),
            record.identity_count()
        );
    }

    // ------------------------------------------------------------------
    // 4. On-demand deletion (§2.1 provenance): retract the source.
    // ------------------------------------------------------------------
    // One staged batch, one atomic commit, one receipt for the fan-out.
    let receipt = saga_core::WriteBatch::new()
        .retract_source(SourceId(7))
        .commit(&mut kg);
    let saga_core::OpOutcome::RetractedSource { facts, entities } = receipt.outcomes[0] else {
        unreachable!("one retraction staged");
    };
    println!("\n— License revoked: retracting src7 dropped {facts} facts, {entities} entities —");
    assert_eq!(kg.entity_count(), 0);
    println!("  KG is empty again: every fact carried its provenance.");
}

fn indent(s: &str, n: usize) -> String {
    let pad = " ".repeat(n);
    s.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
