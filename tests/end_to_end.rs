//! Cross-crate integration tests: the full platform loop.
//!
//! These exercise the paths the examples demonstrate, with assertions:
//! ingestion → construction → graph engine (log/agents/views) → live
//! serving → curation feedback, across multiple cycles.

use std::sync::Arc;

use saga::construct::{KnowledgeConstructor, LinkTableResolver, RuleMatcher, SourceBatch};
use saga::core::{
    intern, EntityId, GraphWriteExt, IdGenerator, KnowledgeGraph, Lsn, SourceId, Value,
};
use saga::graph::{
    AgentRunner, AnalyticsStore, EntityIndexAgent, LoggedWriter, MetadataStore, OpKind,
    OperationLog, TextIndexAgent,
};
use saga::ingest::synth::{artist_alignment, provider_datasets, MusicWorld, ProviderSpec};
use saga::ingest::{DataTransformer, SourceIngestionPipeline, TransformSpec};
use saga::live::{LiveKg, LiveReplica, QueryEngine};
use saga::ontology::default_ontology;

fn ingest_cycle(
    world: &MusicWorld,
    pipes: &mut [(ProviderSpec, SourceIngestionPipeline)],
) -> Vec<SourceBatch> {
    let ontology = default_ontology();
    pipes
        .iter_mut()
        .map(|(spec, pipe)| {
            let (artists, _songs, pops) = provider_datasets(world, spec);
            let (delta, _) = pipe.ingest(&ontology, &[artists, pops]).expect("ingest");
            SourceBatch {
                source: pipe.source(),
                name: pipe.name().to_string(),
                delta,
            }
        })
        .collect()
}

fn make_pipes() -> Vec<(ProviderSpec, SourceIngestionPipeline)> {
    [
        (ProviderSpec::clean(1, "a_"), 1u32),
        (ProviderSpec::noisy(2, "b_"), 2u32),
    ]
    .into_iter()
    .map(|(spec, sid)| {
        let pipe = SourceIngestionPipeline::new(
            SourceId(sid),
            format!("provider-{sid}"),
            DataTransformer::new(TransformSpec::simple("artist_id").join(
                1,
                "artist_id",
                "artist_id",
            )),
            artist_alignment(0.9),
        );
        (spec, pipe)
    })
    .collect()
}

#[test]
fn continuous_construction_deduplicates_across_sources_and_cycles() {
    let ontology = default_ontology();
    let mut world = MusicWorld::generate(11, 80, 2);
    let mut pipes = make_pipes();
    let mut kg = KnowledgeGraph::new();
    let id_gen = IdGenerator::starting_at(1);
    let mut ctor = KnowledgeConstructor::new(ontology.volatile_predicates());
    // Serial mode consumes sources one at a time, so source B links against
    // the KG already containing source A — full cross-source dedup in one
    // cycle (parallel mode defers same-batch duplicates to the next cycle).
    ctor.parallel = false;

    // Cycle 1: onboarding.
    let batches = ingest_cycle(&world, &mut pipes);
    let r1 = ctor.consume(
        &mut kg,
        &id_gen,
        batches,
        &RuleMatcher::default(),
        &LinkTableResolver,
    );
    assert!(r1.new_entities > 0);
    // Cross-source dedup: far fewer canonical entities than payloads.
    assert!(
        kg.entity_count() < 80 + 40,
        "two overlapping sources must merge: {} entities",
        kg.entity_count()
    );
    let corroborated = kg.entities().filter(|r| r.identity_count() >= 2).count();
    assert!(
        corroborated > 20,
        "fusion merged cross-source entities: {corroborated}"
    );

    // Cycle 2: world evolves, only diffs flow.
    world.evolve(8, 0.1, 0.05);
    let batches2 = ingest_cycle(&world, &mut pipes);
    let before = kg.entity_count();
    let r2 = ctor.consume(
        &mut kg,
        &id_gen,
        batches2,
        &RuleMatcher::default(),
        &LinkTableResolver,
    );
    assert!(r2.updated + r2.deleted + r2.new_entities + r2.matched_existing > 0);
    assert!(
        kg.entity_count() >= before.saturating_sub(20),
        "incremental cycle keeps the graph coherent"
    );
    // Popularity facts came through the volatile path.
    let pop = intern("popularity");
    assert!(
        kg.triples().any(|t| t.predicate == pop),
        "volatile facts fused"
    );
}

#[test]
fn operation_log_drives_agents_and_freshness() {
    let mut kg = KnowledgeGraph::new();
    kg.add_named_entity(
        EntityId(1),
        "Billie Eilish",
        "music_artist",
        SourceId(1),
        0.9,
    );
    kg.add_named_entity(EntityId(2), "Halo", "song", SourceId(1), 0.9);

    let log = Arc::new(OperationLog::in_memory());
    let meta = Arc::new(MetadataStore::new());
    let mut runner = AgentRunner::new(Arc::clone(&log), Arc::clone(&meta));
    runner.register(Box::new(EntityIndexAgent::new()));
    runner.register(Box::new(TextIndexAgent::new()));

    log.append(OpKind::Upsert, vec![EntityId(1), EntityId(2)])
        .unwrap();
    runner.run_once(&kg).unwrap();
    assert!(meta.is_fresh("entity_index", Lsn(1)));
    assert!(meta.is_fresh("text_index", Lsn(1)));
    assert_eq!(
        meta.consistent_lsn(&["entity_index", "text_index"]),
        log.head()
    );

    // A later op only replays the suffix.
    kg.add_named_entity(EntityId(3), "Bad Guy", "song", SourceId(1), 0.9);
    log.append(OpKind::Upsert, vec![EntityId(3)]).unwrap();
    let replayed = runner.run_once(&kg).unwrap();
    assert_eq!(replayed, 2, "one op × two agents");
}

#[test]
fn constructed_kg_serves_live_queries() {
    // Build a small KG through real construction, then serve it live.
    let ontology = default_ontology();
    let world = MusicWorld::generate(3, 30, 2);
    let mut pipes = make_pipes();
    let mut kg = KnowledgeGraph::new();
    let id_gen = IdGenerator::starting_at(1);
    let ctor = KnowledgeConstructor::new(ontology.volatile_predicates());
    let batches = ingest_cycle(&world, &mut pipes);
    ctor.consume(
        &mut kg,
        &id_gen,
        batches,
        &RuleMatcher::default(),
        &LinkTableResolver,
    );

    let live = LiveKg::new(8);
    live.load_stable(&kg);
    let engine = QueryEngine::new(live);

    // Every ground-truth artist covered by the clean provider is findable.
    let artist = &world.artists[0];
    let hits = engine
        .query(&format!(
            r#"FIND music_artist WHERE name = "{}""#,
            artist.name
        ))
        .expect("query runs");
    assert!(!hits.is_empty(), "artist {} served", artist.name);
    // And the popularity fact is retrievable by path.
    let id = hits.entities()[0];
    let pop = engine
        .query(&format!("GET AKG:{} . popularity", id.0))
        .unwrap();
    assert!(!pop.values().is_empty(), "volatile fact served live");
}

#[test]
fn construction_commits_write_ahead_through_the_log_to_a_replica() {
    // The full §3.1 loop, log-first: real construction commits through a
    // LoggedWriter (batch staged → deltas appended to the durable log →
    // applied to the KG), and a serving replica that never touches the
    // KnowledgeGraph catches up and answers the same KGQ queries. No
    // hand-paired changelog-drain/append_op exists anywhere in this loop.
    let ontology = default_ontology();
    let world = MusicWorld::generate(7, 40, 2);
    let mut pipes = make_pipes();
    let id_gen = IdGenerator::starting_at(1);
    let mut ctor = saga::construct::KnowledgeConstructor::new(ontology.volatile_predicates());
    ctor.parallel = false;

    let log = Arc::new(OperationLog::in_memory());
    let writer = LoggedWriter::new(
        Arc::new(parking_lot::RwLock::new(KnowledgeGraph::new())),
        Arc::clone(&log),
    );
    let mut replica = LiveReplica::new(8, Arc::clone(&log));

    let batches = ingest_cycle(&world, &mut pipes);
    let sources = batches.len();
    let (report, lsns) = ctor
        .consume_logged(
            &writer,
            &id_gen,
            batches,
            &saga::construct::RuleMatcher::default(),
            &saga::construct::LinkTableResolver,
        )
        .expect("logged construction cycle");
    assert!(!report.deltas.is_empty(), "construction emitted deltas");
    assert_eq!(
        report.commits, sources,
        "serial mode: one commit per source"
    );
    assert_eq!(lsns.len(), sources);

    let kg = writer.read().clone();
    let applied = replica.catch_up().unwrap();
    assert_eq!(applied, sources);
    assert_eq!(replica.watermark(), log.head());
    assert_eq!(replica.live().len(), kg.entity_count());

    // Same KGQ answers from the stable KG and the log-shipped replica.
    let stable_engine = QueryEngine::new(kg.clone());
    let replica_engine = QueryEngine::new(replica.live().clone());
    let artist = &world.artists[0];
    let q = format!(r#"FIND music_artist WHERE name = "{}""#, artist.name);
    let a = stable_engine.query(&q).expect("stable query");
    let b = replica_engine.query(&q).expect("replica query");
    assert!(!a.entities().is_empty());
    assert_eq!(a.entities(), b.entities(), "replica parity for {q}");
}

#[test]
fn analytics_store_tracks_incremental_updates() {
    let mut kg = KnowledgeGraph::new();
    kg.add_named_entity(EntityId(1), "A", "music_artist", SourceId(1), 0.9);
    let mut store = AnalyticsStore::build(&kg);
    assert_eq!(store.entities_of_type(intern("music_artist")).len(), 1);

    kg.add_named_entity(EntityId(2), "B", "music_artist", SourceId(1), 0.9);
    kg.commit_upsert(saga::core::ExtendedTriple::simple(
        EntityId(2),
        intern("popularity"),
        Value::Int(5),
        saga::core::FactMeta::from_source(SourceId(1), 0.9),
    ));
    store.update(&kg, &[EntityId(2)]);
    assert_eq!(store.entities_of_type(intern("music_artist")).len(), 2);
    assert_eq!(store.frame_ints(intern("popularity"), "pop").len(), 1);
}
