//! Umbrella smoke test for saga-as-a-server: writer → log → fleet →
//! router → TCP endpoint → client, asserting over-the-wire parity with
//! the in-process surfaces and read-your-writes across the network.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use saga::core::{
    intern, EntityId, ExtendedTriple, FactMeta, KnowledgeGraph, ProbeKey, SourceId, Value,
    WriteBatch,
};
use saga::fleet::{FleetConfig, FleetRouter, ReplicaPool};
use saga::graph::{LoggedWriter, OpKind, OperationLog};
use saga::net::{SagaClient, SagaServer, ServerConfig, WireBatch};
use saga_core::GraphRead;

#[test]
fn the_wire_preserves_queries_probes_and_read_your_writes() {
    let dir = std::env::temp_dir().join(format!("saga-net-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let writer = Arc::new(LoggedWriter::new(
        Arc::new(RwLock::new(KnowledgeGraph::new())),
        Arc::new(OperationLog::in_memory()),
    ));
    let src = SourceId(1);
    let meta = FactMeta::from_source(src, 0.9);
    let mut batch = WriteBatch::new();
    for i in 1..=20u64 {
        batch = batch.named_entity(EntityId(i), &format!("Song {i}"), "song", src, 0.9);
        batch = batch.upsert(ExtendedTriple::simple(
            EntityId(i),
            intern("released"),
            Value::Int(2000 + (i % 5) as i64),
            meta.clone(),
        ));
    }
    writer.commit(OpKind::Upsert, batch).unwrap();

    let pool = ReplicaPool::start(
        FleetConfig {
            replicas: 2,
            poll_interval: Duration::from_micros(200),
            ..FleetConfig::default()
        },
        Arc::clone(writer.log()),
        &dir,
    )
    .unwrap();
    let router = Arc::new(FleetRouter::new(Arc::clone(&pool)));
    let server = SagaServer::start(
        Arc::clone(&router),
        Arc::clone(&writer),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = SagaClient::connect(server.local_addr().to_string()).unwrap();
    router
        .wait_for_lsn(writer.log().head(), Duration::from_secs(5))
        .unwrap();

    // -- KGQ over the wire is identical to KGQ in-process ----------------
    for query in [
        "FIND song WHERE released = 2003",
        "FIND song WHERE name = \"Song 7\"",
        "GET AKG:7 . name",
        "FIND song WHERE released = 2001 LIMIT 3",
    ] {
        let in_process = router.query(query).unwrap();
        let over_wire = client.query(query).unwrap();
        assert_eq!(over_wire, in_process, "wire parity for {query}");
    }

    // -- The GraphRead probe surface crosses the wire unchanged ----------
    let probe = ProbeKey::Literal(intern("released"), Value::Int(2003));
    assert_eq!(client.postings(&probe).unwrap(), router.postings(&probe));
    assert_eq!(
        client.selectivity(&probe).unwrap(),
        router.selectivity(&probe) as u64
    );
    assert_eq!(
        client.probe_contains(&probe, EntityId(3)).unwrap(),
        router.probe_contains(&probe, EntityId(3))
    );
    assert_eq!(
        client.resolve_name("song 7").unwrap(),
        router.resolve_name("song 7")
    );
    let wire_record = client.record(EntityId(7)).unwrap().expect("record");
    let local_record = router.record(EntityId(7)).expect("record");
    assert_eq!(wire_record.id, local_record.id);
    assert_eq!(wire_record.triples, local_record.triples);
    assert_eq!(client.generation().unwrap(), router.generation());

    // -- Read-your-writes over TCP ---------------------------------------
    // A batch committed over the wire must be visible to a subsequent
    // session query from the same client, routed only to replicas that
    // already replayed it.
    for round in 1..=10u64 {
        let id = EntityId(100 + round);
        let committed = client
            .commit(WireBatch::new().named_entity(
                id,
                &format!("Wire Song {round}"),
                "song",
                SourceId(2),
                0.9,
            ))
            .unwrap();
        assert_eq!(committed.token.lsn(), committed.lsn);
        let hits = client
            .query_with_session(&format!("FIND song WHERE name = \"Wire Song {round}\""))
            .unwrap();
        assert_eq!(hits.entities(), vec![id], "read-your-writes at {round}");
    }

    // -- Pipelined mixed traffic on one connection ------------------------
    let ids: Vec<u64> = (0..16)
        .map(|i| {
            client
                .send_buffered(&saga::net::Request::Query {
                    text: format!("FIND song WHERE released = {}", 2000 + (i % 5)),
                    session: None,
                })
                .unwrap()
        })
        .collect();
    client.flush().unwrap();
    for id in ids.into_iter().rev() {
        // Collect in reverse send order to force the parking path.
        let response = client.recv_by_id(id).unwrap();
        assert!(matches!(response, saga::net::Response::Result(_)));
    }

    drop(server);
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
