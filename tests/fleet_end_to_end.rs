//! Umbrella smoke test for the serving fleet: writer → log → fleet of
//! replicas → lag-aware router, with a checkpointing controller in the
//! loop and a kill/respawn cycle mid-traffic.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use saga::core::{EntityId, KnowledgeGraph, SourceId, WriteBatch};
use saga::fleet::{FleetConfig, FleetController, FleetRouter, ReplicaPool};
use saga::graph::{CheckpointWriter, LoggedWriter, OpKind, OperationLog};

#[test]
fn fleet_serves_sessions_checkpoints_and_survives_a_kill() {
    let dir = std::env::temp_dir().join(format!("saga-fleet-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let w = LoggedWriter::new(
        Arc::new(RwLock::new(KnowledgeGraph::new())),
        Arc::new(OperationLog::in_memory()),
    );
    let cfg = FleetConfig {
        replicas: 2,
        poll_interval: Duration::from_micros(500),
        checkpoint_every: 25,
        ..FleetConfig::default()
    };
    let pool = ReplicaPool::start(cfg, Arc::clone(w.log()), &dir).unwrap();
    let router = FleetRouter::new(Arc::clone(&pool));
    let controller =
        FleetController::with_checkpointer(Arc::clone(&pool), CheckpointWriter::new(&w, &dir));

    let mut checkpointed = false;
    for i in 1..=60u64 {
        let commit = w
            .commit(
                OpKind::Upsert,
                WriteBatch::new().named_entity(
                    EntityId(i),
                    &format!("Song {i}"),
                    "song",
                    SourceId(1),
                    0.9,
                ),
            )
            .unwrap();
        let hits = router
            .query_with_session(
                &format!("FIND song WHERE name = \"Song {i}\""),
                &commit.session_token(),
            )
            .unwrap();
        assert_eq!(
            hits.entities(),
            vec![EntityId(i)],
            "read-your-writes at {i}"
        );
        if i == 30 {
            // Hard-kill a replica mid-traffic; the controller brings it
            // back from the checkpoint its own cadence produced.
            pool.kill(0).unwrap();
        }
        checkpointed |= controller.tick().unwrap().checkpointed.is_some();
    }

    assert!(checkpointed, "the checkpoint cadence never fired");
    router
        .wait_for_lsn(w.log().head(), Duration::from_secs(5))
        .unwrap();
    let stats = controller.stats();
    assert_eq!(stats.replicas[0].respawns, 1, "killed replica respawned");
    assert!(stats.checkpoints >= 1);
    assert!(
        w.log().compacted_through().0 > 0,
        "checkpoint_and_compact pruned the replayed prefix"
    );

    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
